"""Missing-data imputation with a bipartite GNN (survey Sec. 5.4).

Scenario: a clinical-style table loses 30% of its cells under three
mechanisms (MCAR / MAR / MNAR).  GRAPE treats the table as an
instance-feature bipartite graph and imputes by *edge-value prediction*;
we compare against mean, median, kNN and iterative-ridge imputers.

Run:  python examples/missing_data_imputation.py
"""

from repro.applications import run_imputation_benchmark
from repro.datasets import make_correlated_instances


def main() -> None:
    dataset = make_correlated_instances(
        n=250, num_features=12, noise_features=2, cluster_strength=2.5, seed=0
    )
    print(f"complete table: {dataset.num_instances} rows x "
          f"{dataset.num_numerical} numerical columns\n")

    methods = ["mean", "median", "knn", "iterative", "grape"]
    print(f"{'mechanism':<10}" + "".join(f"{m:>11}" for m in methods))
    for mechanism in ("mcar", "mar", "mnar"):
        results = run_imputation_benchmark(
            dataset, rate=0.3, mechanism=mechanism, epochs=250, seed=0
        )
        row = "".join(f"{results[m]:>11.3f}" for m in methods)
        print(f"{mechanism:<10}{row}")

    print(
        "\nRMSE at the injected cells (z-scored space; lower is better)."
        "\nThe bipartite formulation needs no imputation preprocessing —"
        "\nmissing cells are simply absent edges (survey Sec. 4.1.2)."
    )


if __name__ == "__main__":
    main()
