"""Fraud detection on multi-relational graphs (survey Sec. 5.1 & 5.5).

Scenario: transactions with device and merchant fields; fraud rings share
infrastructure, so "same device" and "same merchant" relations connect
fraudsters even when their flat features look benign.  TabGNN builds one
graph layer per relation (multiplex formulation) and fuses them with
attention.

Run:  python examples/fraud_detection.py
"""

from repro.applications import run_fraud_benchmark
from repro.datasets import make_fraud


def main() -> None:
    dataset = make_fraud(
        n=600, fraud_rate=0.08, num_rings=6, camouflage=0.15, seed=0
    )
    print(f"transactions={dataset.num_instances}, "
          f"fraud rate={dataset.y.mean():.2%}, "
          f"relations={dataset.categorical_names}\n")

    results = run_fraud_benchmark(dataset, epochs=150, seed=0)

    print(f"{'method':<18}{'ROC-AUC':>9}{'AP':>9}{'F1':>9}")
    for method, stats in sorted(results.items(), key=lambda kv: -kv[1]["auc"]):
        print(f"{method:<18}{stats['auc']:>9.3f}{stats['ap']:>9.3f}"
              f"{stats['f1']:>9.3f}")

    print(
        "\nThe multiplex relations expose the rings: TabGNN beats both the"
        "\nflat MLP and the single flattened graph, and attention fusion"
        "\nweights the informative relation per instance (survey Table 6)."
    )


if __name__ == "__main__":
    main()
