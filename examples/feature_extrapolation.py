"""Open-world feature extrapolation with FATE (survey Sec. 4.3.3 & 2.5e).

Scenario: a model is trained on 10 feature columns; at deployment the
table gains new columns (new sensors, new form fields).  Conventional
models crash or must be retrained; FATE's permutation-invariant sum over
indexed feature embeddings both (a) ignores column order and (b) accepts
never-seen columns via proxy embeddings.

Run:  python examples/feature_extrapolation.py
"""

import numpy as np

from repro import nn
from repro.metrics import accuracy
from repro.models import FATE


def main() -> None:
    rng = np.random.default_rng(0)
    n, d_train, d_new = 600, 10, 4
    x_full = rng.normal(size=(n, d_train + d_new))
    coef = rng.normal(size=d_train + d_new)
    y = (x_full @ coef > 0).astype(np.int64)
    train = np.zeros(n, dtype=bool)
    train[:400] = True
    test = ~train

    # Train on the first 10 columns only.
    model = FATE(d_train, 2, np.random.default_rng(0), embed_dim=32)
    optimizer = nn.Adam(model.parameters(), lr=0.01)
    for _ in range(150):
        loss = nn.cross_entropy(model(x_full[train][:, :d_train]), y[train])
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    model.eval()

    base = accuracy(y[test], model(x_full[test][:, :d_train]).data.argmax(1))
    print(f"test accuracy, trained columns only:        {base:.3f}")

    perm = np.random.default_rng(1).permutation(d_train)
    permuted = accuracy(
        y[test],
        model(x_full[test][:, perm], feature_index=perm).data.argmax(1),
    )
    print(f"test accuracy, columns permuted at test:    {permuted:.3f}  "
          f"(identical: {permuted == base})")

    index = np.arange(d_train + d_new)
    extrapolated = accuracy(
        y[test], model(x_full[test], feature_index=index).data.argmax(1)
    )
    print(f"test accuracy, +{d_new} never-seen columns:      {extrapolated:.3f}")

    print(
        "\nFATE degrades gracefully instead of crashing: unseen columns get"
        "\nproxy embeddings (the mean of trained feature embeddings), the"
        "\nsurvey's 'inductive capability' in action (Sec. 2.5e)."
    )


if __name__ == "__main__":
    main()
