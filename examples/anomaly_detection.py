"""Anomaly detection on tabular data (survey Sec. 5.1).

Scenario: sensor readings cluster into a few operating modes; faults are
either *local* (near a mode but off-manifold — invisible to per-feature
z-scores) or *global* (far from everything).  We rank rows by anomaly score
with four detectors and compare ranking quality.

Run:  python examples/anomaly_detection.py
"""

from repro.applications import run_anomaly_detection
from repro.datasets import make_anomaly


def main() -> None:
    dataset = make_anomaly(
        n_inliers=400,
        n_outliers=40,
        num_features=8,
        num_clusters=3,
        local_fraction=0.6,  # 60% of faults hide inside the data's range
        seed=0,
    )
    print(f"rows={dataset.num_instances}, anomaly rate={dataset.y.mean():.2%}\n")

    results = run_anomaly_detection(dataset, k=10, epochs=120, seed=0)

    print(f"{'method':<14}{'ROC-AUC':>9}{'AP':>9}{'P@k':>9}")
    for method, stats in sorted(results.items(), key=lambda kv: -kv[1]["auc"]):
        print(f"{method:<14}{stats['auc']:>9.3f}{stats['ap']:>9.3f}"
              f"{stats['p_at_k']:>9.3f}")

    print(
        "\nLocal methods (LUNAR, kNN-distance, GAE) exploit neighborhood "
        "structure\nand catch the local faults that the marginal z-score "
        "baseline misses."
    )


if __name__ == "__main__":
    main()
