"""Serve a rows-as-hyperedges (hypergraph) pipeline — the last formulation
to become inductive, closing the formulation × serving matrix.

The hypergraph formulation (HCL/PET style) has *feature values* as nodes
and every table row as a hyperedge joining the values it contains.
Serving attaches each unseen row as a **new hyperedge** over the frozen
value nodes: the artifact carries the incidence structure plus the frozen
row→value-node encoder (global id offsets, quantile bin edges), the
engine caches the value-node states once, and a query's logits are the
degree-normalized mean of its member nodes' cached states — independent
of how many rows the training table held.  Because a training row rejoins
exactly the value nodes it occupied transductively, served training rows
reproduce the transductive predictions to float round-off, and
``incremental=False`` keeps a full-graph oracle to check that claim.

Run with:  PYTHONPATH=src python examples/serving_hypergraph.py
"""

import json
import tempfile
import urllib.request

import numpy as np

from repro.datasets import make_fraud
from repro.pipeline import run_pipeline
from repro.serving import InferenceEngine, ModelArtifact, PredictionServer

# 1. Train a hypergraph pipeline: device/merchant values + quantile-binned
# numericals become value nodes; each transaction is one hyperedge.
dataset = make_fraud(n=150, seed=0)
result = run_pipeline(dataset, formulation="hypergraph", max_epochs=60, seed=0)
print("trained:", result.as_row())

# 2. Export.  The payload freezes the incidence structure and the value
# encoder, so a fresh process can attach unseen rows as new hyperedges.
with tempfile.TemporaryDirectory() as tmp:
    path = result.export_artifact().save(f"{tmp}/model")
    artifact = ModelArtifact.load(path)
    print("artifact:", artifact.summary())

    # 3a. Incremental serving vs the two oracles.  Training rows match the
    # transductive forward exactly; arbitrary rows match the full-graph
    # oracle (model rebuilt on the incidence with query columns appended).
    engine = InferenceEngine(artifact)
    served = engine.predict_batch(dataset.numerical[:8], dataset.categorical[:8])
    logits = result.state.logits()[:8]
    exp = np.exp(logits - logits.max(axis=1, keepdims=True))
    transductive = exp / exp.sum(axis=1, keepdims=True)
    print("served vs transductive max |diff|:",
          float(np.abs(served - transductive).max()))

    oracle = InferenceEngine(artifact, incremental=False)
    rng = np.random.default_rng(0)
    unseen = dataset.numerical[:4] + rng.normal(0, 0.3, (4, dataset.num_numerical))
    print("incremental vs full-graph oracle max |diff|:",
          float(np.abs(
              engine.predict_batch(unseen, dataset.categorical[:4])
              - oracle.predict_batch(unseen, dataset.categorical[:4])
          ).max()))

    # A transaction from a never-seen device: the unknown value simply has
    # no value node to join (the UNK fallback), the rest of the row still
    # carries the prediction.
    unseen_device = dataset.categorical[:1].copy()
    unseen_device[0, 0] = 999_999
    unk = engine.predict_batch(dataset.numerical[:1], unseen_device)
    print("UNK-device probs:", np.round(unk[0], 4).tolist(),
          "| unk_values:", engine.stats["unk_values"])

    # 3b. The same artifact behind micro-batched HTTP.
    with PredictionServer(artifact, port=0) as server:
        body = json.dumps({
            "numerical": dataset.numerical[0].tolist(),
            "categorical": dataset.categorical[0].tolist(),
        }).encode()
        request = urllib.request.Request(server.url + "/predict", data=body)
        with urllib.request.urlopen(request) as response:
            print("http /predict:", json.loads(response.read()))
        with urllib.request.urlopen(server.url + "/healthz") as response:
            health = json.loads(response.read())
        print("http /healthz:", {k: health[k] for k in
                                 ("status", "formulation", "network",
                                  "schema_version", "incremental",
                                  "pool_rows")})
