"""Train → export artifact → reload → serve predictions for unseen rows.

Demonstrates the full deployment path of ``repro.serving`` with a **GAT**
pipeline — attention networks ride the same pool-size-independent
incremental inference path as every other stack, because all conv
families share one edge-wise ``propagate`` substrate:

1. train an instance-graph GAT pipeline on a synthetic table;
2. export a :class:`~repro.serving.ModelArtifact` (weights + fitted
   preprocessing + frozen training pool) to ``.npz`` + JSON sidecar;
3. reload it (as a fresh process would) and score rows the training graph
   never contained, via the Python engine *and* the HTTP server — and
   check ``/healthz`` to confirm which inference path the deployment runs.

Run with:  PYTHONPATH=src python examples/serving_quickstart.py
"""

import json
import tempfile
import urllib.request

import numpy as np

from repro.datasets import make_correlated_instances
from repro.pipeline import run_pipeline
from repro.serving import InferenceEngine, ModelArtifact, PredictionServer

# 1. Train a graph-attention pipeline.
dataset = make_correlated_instances(n=400, seed=0, cluster_strength=2.0)
result = run_pipeline(dataset, formulation="instance", network="gat",
                      max_epochs=80, seed=0)
print("trained:", result.as_row())

# 2. Export.
with tempfile.TemporaryDirectory() as tmp:
    path = result.export_artifact().save(f"{tmp}/model")
    print("artifact:", path.name, "+", path.with_suffix(".json").name)

    # 3a. Reload and predict in-process on unseen rows.  The engine caches
    # the pool activations once and scores queries in O(B·k·d) — the GAT
    # softmax runs over just each query's k retrieved neighbors + itself.
    artifact = ModelArtifact.load(path)
    engine = InferenceEngine(artifact)
    rng = np.random.default_rng(7)
    unseen = dataset.numerical[:8] + rng.normal(0.0, 0.05, (8, dataset.num_numerical))
    probs = engine.predict_batch(unseen)
    print("engine predictions:", probs.argmax(axis=1).tolist())
    print("engine stats:      ", engine.stats)

    # 3b. The same artifact behind micro-batched HTTP.
    with PredictionServer(artifact, port=0) as server:
        body = json.dumps({"numerical": unseen[0].tolist()}).encode()
        request = urllib.request.Request(server.url + "/predict", data=body)
        with urllib.request.urlopen(request) as response:
            print("http /predict:     ", json.loads(response.read()))
        with urllib.request.urlopen(server.url + "/healthz") as response:
            health = json.loads(response.read())
        print("http /healthz:     ", {k: health[k] for k in
                                      ("status", "network", "incremental",
                                       "pool_rows")})
