"""Train → export artifact → reload → serve, with retrieval-index selection.

Demonstrates the full deployment path of ``repro.serving`` with an
**instance** (retrieval-attach, PET-style) pipeline — the formulation
whose serving cost is dominated by the attach stage: every query row
retrieves its k nearest pool rows before propagating.  That retrieval is
a pluggable :class:`~repro.construction.PoolIndex` backend, and this
example serves the same artifact through both:

1. train an instance pipeline on a synthetic clustered table and export
   a :class:`~repro.serving.ModelArtifact` (weights + frozen
   preprocessing statistics + the training pool) to ``.npz`` + versioned
   JSON sidecar;
2. reload it (as a fresh process would) behind the default **exact**
   index — the exhaustive O(N·d) scan, bit-identical to what serving has
   always done and the oracle everything else is measured against;
3. reload it again behind the **IVF** index
   (``InferenceEngine(artifact, index="ivf", nprobe=8)``): a pure-numpy
   inverted-file index — seeded k-means coarse quantizer with
   ``nlist≈√N`` cells built once at engine init (``engine.
   index_build_ms``), per query only the ``nprobe`` most promising
   cells are scanned and re-ranked exactly — sub-linear in pool size
   (≈7× faster top_k at pool=10⁵, ≈21× at 10⁶, per the serving bench).
   The served probabilities are compared against the exact engine;
4. serve over HTTP with ``--index ivf`` semantics
   (``PredictionServer(..., index="ivf", nprobe=8)``), checking
   ``/healthz`` for the live ``index``/``nprobe``/``index_build_ms``
   and scraping the ``repro_engine_retrieval_*`` series from
   ``/metrics`` — probe counters plus a sampled recall-vs-exact gauge;
5. scale the same artifact out across **worker processes**
   (``ScaleOutServer(path, workers=2)`` — the CLI spells it
   ``gnn4tdl-serve --artifact model.npz --workers 2``): an async front
   door dispatches to forked workers that memory-map one shared
   read-only copy of the pool state, ``/healthz`` reports the fleet
   (``workers``, ``artifact_generation``, ``artifact_sha``,
   ``mmapped``), ``/metrics`` merges every worker's registry, and
   ``POST /admin/reload`` hot-swaps to a new artifact with zero
   downtime (new workers boot, routing switches atomically, the old
   set drains behind its in-flight work).

The backend registry is the extension point: a future HNSW/LSH backend
implements ``build(index)`` / ``top_k(queries, k, exclude=None)``,
registers via :func:`~repro.construction.register_index_backend`, and
every engine/server/CLI surface above picks it up with zero edits
(``repro/construction/retrieval.py`` documents the protocol).

Every other formulation rides the same serving API — swap
``formulation="multiplex"`` and the artifact carries value-node
vocabularies instead of a retrieval pool (index selection then does not
apply and is refused; see ``examples/serving_hypergraph.py`` for the
hyperedge-attach variant).

Run with:  PYTHONPATH=src python examples/serving_quickstart.py
"""

import json
import tempfile
import urllib.request

import numpy as np

from repro.datasets import make_correlated_instances
from repro.pipeline import run_pipeline
from repro.serving import (
    InferenceEngine,
    ModelArtifact,
    PredictionServer,
    ScaleOutServer,
)

# 1. Train an instance (retrieval-attach) pipeline.  The training table
# becomes the frozen retrieval pool the served queries link into.
dataset = make_correlated_instances(n=600, seed=0, cluster_strength=2.0)
result = run_pipeline(dataset, formulation="instance", max_epochs=40, seed=0)
print("trained:", result.as_row())

with tempfile.TemporaryDirectory() as tmp:
    path = result.export_artifact().save(f"{tmp}/model")
    print("artifact:", path.name, "+", path.with_suffix(".json").name)
    artifact = ModelArtifact.load(path)

    # 2. The default deployment: exact retrieval (and the compiled plan —
    # the query path is lowered at init; compiled=False would keep the
    # interpreted autograd scorer as the parity oracle).
    exact = InferenceEngine(artifact)
    print(f"exact engine:       index={exact.index} "
          f"(built in {exact.index_build_ms:.2f} ms), "
          f"compiled={exact.compiled}")

    # 3. The same artifact behind the IVF index: nothing about the model
    # changes, only the attach stage's neighbor search.  nprobe is the
    # recall/latency knob — more probed cells, closer to the exact scan.
    ivf = InferenceEngine(artifact, index="ivf", nprobe=8)
    print(f"ivf engine:         index={ivf.index} nprobe={ivf.nprobe} "
          f"(k-means built in {ivf.index_build_ms:.2f} ms)")

    rng = np.random.default_rng(1)
    queries = dataset.numerical[:64] + rng.normal(
        0.0, 0.05, (64, dataset.num_numerical)
    )
    exact_probs = exact.predict_batch(queries)
    ivf_probs = ivf.predict_batch(queries)
    drift = float(np.abs(np.asarray(ivf_probs) - np.asarray(exact_probs)).max())
    agree = float((ivf_probs.argmax(1) == exact_probs.argmax(1)).mean())
    print(f"ivf vs exact:       max |Δprob| = {drift:.2e}, "
          f"argmax agreement = {agree:.1%}")
    print("retrieval stats:    ", {
        k: v for k, v in ivf.stats.items() if k.startswith("retrieval")
    })

    # 4. The HTTP deployment (the CLI spells this `gnn4tdl-serve
    # --artifact model.npz --index ivf --nprobe 8`).
    with PredictionServer(artifact, port=0, index="ivf", nprobe=8) as server:
        body = json.dumps({"numerical": dataset.numerical[0].tolist()}).encode()
        request = urllib.request.Request(server.url + "/predict", data=body)
        with urllib.request.urlopen(request) as response:
            print("http /predict:     ", json.loads(response.read()))
        with urllib.request.urlopen(server.url + "/healthz") as response:
            health = json.loads(response.read())
        print("http /healthz:     ", {k: health[k] for k in
                                      ("status", "formulation", "index",
                                       "nprobe", "index_build_ms",
                                       "pool_rows", "compiled")})

        # Probe counters and the sampled recall-vs-exact gauge land in
        # the same registry as every other serving metric — one scrape.
        with urllib.request.urlopen(server.url + "/metrics") as response:
            metrics = response.read().decode()
        print("/metrics snapshot:")
        for line in metrics.splitlines():
            if line.startswith(("repro_engine_retrieval",
                                "repro_engine_attach_fanout")):
                print("   ", line)

    # 5. Scale out: the same artifact behind an async front door and two
    # forked workers (`gnn4tdl-serve --artifact model.npz --workers 2`).
    # Each worker memory-maps the npz, so the frozen pool occupies one
    # physical copy however many workers serve it.
    with ScaleOutServer(str(path), workers=2, port=0) as fleet:
        request = urllib.request.Request(fleet.url + "/predict", data=body)
        with urllib.request.urlopen(request) as response:
            print("fleet /predict:    ", json.loads(response.read()))
        with urllib.request.urlopen(fleet.url + "/healthz") as response:
            health = json.loads(response.read())
        print("fleet /healthz:    ", {k: health[k] for k in
                                      ("status", "workers",
                                       "artifact_generation", "mmapped")},
              "sha:", health["artifact_sha"][:12])

        # Zero-downtime hot swap: retrain (here: a different seed, i.e. a
        # genuinely different model), save v2, and POST /admin/reload.
        # New workers boot while the old set keeps serving; routing flips
        # atomically once every new worker is ready; the old set drains
        # behind its in-flight requests — no request is lost or errored.
        v2 = run_pipeline(
            make_correlated_instances(n=600, seed=1, cluster_strength=2.0),
            formulation="instance", max_epochs=40, seed=1,
        ).export_artifact().save(f"{tmp}/model_v2")
        request = urllib.request.Request(
            fleet.url + "/admin/reload",
            data=json.dumps({"artifact": str(v2)}).encode(),
        )
        with urllib.request.urlopen(request) as response:
            swap = json.loads(response.read())
        print("hot swap:          ", {k: swap[k] for k in
                                      ("status", "artifact_generation")},
              "sha:", swap["artifact_sha"][:12])
        with urllib.request.urlopen(
            urllib.request.Request(fleet.url + "/predict", data=body)
        ) as response:
            print("post-swap /predict:", json.loads(response.read()))
