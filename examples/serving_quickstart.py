"""Train → export artifact → reload → serve predictions for unseen rows.

Demonstrates the full deployment path of ``repro.serving`` with a
**multiplex** (TabGNN-style) pipeline — serving is formulation-agnostic:
the artifact carries whatever frozen state its formulation needs, here
per-column *value-node vocabularies* that unseen rows attach to by lookup
(never-seen categorical values fall into the UNK bucket and still score):

1. train a multiplex pipeline on a synthetic fraud table (one
   same-feature-value relation per device/merchant column + binned
   numericals);
2. export a :class:`~repro.serving.ModelArtifact` (weights + fitted
   preprocessing + value vocabularies) to ``.npz`` + versioned JSON
   sidecar;
3. reload it (as a fresh process would) and score rows the training graph
   never contained — including a transaction from a never-seen device —
   via the Python engine *and* the HTTP server, checking ``/healthz`` for
   the formulation / schema / inference path.  By default the engine
   **compiles** the scorer's query path into a flat autograd-free
   :class:`~repro.serving.compiled.InferencePlan` (pure-numpy kernels
   over preallocated reused buffers; the kernel vocabulary is tabled in
   ``repro/serving/compiled/__init__.py``) — ``engine.compiled`` says
   whether the plan is live, ``engine.compile_ms`` what the one-time
   lowering cost, and ``InferenceEngine(artifact, compiled=False)``
   forces the interpreted autograd scorer (the training engine, kept as
   the 1e-8 parity oracle);
4. scrape ``/metrics`` (Prometheus text) and print a snapshot of the
   engine's request-latency histogram, per-stage spans (``plan_execute``
   on the compiled path) and drift gauges.

Instance-graph pipelines (any network in the zoo) ride the same API — swap
``formulation="instance", network="gat"`` and nothing else changes.

Run with:  PYTHONPATH=src python examples/serving_quickstart.py
"""

import json
import tempfile
import urllib.request

import numpy as np

from repro.datasets import make_fraud
from repro.pipeline import run_pipeline
from repro.serving import InferenceEngine, ModelArtifact, PredictionServer

# 1. Train a multiplex (same-feature-value relations) pipeline.  n=150
# keeps every same-value group under the degree cap (max_group_degree=30),
# the regime where served training rows reproduce the transductive
# predictions *exactly*; the artifact discloses the regime via
# payload_meta["capped_groups"].
dataset = make_fraud(n=150, seed=0)
result = run_pipeline(dataset, formulation="multiplex", max_epochs=60, seed=0)
print("trained:", result.as_row())

# 2. Export.  The artifact's formulation payload freezes, per relation,
# the value → pool-member vocabulary (and the quantile edges that bin
# numerical columns), so a fresh process can attach unseen rows.
with tempfile.TemporaryDirectory() as tmp:
    path = result.export_artifact().save(f"{tmp}/model")
    print("artifact:", path.name, "+", path.with_suffix(".json").name)

    # 3a. Reload and predict in-process.  With capped_groups == 0 the
    # training-table rows reproduce the transductive predictions exactly;
    # a row with a never-seen device id lands in the UNK bucket and still
    # returns a valid score.
    artifact = ModelArtifact.load(path)
    print("capped groups:     ", artifact.payload_meta["capped_groups"])
    engine = InferenceEngine(artifact)
    # The query path was lowered to a compiled plan at init (pass
    # compiled=False to keep the interpreted autograd scorer instead).
    print(f"compiled plan:      {engine.compiled} "
          f"(lowered in {engine.compile_ms:.1f} ms)")
    probs = engine.predict_batch(dataset.numerical[:8], dataset.categorical[:8])
    print("engine predictions:", probs.argmax(axis=1).tolist())

    unseen_device = dataset.categorical[:1].copy()
    unseen_device[0, 0] = 999_999  # device id the pool never saw
    unk_probs = engine.predict_batch(dataset.numerical[:1], unseen_device)
    print("UNK-device probs:  ", np.round(unk_probs[0], 4).tolist())
    print("engine stats:      ", engine.stats)

    # 3b. The same artifact behind micro-batched HTTP.
    with PredictionServer(artifact, port=0) as server:
        body = json.dumps({
            "numerical": dataset.numerical[0].tolist(),
            "categorical": dataset.categorical[0].tolist(),
        }).encode()
        request = urllib.request.Request(server.url + "/predict", data=body)
        with urllib.request.urlopen(request) as response:
            print("http /predict:     ", json.loads(response.read()))
        with urllib.request.urlopen(server.url + "/healthz") as response:
            health = json.loads(response.read())
        print("http /healthz:     ", {k: health[k] for k in
                                      ("status", "formulation", "network",
                                       "schema_version", "incremental",
                                       "compiled", "pool_rows")})

        # 4. Every serving component (HTTP layer, engine, micro-batcher)
        # reports into one registry, exposed Prometheus-style on /metrics
        # (in production: `curl localhost:8000/metrics`).
        with urllib.request.urlopen(server.url + "/metrics") as response:
            metrics = response.read().decode()
        wanted = ("repro_http_requests_total", "repro_engine_",
                  "repro_request_duration_seconds_count",
                  "repro_stage_duration_seconds_count")
        print("/metrics snapshot:")
        for line in metrics.splitlines():
            if line.startswith(wanted):
                print("   ", line)
