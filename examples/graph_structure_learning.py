"""Graph structure learning for tabular prediction (survey Sec. 4.2.3).

Scenario: no graph is given — only the table.  Three learners *construct*
the instance graph jointly with the classifier:

* metric-based (IDGL): weighted-cosine similarity, iteratively refined;
* neural (SLAPS): an MLP generator regularized by a denoising autoencoder;
* direct (LDS-style): the adjacency matrix itself is a parameter,
  alternately optimized against the validation loss (bi-level).

Run:  python examples/graph_structure_learning.py
"""

import numpy as np

from repro import nn
from repro.construction.learned import DirectGraphLearner
from repro.datasets import make_correlated_instances, train_val_test_masks
from repro.gnn.dense import DenseGNN
from repro.metrics import accuracy
from repro.models import IDGL, SLAPS
from repro.tensor import Tensor
from repro.training import Trainer, train_bilevel


def main() -> None:
    dataset = make_correlated_instances(
        n=250, num_features=16, cluster_strength=1.5, seed=0
    )
    x = dataset.to_matrix()
    y = dataset.y
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(250, 0.3, 0.2, rng, stratify=y)

    def test_accuracy(logits: np.ndarray) -> float:
        return accuracy(y[test], logits.argmax(axis=1)[test])

    # --- metric-based: IDGL -------------------------------------------
    idgl = IDGL(x, dataset.num_classes, np.random.default_rng(0), k=15)
    trainer = Trainer(idgl, nn.Adam(idgl.parameters(), lr=0.01), max_epochs=120)
    trainer.fit(
        lambda: idgl.loss(y, mask=train),
        lambda: accuracy(y[val], idgl().data.argmax(1)[val]),
    )
    print(f"metric-based (IDGL):   test acc = {test_accuracy(idgl().data):.3f}")

    # --- neural: SLAPS -------------------------------------------------
    slaps = SLAPS(x, dataset.num_classes, np.random.default_rng(0), k=15)
    trainer = Trainer(slaps, nn.Adam(slaps.parameters(), lr=0.01), max_epochs=120)
    trainer.fit(
        lambda: slaps.loss(y, mask=train),
        lambda: accuracy(y[val], slaps().data.argmax(1)[val]),
    )
    print(f"neural (SLAPS):        test acc = {test_accuracy(slaps().data):.3f}")

    # --- direct + bi-level: LDS-style ----------------------------------
    # Initialize the free adjacency from a kNN prior (LDS does the same);
    # a random dense init over-smooths everything into one blob.
    from repro.construction.rules import knn_edges

    prior = np.zeros((250, 250))
    edges = knn_edges(x, k=15)
    prior[edges[1], edges[0]] = 1.0
    prior = np.maximum(prior, prior.T)
    learner = DirectGraphLearner(250, np.random.default_rng(0),
                                 init_adjacency=prior, init_scale=4.0)
    gnn = DenseGNN(x.shape[1], (32,), dataset.num_classes, np.random.default_rng(1))
    features = Tensor(x)

    def loss_on(mask):
        return nn.cross_entropy(gnn(features, learner()), y, mask=mask)

    train_bilevel(
        learner.parameters(), gnn.parameters(),
        loss_fn=lambda: loss_on(train),
        val_loss_fn=lambda: loss_on(val),
        outer_steps=30, inner_steps=5,
    )
    gnn.eval()
    print(f"direct+bilevel (LDS):  test acc = {test_accuracy(gnn(features, learner()).data):.3f}")


if __name__ == "__main__":
    main()
