"""Medical risk prediction from EHR-style records (survey Sec. 5.3).

Scenario: patients carry multi-hot diagnosis-code records; the disease
label depends on which code *group* dominates.  Four formulations compete:
the flat multi-hot MLP, the heterogeneous patient-code graph (GCT/HSGNN),
the rows-as-hyperedges hypergraph (HCL), and the patient-similarity kNN
graph.

Run:  python examples/medical_risk.py
"""

from repro.applications import run_ehr_benchmark
from repro.datasets import make_ehr


def main() -> None:
    dataset = make_ehr(
        n=400,
        num_codes=40,
        codes_per_patient=(3, 8),
        num_diseases=3,
        comorbidity=0.65,   # moderately noisy code assignments
        seed=0,
    )
    print(f"patients={dataset.num_instances}, codes={dataset.num_numerical}, "
          f"diseases={dataset.num_classes}\n")

    results = run_ehr_benchmark(dataset, epochs=150, seed=0)

    print(f"{'method':<16}{'accuracy':>10}{'macro F1':>10}")
    for method, stats in sorted(results.items(), key=lambda kv: -kv[1]["accuracy"]):
        print(f"{method:<16}{stats['accuracy']:>10.3f}{stats['macro_f1']:>10.3f}")

    print(
        "\nThe hypergraph formulation treats each patient as a hyperedge over"
        "\ntheir diagnosis codes, so code co-occurrence propagates directly —"
        "\nthe structure GCT/HSGNN/HCL exploit in EHRs (survey Sec. 5.3)."
    )


if __name__ == "__main__":
    main()
