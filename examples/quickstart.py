"""Quickstart: the GNN4TDL pipeline in ~40 lines.

Runs the survey's four phases (Figure 1) on an instance-correlated tabular
dataset and compares the result against a structure-blind MLP — the
survey's core claim (Sec. 2.5a) in miniature.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import MLPClassifier
from repro.datasets import make_correlated_instances, train_val_test_masks
from repro.metrics import accuracy
from repro.pipeline import run_pipeline


def main() -> None:
    # A tabular dataset whose rows are correlated: instances in the same
    # latent cluster share a label and a feature prototype.  Only 10% of
    # rows are labelled — the semi-supervised regime the survey highlights
    # (Sec. 2.5d): the GNN propagates supervision through the graph, while
    # the MLP can learn from the labelled rows alone.
    dataset = make_correlated_instances(
        n=500, num_features=16, num_classes=3, cluster_strength=1.5, seed=0
    )
    print("dataset:", dataset.summary())

    # --- The GNN4TDL pipeline: formulate -> construct -> learn -> train ---
    result = run_pipeline(
        dataset,
        formulation="instance",  # rows as nodes (Sec. 4.1.1)
        network="gcn",           # representation learning (Sec. 4.3)
        k=10,                    # kNN construction rule (Sec. 4.2.2)
        train_fraction=0.1,      # 10% labels: semi-supervised (Sec. 2.5d)
        val_fraction=0.1,
        seed=0,
    )
    print(f"\nGNN pipeline:      accuracy={result.test_accuracy:.3f} "
          f"macro_f1={result.test_macro_f1:.3f}")
    for phase, seconds in result.phase_seconds.items():
        print(f"  {phase:<12} {seconds:.2f}s")

    # --- The structure-blind baseline on the identical label budget ---
    x = dataset.to_matrix()
    rng = np.random.default_rng(0)
    train, _, test = train_val_test_masks(
        dataset.num_instances, 0.1, 0.1, rng, stratify=dataset.y
    )
    mlp = MLPClassifier(hidden_dims=(64,), epochs=200, seed=0)
    mlp.fit(x[train], dataset.y[train])
    mlp_acc = accuracy(dataset.y[test], mlp.predict(x[test]))
    print(f"\nMLP baseline:      accuracy={mlp_acc:.3f}")
    print("\nWith scarce labels, the GNN's message passing over the instance"
          "\ngraph recovers what the structure-blind MLP cannot.")


if __name__ == "__main__":
    main()
