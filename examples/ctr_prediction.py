"""Click-through-rate prediction with a feature-interaction GNN (Sec. 5.2).

Scenario: ad impressions with (user, item, context) categorical fields where
the click signal lives in the user x item *interaction* — exactly the
structure feature-graph GNNs model explicitly.  Fi-GNN builds a
fully-connected graph over the embedded fields of each impression and passes
messages between them.

Run:  python examples/ctr_prediction.py
"""

from repro.applications import run_ctr_benchmark
from repro.datasets import make_ctr


def main() -> None:
    dataset = make_ctr(n=3000, num_users=30, num_items=20, seed=0)
    print(f"impressions={dataset.num_instances}, "
          f"fields={dataset.categorical_names}, "
          f"click rate={dataset.y.mean():.2%}\n")

    results = run_ctr_benchmark(dataset, epochs=150, seed=0)

    print(f"{'method':<12}{'ROC-AUC':>9}{'log-loss':>10}")
    for method in ("logistic", "mlp", "fignn"):
        stats = results[method]
        print(f"{method:<12}{stats['auc']:>9.3f}{stats['logloss']:>10.3f}")

    print(
        "\nLogistic regression sees only marginal field effects (near-chance"
        "\nhere); the MLP learns interactions implicitly; Fi-GNN models them"
        "\nstructurally through the field graph (survey Sec. 2.5b & 5.2)."
    )


if __name__ == "__main__":
    main()
