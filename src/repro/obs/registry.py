"""A dependency-free metrics registry: counters, gauges, histograms.

Production serving needs numbers, not ad-hoc dicts: how many rows were
scored, how long each stage took, what fraction of lookups hit the UNK
bucket.  This module is the one place those numbers live:

* :class:`MetricsRegistry` — owns every metric family and one lock.  All
  mutations and reads go through that single lock, so :meth:`snapshot`
  and :meth:`render_prometheus` observe a *consistent* point-in-time
  state across every metric (no torn reads between related counters).
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the three
  Prometheus core types.  Histograms use **fixed upper-bound buckets**
  (cumulative in the exposition, per-bucket internally) plus a bounded
  reservoir of recent raw observations so internal quantiles
  (:meth:`Histogram.quantile`) stay accurate enough to cross-check an
  external timer — the serving bench asserts agreement within 10%.
* label support mirrors ``prometheus_client``: a family declares
  ``labelnames`` and :meth:`labels` returns (and caches) one child per
  label-value combination.
* :class:`CounterBank` — a ``MutableMapping`` facade that lets legacy
  ``stats``-dict call sites (``stats["rows"] += 1``) write straight into
  registry-backed metrics, keeping the ``/healthz`` contract while
  ``/metrics`` gains the same numbers in exposition format.

Everything is stdlib + numpy; nothing here imports the rest of
:mod:`repro`, so any layer (serving, training, benchmarks) can depend on
it without cycles.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections import OrderedDict
from collections.abc import MutableMapping
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: Default histogram buckets, tuned for request/stage latencies in seconds:
#: 50 microseconds up to 10 seconds, roughly geometric.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    5e-05, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for batch-size style distributions (counts, not seconds).
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _render_labels(labels: Dict[str, object], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Child:
    """One (family, label-values) time series."""

    __slots__ = ("_family", "_labels")

    def __init__(self, family: "MetricFamily", labels: Dict[str, str]) -> None:
        self._family = family
        self._labels = labels

    @property
    def labels_dict(self) -> Dict[str, str]:
        return dict(self._labels)


class Counter(_Child):
    """Monotonically increasing count (resettable only via ``set_``)."""

    __slots__ = ("_value", "_fn")

    def __init__(self, family, labels) -> None:
        super().__init__(family, labels)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase; use a Gauge")
        with self._family.registry._lock:
            self._value += amount

    def set_(self, value: float) -> None:
        """Raw assignment — for dict-compat facades, not user code."""
        with self._family.registry._lock:
            self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> "Counter":
        """Collect from existing monotone state (a locked stats dict)
        instead of ``inc`` calls — the zero-hot-path-cost exposition route
        the engine uses for its per-row counters."""
        with self._family.registry._lock:
            self._fn = fn
        return self

    def _read(self) -> float:
        # Caller holds the registry lock.
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:  # collection must never take the server down
                return float("nan")
        return self._value

    @property
    def value(self) -> float:
        with self._family.registry._lock:
            v = self._read()
        return int(v) if float(v).is_integer() else v


class Gauge(_Child):
    """A value that can go up and down, or track a live callback."""

    __slots__ = ("_value", "_fn")

    def __init__(self, family, labels) -> None:
        super().__init__(family, labels)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._family.registry._lock:
            self._value = float(value)

    set_ = set  # dict-compat facade alias

    def inc(self, amount: float = 1.0) -> None:
        with self._family.registry._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> "Gauge":
        """Evaluate ``fn`` at collection time (queue depths, ratios, …)."""
        with self._family.registry._lock:
            self._fn = fn
        return self

    def _read(self) -> float:
        # Caller holds the registry lock (RLock: callbacks may read other
        # metrics from the same registry without deadlocking).
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:  # collection must never take the server down
                return float("nan")
        return self._value

    @property
    def value(self) -> float:
        with self._family.registry._lock:
            v = self._read()
        return int(v) if float(v).is_integer() else v


class Histogram(_Child):
    """Fixed-bucket distribution with an exact-quantile reservoir.

    ``buckets`` are inclusive upper bounds; a final ``+Inf`` bucket is
    implicit.  ``observe`` is O(log n_buckets).  The reservoir keeps the
    most recent ``reservoir_size`` raw observations (ring buffer) so
    :meth:`quantile` answers with real data rather than bucket
    interpolation — that is what lets the serving bench cross-check its
    external timer against the engine's own histogram within 10%.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_reservoir", "_rpos")

    def __init__(self, family, labels) -> None:
        super().__init__(family, labels)
        self._bounds = family.buckets
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0
        self._count = 0
        size = family.reservoir_size
        self._reservoir = np.empty(size, dtype=np.float64) if size else None
        self._rpos = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._family.registry._lock:
            self._counts[bisect_left(self._bounds, value)] += 1
            self._sum += value
            self._count += 1
            if self._reservoir is not None:
                self._reservoir[self._rpos % self._reservoir.shape[0]] = value
                self._rpos += 1

    @property
    def count(self) -> int:
        with self._family.registry._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._family.registry._lock:
            return self._sum

    def bucket_counts(self) -> "OrderedDict[float, int]":
        """Cumulative counts keyed by upper bound (``inf`` = total)."""
        with self._family.registry._lock:
            out: "OrderedDict[float, int]" = OrderedDict()
            running = 0
            for bound, n in zip(self._bounds, self._counts):
                running += n
                out[bound] = running
            out[float("inf")] = running + self._counts[-1]
        return out

    def quantile(self, q: float) -> float:
        """Quantile over the reservoir of recent raw observations (NaN if
        empty or the histogram was created with ``reservoir_size=0``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._family.registry._lock:
            if self._reservoir is None or self._rpos == 0:
                return float("nan")
            filled = self._reservoir[: min(self._rpos, self._reservoir.shape[0])]
            values = filled.copy()
        return float(np.percentile(values, 100.0 * q))


class MetricFamily:
    """Name + help + type + labelnames; owns one child per label combo."""

    kind = ""
    child_cls: type = _Child

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        **options,
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.options = options
        self._children: "OrderedDict[Tuple[str, ...], _Child]" = OrderedDict()
        if not labelnames:
            self._children[()] = self.child_cls(self, {})

    def labels(self, **labelvalues: object) -> _Child:
        if tuple(sorted(labelvalues)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self.registry._lock:
            child = self._children.get(key)
            if child is None:
                child = self.child_cls(self, dict(zip(self.labelnames, key)))
                self._children[key] = child
        return child

    def _default(self) -> _Child:
        if self.labelnames:
            raise ValueError(
                f"{self.name} declares labels {self.labelnames}; "
                f"call .labels(...) first"
            )
        return self._children[()]

    # Convenience pass-throughs for label-less families --------------------
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set_function(self, fn: Callable[[], float]):
        return self._default().set_function(fn)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self):
        return self._default().value


class CounterForFamily(MetricFamily):
    kind = "counter"
    child_cls = Counter


class GaugeFamily(MetricFamily):
    kind = "gauge"
    child_cls = Gauge


class HistogramFamily(MetricFamily):
    kind = "histogram"
    child_cls = Histogram

    def __init__(self, registry, name, help, labelnames, **options) -> None:
        buckets = tuple(float(b) for b in options.pop(
            "buckets", DEFAULT_LATENCY_BUCKETS
        ))
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be a sorted sequence of distinct bounds")
        if math.isinf(buckets[-1]):
            buckets = buckets[:-1]  # +Inf is implicit
        self.buckets = buckets
        self.reservoir_size = int(options.pop("reservoir_size", 1024))
        super().__init__(registry, name, help, labelnames, **options)

    def quantile(self, q: float) -> float:
        return self._default().quantile(q)

    def bucket_counts(self) -> "OrderedDict[float, int]":
        return self._default().bucket_counts()

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum


class MetricsRegistry:
    """Thread-safe home for every metric a process exposes.

    One registry per deployment unit: :class:`repro.serving.PredictionServer`
    creates one and shares it with its engine and batcher so ``/metrics``
    is a single consistent scrape.  Families are get-or-create — asking
    for an existing name with a matching type returns the same family, a
    mismatched type raises.
    """

    def __init__(self) -> None:
        # RLock: gauge callbacks evaluated during collection may read
        # other metrics from this same registry.
        self._lock = threading.RLock()
        self._families: "OrderedDict[str, MetricFamily]" = OrderedDict()

    # -- family constructors -------------------------------------------
    def _get_or_create(
        self, cls: type, name: str, help: str,
        labelnames: Sequence[str], **options,
    ) -> MetricFamily:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls) or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labelnames}"
                    )
                return family
            family = cls(self, name, help, labelnames, **options)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = (),
    ) -> CounterForFamily:
        return self._get_or_create(CounterForFamily, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = (),
    ) -> GaugeFamily:
        return self._get_or_create(GaugeFamily, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        reservoir_size: int = 1024,
    ) -> HistogramFamily:
        return self._get_or_create(
            HistogramFamily, name, help, labelnames,
            buckets=buckets, reservoir_size=reservoir_size,
        )

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    # -- collection ------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Point-in-time, JSON-safe view of every metric.

        Taken under the registry lock, so no mutation interleaves between
        two metrics' reads — related counters are always consistent with
        each other in one snapshot.
        """
        out: Dict[str, object] = {}
        with self._lock:
            for name, family in self._families.items():
                series: List[Dict[str, object]] = []
                for child in family._children.values():
                    if isinstance(child, Histogram):
                        running = 0
                        buckets = []
                        for bound, n in zip(child._bounds, child._counts):
                            running += n
                            buckets.append([bound, running])
                        buckets.append(["+Inf", running + child._counts[-1]])
                        series.append({
                            "labels": child.labels_dict,
                            "count": child._count,
                            "sum": child._sum,
                            "buckets": buckets,
                        })
                    else:
                        series.append({
                            "labels": child.labels_dict,
                            "value": child._read(),
                        })
                out[name] = {"type": family.kind, "values": series}
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4)."""
        lines: List[str] = []
        with self._lock:
            for name, family in self._families.items():
                if family.help:
                    lines.append(f"# HELP {name} {family.help}")
                lines.append(f"# TYPE {name} {family.kind}")
                for child in family._children.values():
                    labels = child.labels_dict
                    if isinstance(child, Histogram):
                        running = 0
                        for bound, n in zip(child._bounds, child._counts):
                            running += n
                            le = _render_labels(
                                labels, f'le="{_format_value(bound)}"'
                            )
                            lines.append(f"{name}_bucket{le} {running}")
                        le = _render_labels(labels, 'le="+Inf"')
                        total = running + child._counts[-1]
                        lines.append(f"{name}_bucket{le} {total}")
                        suffix = _render_labels(labels)
                        lines.append(
                            f"{name}_sum{suffix} {_format_value(child._sum)}"
                        )
                        lines.append(f"{name}_count{suffix} {total}")
                    else:
                        suffix = _render_labels(labels)
                        lines.append(
                            f"{name}{suffix} {_format_value(child._read())}"
                        )
        return "\n".join(lines) + "\n"


class CounterBank(MutableMapping):
    """Dict-compatible facade over per-key registry metrics.

    The serving stack grew up around plain ``stats`` dicts
    (``stats["unk_values"] += 1``); scorers and tests still speak that
    dialect.  A bank keeps the mapping interface but stores every key in
    the shared :class:`MetricsRegistry` as ``<prefix>_<key>_total`` (or a
    gauge for keys named in ``gauges`` — e.g. high-water marks), so the
    same numbers appear on ``/metrics`` without a second bookkeeping path.

    ``snapshot()`` reads all keys under one registry lock — the locked,
    consistent view ``/healthz`` serves.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        prefix: str,
        labels: Optional[Dict[str, str]] = None,
        gauges: Iterable[str] = (),
        help_map: Optional[Dict[str, str]] = None,
    ) -> None:
        self.registry = registry
        self._prefix = prefix
        self._labels = dict(labels or {})
        self._gauge_keys = frozenset(gauges)
        self._help_map = dict(help_map or {})
        self._children: "OrderedDict[str, _Child]" = OrderedDict()

    def _materialize(self, key: str) -> _Child:
        child = self._children.get(key)
        if child is None:
            labelnames = tuple(self._labels)
            if key in self._gauge_keys:
                family = self.registry.gauge(
                    f"{self._prefix}_{key}", self._help_map.get(key, ""),
                    labelnames,
                )
            else:
                family = self.registry.counter(
                    f"{self._prefix}_{key}_total", self._help_map.get(key, ""),
                    labelnames,
                )
            child = family.labels(**self._labels) if labelnames else family._default()
            self._children[key] = child
        return child

    def __getitem__(self, key: str):
        child = self._children.get(key)
        if child is None:
            raise KeyError(key)
        return child.value

    def __setitem__(self, key: str, value) -> None:
        self._materialize(key).set_(float(value))

    def __delitem__(self, key: str) -> None:
        del self._children[key]

    def __iter__(self):
        return iter(list(self._children))

    def __len__(self) -> int:
        return len(self._children)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"CounterBank({dict(self)!r})"

    def snapshot(self) -> Dict[str, float]:
        """All keys read atomically under the registry lock."""
        with self.registry._lock:
            return {key: self._children[key].value for key in self._children}
