"""Lightweight per-stage span tracing for hot paths.

A :class:`Tracer` times named stages (``with tracer.span("retrieval"):``)
and records every duration into one labeled histogram family in the
shared :class:`~repro.obs.MetricsRegistry`
(``<name>{stage="retrieval", ...}``), so ``/metrics`` exposes a latency
distribution **per pipeline stage** — cache lookup, row encode,
attach/retrieval, propagate, head — not just end to end.

Spans nest: entering a span while another is open on the same thread
parents it, and the completed tree of the most recent top-level span is
kept per thread (:meth:`Tracer.last_root`) for tests and debugging.
Span state is thread-local, so concurrent request threads trace
independently while sharing the histogram family.

The overhead budget is a few microseconds per span (two clock reads, a
list push/pop, one histogram observe): cheap enough to leave on in
production serving.  Code that must support tracing-off call sites can
use :data:`NULL_CONTEXT`, a reusable no-op context manager.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class _NullContext:
    """Reusable no-op context manager for tracing-disabled call sites."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_CONTEXT = _NullContext()


class Span:
    """One timed stage; a node in the per-thread span tree."""

    __slots__ = ("tracer", "name", "parent", "children", "start", "duration")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self.tracer = tracer
        self.name = name
        self.parent: Optional[Span] = None
        self.children: List[Span] = []
        self.start = 0.0
        self.duration = 0.0

    def __enter__(self) -> "Span":
        local = self.tracer._local
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        if stack:
            self.parent = stack[-1]
            self.parent.children.append(self)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.duration = time.perf_counter() - self.start
        local = self.tracer._local
        local.stack.pop()
        if self.parent is None:
            local.last_root = self
        self.tracer._observe(self.name, self.duration)
        return False

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search of this subtree by stage name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Span({self.name!r}, {self.duration * 1000:.3f}ms, children={len(self.children)})"


class Tracer:
    """Record named spans into a per-stage histogram family.

    Parameters
    ----------
    registry:
        The shared metrics registry the stage histogram lives in.
    histogram:
        Family name; each stage becomes one labeled child
        (``{stage="..."}`` plus ``const_labels``).
    const_labels:
        Extra labels stamped on every stage series (e.g. the serving
        formulation), so one registry can host several tracers.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        histogram: str = "repro_stage_duration_seconds",
        const_labels: Optional[Dict[str, str]] = None,
        buckets=DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.registry = registry
        self._const_labels = dict(const_labels or {})
        self._family = registry.histogram(
            histogram,
            "Per-stage latency of the instrumented pipeline.",
            labelnames=tuple(self._const_labels) + ("stage",),
            buckets=buckets,
        )
        self._stage_children: Dict[str, Histogram] = {}
        self._local = threading.local()

    def span(self, name: str) -> Span:
        return Span(self, name)

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def last_root(self) -> Optional[Span]:
        """The most recent *completed* top-level span on this thread."""
        return getattr(self._local, "last_root", None)

    def stage_histogram(self, name: str) -> Histogram:
        """The histogram child a stage records into (creates it if new)."""
        child = self._stage_children.get(name)
        if child is None:
            child = self._family.labels(stage=name, **self._const_labels)
            self._stage_children[name] = child
        return child

    def _observe(self, name: str, duration: float) -> None:
        self.stage_histogram(name).observe(duration)
