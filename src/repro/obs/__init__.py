"""``repro.obs`` — metrics and tracing for the serving & training stack.

A dependency-free observability toolkit (stdlib + numpy only):

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families — thread-safe, labeled, with
  snapshot-consistent reads and Prometheus text exposition
  (:meth:`MetricsRegistry.render_prometheus`);
* :class:`Tracer` / :class:`Span` — per-stage span timing that lands in a
  labeled stage-latency histogram, with per-thread span trees;
* :class:`CounterBank` — a dict-compatible facade that migrates legacy
  ``stats`` dicts onto the registry without breaking their call sites;
* :func:`merge_snapshots` / :func:`render_snapshot_prometheus` —
  cross-process aggregation: merge per-worker registry snapshots
  (counters/histograms summed, gauges tagged per worker) and render the
  result back to exposition text, so a multi-worker front door serves
  one fleet-wide ``/metrics`` scrape.

Wired through the hot path by :mod:`repro.serving` (``GET /metrics``,
engine/batcher instrumentation, drift gauges) and available to training
via ``Trainer(..., registry=...)`` / ``run_pipeline(..., registry=...)``.
"""

from repro.obs.merge import merge_snapshots, render_snapshot_prometheus
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    CounterBank,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_CONTEXT, Span, Tracer

__all__ = [
    "Counter",
    "CounterBank",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_CONTEXT",
    "SIZE_BUCKETS",
    "Span",
    "Tracer",
    "merge_snapshots",
    "render_snapshot_prometheus",
]
