"""Cross-process metrics aggregation for scale-out serving.

A multi-worker deployment has one :class:`~repro.obs.MetricsRegistry` *per
worker process* — registries are in-memory objects and do not span
processes.  The front door therefore collects each worker's JSON-safe
:meth:`~repro.obs.MetricsRegistry.snapshot` over the worker protocol and
merges them into a single exposition so ``GET /metrics`` stays one scrape
for the whole fleet:

* **counters** and **histograms** are *summed* across workers per
  (name, labels) series — the Prometheus-correct aggregation for both
  (histogram bucket counts, ``_sum`` and ``_count`` are all counters);
* **gauges** are *not* summed by default (a per-worker cache-hit *rate*
  summed across four workers is meaningless): each worker's gauge series
  is tagged with that worker's identity labels (``worker="2"``), keeping
  the per-process values visible and the series honest.  Pass
  ``gauge_labels=None`` to sum gauges instead (only sensible for
  extensive gauges like queue depths).

:func:`render_snapshot_prometheus` turns a (merged or single) snapshot
back into Prometheus text exposition, so the front door can splice worker
metrics next to its own registry's rendering.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import _format_value, _render_labels

#: snapshot schema: {name: {"type": kind, "values": [series, ...]}}
Snapshot = Dict[str, Dict[str, object]]


def _series_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _merge_buckets(
    into: "OrderedDict[object, float]", buckets: Sequence[Sequence[object]]
) -> None:
    for bound, cumulative in buckets:
        into[bound] = into.get(bound, 0.0) + float(cumulative)


def merge_snapshots(
    snapshots: Sequence[Snapshot],
    gauge_labels: Optional[Sequence[Dict[str, str]]] = None,
) -> Snapshot:
    """Merge per-process registry snapshots into one fleet-wide snapshot.

    ``gauge_labels`` supplies one extra-label dict per snapshot (e.g.
    ``[{"worker": "0"}, {"worker": "1"}]``); gauge series are tagged with
    it rather than summed.  ``None`` sums gauges like counters.
    """
    if gauge_labels is not None and len(gauge_labels) != len(snapshots):
        raise ValueError("gauge_labels must align 1:1 with snapshots")
    merged: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
    for i, snapshot in enumerate(snapshots):
        for name, family in snapshot.items():
            kind = str(family.get("type", "gauge"))
            out = merged.setdefault(name, {"type": kind, "series": OrderedDict()})
            if out["type"] != kind:
                continue  # name collision across kinds: first writer wins
            for series in family.get("values", ()):
                labels = dict(series.get("labels", {}))
                if kind == "gauge" and gauge_labels is not None:
                    labels.update(gauge_labels[i])
                key = _series_key(labels)
                slot = out["series"].get(key)
                if "buckets" in series:  # histogram
                    if slot is None:
                        slot = {
                            "labels": labels,
                            "count": 0.0,
                            "sum": 0.0,
                            "buckets": OrderedDict(),
                        }
                        out["series"][key] = slot
                    slot["count"] += float(series.get("count", 0))
                    slot["sum"] += float(series.get("sum", 0.0))
                    _merge_buckets(slot["buckets"], series["buckets"])
                else:
                    value = float(series.get("value", 0.0))
                    if slot is None:
                        out["series"][key] = {"labels": labels, "value": value}
                    else:
                        slot["value"] += value
    # Re-shape to the registry snapshot schema (values as a list).
    result: Snapshot = OrderedDict()
    for name, family in merged.items():
        values: List[Dict[str, object]] = []
        for slot in family["series"].values():
            if "buckets" in slot:
                values.append({
                    "labels": slot["labels"],
                    "count": slot["count"],
                    "sum": slot["sum"],
                    "buckets": [
                        [bound, cumulative]
                        for bound, cumulative in slot["buckets"].items()
                    ],
                })
            else:
                values.append({"labels": slot["labels"], "value": slot["value"]})
        result[name] = {"type": family["type"], "values": values}
    return result


def render_snapshot_prometheus(
    snapshot: Snapshot, help_map: Optional[Dict[str, str]] = None
) -> str:
    """Prometheus text exposition (v0.0.4) of a snapshot dict.

    The inverse of living inside one process: a snapshot that crossed a
    process boundary (worker → front door) no longer has a registry to
    render it, so this renders the dict directly — same format
    :meth:`MetricsRegistry.render_prometheus` produces.
    """
    help_map = help_map or {}
    lines: List[str] = []
    for name, family in snapshot.items():
        if name in help_map:
            lines.append(f"# HELP {name} {help_map[name]}")
        lines.append(f"# TYPE {name} {family['type']}")
        for series in family.get("values", ()):
            labels = dict(series.get("labels", {}))
            if "buckets" in series:
                for bound, cumulative in series["buckets"]:
                    bound_text = (
                        bound if isinstance(bound, str)
                        else _format_value(float(bound))
                    )
                    le = _render_labels(labels, f'le="{bound_text}"')
                    lines.append(
                        f"{name}_bucket{le} {_format_value(float(cumulative))}"
                    )
                suffix = _render_labels(labels)
                lines.append(
                    f"{name}_sum{suffix} {_format_value(float(series['sum']))}"
                )
                lines.append(
                    f"{name}_count{suffix} "
                    f"{_format_value(float(series['count']))}"
                )
            else:
                suffix = _render_labels(labels)
                lines.append(
                    f"{name}{suffix} {_format_value(float(series['value']))}"
                )
    return "\n".join(lines) + "\n"
