"""Neural-network building blocks on top of :mod:`repro.tensor`.

Provides a ``Module``/``Parameter`` system, common layers, loss functions
and optimizers — the minimum viable Torch-alike needed to implement every
GNN and baseline in the survey.
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.layers import (
    Activation,
    BatchNorm1d,
    Dropout,
    Embedding,
    GRUCell,
    Identity,
    LayerNorm,
    Linear,
    MLP,
    Sequential,
)
from repro.nn import losses
from repro.nn import optim
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    huber_loss,
    mae_loss,
    mse_loss,
    nt_xent_loss,
)
from repro.nn.optim import SGD, Adam, AdamW, StepLR, CosineAnnealingLR

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Activation",
    "BatchNorm1d",
    "Dropout",
    "Embedding",
    "GRUCell",
    "Identity",
    "LayerNorm",
    "Linear",
    "MLP",
    "Sequential",
    "losses",
    "optim",
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "huber_loss",
    "mae_loss",
    "mse_loss",
    "nt_xent_loss",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "CosineAnnealingLR",
]
