"""Standard layers: Linear, Embedding, Dropout, norms, MLP, GRUCell.

Every layer takes an explicit ``numpy.random.Generator`` for weight
initialization so results are reproducible from a single seed.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import init, ops
from repro.tensor.autograd import Tensor

ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": ops.relu,
    "leaky_relu": ops.leaky_relu,
    "elu": ops.elu,
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "identity": lambda x: x,
}


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Look up an activation function by name."""
    if name not in ACTIVATIONS:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}")
    return ACTIVATIONS[name]


class Identity(Module):
    """No-op layer, useful as a placeholder."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Activation(Module):
    """Wrap a named activation function as a layer."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self._fn = get_activation(name)

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)


class Linear(Module):
    """Affine map ``y = x @ W + b`` with Glorot-uniform initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        std: float = 0.1,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std, rng))

    def forward(self, index: np.ndarray) -> Tensor:
        index = np.asarray(index, dtype=np.int64)
        if index.min(initial=0) < 0 or (index.size and index.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        flat = ops.gather_rows(self.weight, index.reshape(-1))
        return flat.reshape(index.shape + (self.embedding_dim,))


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = ops.dropout_mask(x.shape, self.p, self._rng)
        return ops.mul(x, Tensor(mask))


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = ops.mean(x, axis=-1, keepdims=True)
        centered = ops.sub(x, mu)
        var = ops.mean(ops.mul(centered, centered), axis=-1, keepdims=True)
        std = ops.power(ops.add(var, Tensor(self.eps)), 0.5)
        normed = ops.div(centered, std)
        return ops.add(ops.mul(normed, self.gamma), self.beta)


class BatchNorm1d(Module):
    """Batch normalization with running statistics for eval mode."""

    def __init__(self, dim: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.running_mean = np.zeros(dim)
        self.running_var = np.ones(dim)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * batch_var
            )
            mu = ops.mean(x, axis=0, keepdims=True)
            centered = ops.sub(x, mu)
            var = ops.mean(ops.mul(centered, centered), axis=0, keepdims=True)
            std = ops.power(ops.add(var, Tensor(self.eps)), 0.5)
            normed = ops.div(centered, std)
        else:
            normed = ops.div(
                ops.sub(x, Tensor(self.running_mean)),
                Tensor(np.sqrt(self.running_var + self.eps)),
            )
        return ops.add(ops.mul(normed, self.gamma), self.beta)


class Sequential(Module):
    """Chain layers; each layer is applied to the previous layer's output."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers = list(layers)
        for i, layer in enumerate(self._layers):
            self._modules[str(i)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class MLP(Module):
    """Multilayer perceptron with configurable hidden sizes.

    ``hidden_dims=()`` degrades gracefully to a single linear layer, which
    is how the survey's prediction heads (Sec. 2.4) are implemented.
    """

    def __init__(
        self,
        in_features: int,
        hidden_dims: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        activation: str = "relu",
        dropout: float = 0.0,
        norm: Optional[str] = None,
    ) -> None:
        super().__init__()
        layers: list[Module] = []
        prev = in_features
        for width in hidden_dims:
            layers.append(Linear(prev, width, rng))
            if norm == "layer":
                layers.append(LayerNorm(width))
            elif norm == "batch":
                layers.append(BatchNorm1d(width))
            layers.append(Activation(activation))
            if dropout > 0:
                layers.append(Dropout(dropout, rng))
            prev = width
        layers.append(Linear(prev, out_features, rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class GRUCell(Module):
    """Gated recurrent unit cell, used by gated graph networks (Fi-GNN)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_ir = Parameter(init.glorot_uniform((input_dim, hidden_dim), rng))
        self.w_hr = Parameter(init.glorot_uniform((hidden_dim, hidden_dim), rng))
        self.b_r = Parameter(np.zeros(hidden_dim))
        self.w_iz = Parameter(init.glorot_uniform((input_dim, hidden_dim), rng))
        self.w_hz = Parameter(init.glorot_uniform((hidden_dim, hidden_dim), rng))
        self.b_z = Parameter(np.zeros(hidden_dim))
        self.w_in = Parameter(init.glorot_uniform((input_dim, hidden_dim), rng))
        self.w_hn = Parameter(init.glorot_uniform((hidden_dim, hidden_dim), rng))
        self.b_n = Parameter(np.zeros(hidden_dim))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        reset = ops.sigmoid(
            ops.add(ops.add(ops.matmul(x, self.w_ir), ops.matmul(h, self.w_hr)), self.b_r)
        )
        update = ops.sigmoid(
            ops.add(ops.add(ops.matmul(x, self.w_iz), ops.matmul(h, self.w_hz)), self.b_z)
        )
        candidate = ops.tanh(
            ops.add(
                ops.add(ops.matmul(x, self.w_in), ops.matmul(ops.mul(reset, h), self.w_hn)),
                self.b_n,
            )
        )
        one_minus = ops.sub(Tensor(1.0), update)
        return ops.add(ops.mul(one_minus, candidate), ops.mul(update, h))
