"""Optimizers (SGD, Adam, AdamW) and learning-rate schedulers."""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Globally rescale gradients so their joint L2 norm is <= max_norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = math.sqrt(total)
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.params:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class _Scheduler:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * progress)
        )
