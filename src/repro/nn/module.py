"""``Module``/``Parameter`` abstractions (a minimal torch.nn.Module).

Modules register parameters and sub-modules automatically via attribute
assignment, support train/eval modes, parameter iteration, zeroing of
gradients and state-dict (de)serialization.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.tensor.autograd import Tensor


class Parameter(Tensor):
    """A Tensor that is a learnable parameter of a Module."""

    def __init__(self, data, name: str = "") -> None:
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses define parameters/sub-modules in ``__init__`` (plain attribute
    assignment is enough) and implement ``forward``.  Calling the module
    invokes ``forward``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute-based registration -----------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            if not value.name:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- iteration -------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All unique parameters of this module and its descendants."""
        seen: set[int] = set()
        out: List[Parameter] = []
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                out.append(param)
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # -- training state ---------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- persistence -------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # -- invocation ---------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Holds an (indexable) list of sub-modules."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._list: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._list)
        self._list.append(module)
        self._modules[str(index)] = module
        return self

    def __getitem__(self, index: int) -> Module:
        return self._list[index]

    def __len__(self) -> int:
        return len(self._list)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers don't forward
        raise RuntimeError("ModuleList is a container and cannot be called")
