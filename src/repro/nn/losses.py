"""Loss functions for classification, regression and self-supervision.

All losses accept an optional ``mask`` (boolean array over the batch axis)
so the same full-batch computation supports the semi-supervised setting the
survey emphasizes (Sec. 2.5, "Supervision Signal"): losses are evaluated
only on labelled rows while gradients still flow through the whole graph.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import ops
from repro.tensor.autograd import Tensor


def _apply_mask(per_example: Tensor, mask: Optional[np.ndarray]) -> Tensor:
    """Average ``per_example`` losses, restricted to ``mask`` if given."""
    if mask is None:
        return ops.mean(per_example)
    mask = np.asarray(mask, dtype=bool)
    if mask.sum() == 0:
        raise ValueError("loss mask selects no examples")
    selected = ops.gather_rows(per_example, np.nonzero(mask)[0])
    return ops.mean(selected)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
    class_weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Multi-class cross entropy from raw logits.

    Parameters
    ----------
    logits: ``(n, num_classes)`` raw scores.
    targets: ``(n,)`` integer class labels.
    mask: optional boolean array restricting which rows contribute.
    class_weights: optional ``(num_classes,)`` re-weighting (for imbalance).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    n, c = logits.shape
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} does not match logits rows {n}")
    if targets.min(initial=0) < 0 or (targets.size and targets.max() >= c):
        raise ValueError(f"target labels must lie in [0, {c})")
    log_probs = ops.log_softmax(logits, axis=-1)
    picked = ops.getitem(log_probs, (np.arange(n), targets))
    nll = ops.neg(picked)
    if class_weights is not None:
        weights = np.asarray(class_weights, dtype=np.float64)[targets]
        nll = ops.mul(nll, Tensor(weights))
    return _apply_mask(nll, mask)


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
    pos_weight: float = 1.0,
) -> Tensor:
    """Numerically stable binary cross entropy from logits.

    Uses the identity ``BCE = max(x,0) - x*y + log(1 + exp(-|x|))``.
    """
    targets_arr = np.asarray(targets, dtype=np.float64)
    flat = logits if logits.ndim == 1 else logits.reshape(-1)
    y = Tensor(targets_arr.reshape(-1))
    zero = Tensor(np.zeros(flat.shape))
    max_part = ops.maximum(flat, zero)
    abs_part = ops.absolute(flat)
    log_part = ops.log(ops.add(Tensor(1.0), ops.exp(ops.neg(abs_part))))
    per_example = ops.add(ops.sub(max_part, ops.mul(flat, y)), log_part)
    if pos_weight != 1.0:
        weights = np.where(targets_arr.reshape(-1) > 0.5, pos_weight, 1.0)
        per_example = ops.mul(per_example, Tensor(weights))
    return _apply_mask(per_example, mask)


def mse_loss(pred: Tensor, target: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    target_t = Tensor(np.asarray(target, dtype=np.float64))
    diff = ops.sub(pred, target_t)
    per_elem = ops.mul(diff, diff)
    if per_elem.ndim > 1:
        per_elem = ops.mean(per_elem, axis=tuple(range(1, per_elem.ndim)))
    return _apply_mask(per_elem, mask)


def mae_loss(pred: Tensor, target: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    target_t = Tensor(np.asarray(target, dtype=np.float64))
    per_elem = ops.absolute(ops.sub(pred, target_t))
    if per_elem.ndim > 1:
        per_elem = ops.mean(per_elem, axis=tuple(range(1, per_elem.ndim)))
    return _apply_mask(per_elem, mask)


def huber_loss(
    pred: Tensor,
    target: np.ndarray,
    delta: float = 1.0,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Huber (smooth L1) loss: quadratic within ``delta``, linear outside."""
    target_t = Tensor(np.asarray(target, dtype=np.float64))
    diff = ops.sub(pred, target_t)
    abs_diff = ops.absolute(diff)
    quadratic = ops.mul(Tensor(0.5), ops.mul(diff, diff))
    linear = ops.sub(ops.mul(Tensor(delta), abs_diff), Tensor(0.5 * delta * delta))
    small = abs_diff.data <= delta
    per_elem = ops.where(small, quadratic, linear)
    if per_elem.ndim > 1:
        per_elem = ops.mean(per_elem, axis=tuple(range(1, per_elem.ndim)))
    return _apply_mask(per_elem, mask)


def nt_xent_loss(z1: Tensor, z2: Tensor, temperature: float = 0.5) -> Tensor:
    """Normalized-temperature cross entropy (SimCLR/GRACE contrastive loss).

    ``z1[i]`` and ``z2[i]`` are two views of the same instance; every other
    row of either view is a negative.  This is the objective used by the
    survey's contrastive auxiliary tasks (SUBLIME, TabGSL, SSGNet).
    """
    n = z1.shape[0]
    if z2.shape[0] != n:
        raise ValueError("views must contain the same number of instances")

    def normalize(z: Tensor) -> Tensor:
        norms = ops.power(
            ops.add(ops.sum(ops.mul(z, z), axis=1, keepdims=True), Tensor(1e-12)), 0.5
        )
        return ops.div(z, norms)

    a = normalize(z1)
    b = normalize(z2)
    full = ops.concat([a, b], axis=0)  # (2n, d)
    sim = ops.matmul(full, ops.transpose(full))  # (2n, 2n)
    sim = ops.div(sim, Tensor(float(temperature)))
    # Mask out self-similarity by subtracting a large constant on the diagonal.
    eye = np.eye(2 * n) * 1e9
    sim = ops.sub(sim, Tensor(eye))
    # Positive pair for row i is i+n (mod 2n).
    targets = np.concatenate([np.arange(n, 2 * n), np.arange(0, n)])
    return cross_entropy(sim, targets)
