"""Post-hoc GNN explanation (survey Table 7, "Explanation Preservation").

xFraud [110] preserves domain-expert explanations through GNNExplainer-style
subgraph explanations.  This module implements the GNNExplainer [155]
mechanism for the library's GCN stacks: learn a soft mask over the edges
near a target node such that the masked graph still yields the model's
prediction, while L1 + entropy penalties drive the mask sparse and binary.
The surviving high-weight edges are the explanation.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from repro import nn
from repro.graph.homogeneous import Graph
from repro.tensor import Tensor, ops


@dataclasses.dataclass
class Explanation:
    """Result of explaining one node's prediction."""

    node: int
    edge_index: np.ndarray       # (2, E_local) edges in the explained subgraph
    edge_importance: np.ndarray  # (E_local,) mask values in [0, 1]
    predicted_class: int

    def top_edges(self, k: int = 5) -> List[Tuple[int, int, float]]:
        """The ``k`` most important (src, dst, weight) edges."""
        order = np.argsort(-self.edge_importance)[:k]
        return [
            (int(self.edge_index[0, i]), int(self.edge_index[1, i]),
             float(self.edge_importance[i]))
            for i in order
        ]


def khop_edge_mask(graph: Graph, node: int, hops: int) -> np.ndarray:
    """Boolean mask selecting edges whose endpoints lie within ``hops`` of ``node``."""
    src, dst = graph.edge_index
    reached = {int(node)}
    frontier = {int(node)}
    for _ in range(hops):
        hits = np.isin(dst, list(frontier)) | np.isin(src, list(frontier))
        new_nodes = set(src[hits].tolist()) | set(dst[hits].tolist())
        frontier = new_nodes - reached
        reached |= new_nodes
        if not frontier:
            break
    return np.isin(src, list(reached)) & np.isin(dst, list(reached))


class GNNExplainer:
    """Learn an edge mask explaining a trained GCN's prediction at one node.

    The explainer re-runs the model's convolution weights over a
    *differentiably re-weighted* graph: edges inside the k-hop neighborhood
    carry ``sigmoid(mask)`` weights, all other edges weight 1, and
    aggregation is mean-normalized by the masked degree (+1 for the self
    connection).  Only the mask is optimized; the model stays frozen.
    """

    def __init__(
        self,
        model,
        graph: Graph,
        epochs: int = 100,
        lr: float = 0.1,
        sparsity_weight: float = 0.05,
        entropy_weight: float = 0.1,
        seed: int = 0,
    ) -> None:
        if graph.x is None:
            raise ValueError("graph must carry node features")
        self.model = model
        self.graph = graph
        self.epochs = epochs
        self.lr = lr
        self.sparsity_weight = sparsity_weight
        self.entropy_weight = entropy_weight
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _edge_weights(self, mask: Tensor, local_idx: np.ndarray) -> Tensor:
        """(E,) differentiable weights: masked on local edges, 1 elsewhere."""
        num_edges = self.graph.num_edges
        base = np.ones(num_edges)
        base[local_idx] = 0.0
        scatter = np.zeros((num_edges, len(local_idx)))
        scatter[local_idx, np.arange(len(local_idx))] = 1.0
        lifted = ops.matmul(Tensor(scatter), mask.reshape(-1, 1)).reshape(-1)
        return ops.add(lifted, Tensor(base))

    def _masked_forward(self, mask: Tensor, local_idx: np.ndarray) -> Tensor:
        """Model forward with re-weighted mean aggregation (mask receives grads)."""
        weights = self._edge_weights(mask, local_idx)
        src, dst = self.graph.edge_index
        n = self.graph.num_nodes
        degree = ops.segment_sum(weights, dst, n)
        denom = ops.add(degree, Tensor(1.0)).reshape(n, 1)
        h = Tensor(self.graph.x)
        convs = self.model.convs
        for i, conv in enumerate(convs):
            transformed = conv.linear(h)
            gathered = ops.gather_rows(transformed, src)
            weighted = ops.mul(gathered, weights.reshape(-1, 1))
            aggregated = ops.segment_sum(weighted, dst, n)
            h = ops.div(ops.add(aggregated, transformed), denom)
            if i < len(convs) - 1:
                h = ops.relu(h)
        return h

    def explain(self, node: int, hops: int = 2) -> Explanation:
        """Optimize the edge mask for ``node`` and return the explanation."""
        local = khop_edge_mask(self.graph, node, hops)
        if not local.any():
            raise ValueError(f"node {node} has no edges within {hops} hops")
        local_idx = np.nonzero(local)[0]
        target_class = int(self.model().data[node].argmax())

        mask_logits = nn.Parameter(self._rng.normal(1.0, 0.1, size=int(local.sum())))
        optimizer = nn.Adam([mask_logits], lr=self.lr)
        one = Tensor(1.0)
        for _ in range(self.epochs):
            mask = ops.sigmoid(mask_logits)
            logits = self._masked_forward(mask, local_idx)
            ce = nn.cross_entropy(
                logits[node].reshape(1, -1), np.array([target_class])
            )
            sparsity = ops.mean(mask)
            entropy = ops.neg(ops.mean(ops.add(
                ops.mul(mask, ops.log(ops.add(mask, Tensor(1e-9)))),
                ops.mul(ops.sub(one, mask),
                        ops.log(ops.add(ops.sub(one, mask), Tensor(1e-9)))),
            )))
            loss = ops.add(ce, ops.add(
                ops.mul(Tensor(self.sparsity_weight), sparsity),
                ops.mul(Tensor(self.entropy_weight), entropy),
            ))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        importance = 1.0 / (1.0 + np.exp(-mask_logits.data))
        return Explanation(
            node=int(node),
            edge_index=self.graph.edge_index[:, local_idx],
            edge_importance=importance,
            predicted_class=target_class,
        )

    def fidelity(self, explanation: Explanation, threshold: float = 0.5) -> bool:
        """Does the model keep its prediction when only surviving edges remain?

        Hard-drops the masked-out local edges (importance < threshold) and
        checks the argmax at the explained node is unchanged.
        """
        keep = np.ones(self.graph.num_edges, dtype=bool)
        local_positions = np.nonzero(
            khop_edge_mask(self.graph, explanation.node, hops=10)
        )[0]
        # Map explanation edges back to global positions by matching pairs.
        pair_to_importance = {
            (int(s), int(d)): imp
            for s, d, imp in zip(*explanation.edge_index, explanation.edge_importance)
        }
        for position in local_positions:
            pair = (int(self.graph.edge_index[0, position]),
                    int(self.graph.edge_index[1, position]))
            if pair in pair_to_importance and pair_to_importance[pair] < threshold:
                keep[position] = False
        pruned = Graph(
            self.graph.num_nodes,
            self.graph.edge_index[:, keep],
            x=self.graph.x,
            y=self.graph.y,
        )
        from repro.gnn.networks import GCN

        clone = GCN(pruned, [c.linear.out_features for c in self.model.convs][:-1],
                    self.model.convs[-1].linear.out_features, np.random.default_rng(0))
        clone.load_state_dict(self.model.state_dict())
        clone.eval()
        new_class = int(clone().data[explanation.node].argmax())
        return new_class == explanation.predicted_class
