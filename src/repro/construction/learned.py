"""Learning-based graph structure learners (survey Sec. 4.2.3, Table 4).

Three strategies, each an ``nn.Module`` mapping node features to a dense
*differentiable* adjacency Tensor:

* :class:`MetricGraphLearner` — kernel similarity over (learnably weighted)
  features: IDGL / DGM / HES-GSL family;
* :class:`NeuralGraphLearner` — an MLP produces embeddings whose similarity
  defines edges: SLAPS / SUBLIME / TabGSL family;
* :class:`DirectGraphLearner` — the adjacency matrix itself is a free
  parameter: LDS / Table2Graph family.

All learners return a *row-normalized* or GCN-normalized adjacency so they
can be consumed directly by :class:`repro.gnn.dense.DenseGCNConv`.  Top-k
sparsification uses a fixed mask through which gradients flow only on kept
entries (the standard straight-through relaxation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor, ops
from repro.tensor import init as tinit


def topk_sparsify(scores: np.ndarray, k: int) -> np.ndarray:
    """0/1 mask keeping the ``k`` largest entries per row (diagonal excluded)."""
    scores = np.asarray(scores, dtype=np.float64).copy()
    n = scores.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, n), got {k}")
    np.fill_diagonal(scores, -np.inf)
    keep = np.argpartition(scores, kth=n - k - 1, axis=1)[:, -k:]
    mask = np.zeros_like(scores)
    np.put_along_axis(mask, keep, 1.0, axis=1)
    return mask


def dense_gcn_norm(adjacency: Tensor, add_self_loops: bool = True, eps: float = 1e-8) -> Tensor:
    """Differentiable D^-1/2 (A [+ I]) D^-1/2 for a dense nonnegative adjacency."""
    n = adjacency.shape[0]
    a = ops.add(adjacency, Tensor(np.eye(n))) if add_self_loops else adjacency
    degrees = ops.sum(a, axis=1)
    inv_sqrt = ops.power(ops.add(degrees, Tensor(eps)), -0.5)
    row = inv_sqrt.reshape(n, 1)
    col = inv_sqrt.reshape(1, n)
    return ops.mul(ops.mul(a, row), col)


def _symmetrize(a: Tensor) -> Tensor:
    return ops.mul(Tensor(0.5), ops.add(a, ops.transpose(a)))


class MetricGraphLearner(nn.Module):
    """Multi-head weighted-cosine metric learner (IDGL-style).

    Each head owns a learnable feature-weight vector; head similarity is the
    cosine between reweighted features, averaged across heads, thresholded
    at ``epsilon`` (ReLU shift keeps differentiability) and optionally
    top-k sparsified.
    """

    def __init__(
        self,
        num_features: int,
        rng: np.random.Generator,
        num_heads: int = 4,
        epsilon: float = 0.0,
        k: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.num_heads = num_heads
        self.epsilon = epsilon
        self.k = k
        self.head_weights = nn.Parameter(
            tinit.uniform((num_heads, num_features), 0.5, 1.5, rng)
        )

    def similarity(self, x: Tensor) -> Tensor:
        sims = []
        for h in range(self.num_heads):
            w = self.head_weights[h]  # (d,)
            weighted = ops.mul(x, w)
            norms = ops.power(
                ops.add(ops.sum(ops.mul(weighted, weighted), axis=1, keepdims=True),
                        Tensor(1e-12)),
                0.5,
            )
            normed = ops.div(weighted, norms)
            sims.append(ops.matmul(normed, ops.transpose(normed)))
        total = sims[0]
        for s in sims[1:]:
            total = ops.add(total, s)
        return ops.mul(Tensor(1.0 / self.num_heads), total)

    def forward(self, x: Tensor) -> Tensor:
        sim = self.similarity(x)
        adj = ops.relu(ops.sub(sim, Tensor(self.epsilon)))
        if self.k is not None:
            mask = topk_sparsify(adj.data, self.k)
            adj = ops.mul(adj, Tensor(mask))
        adj = _symmetrize(adj)
        return dense_gcn_norm(adj)


class NeuralGraphLearner(nn.Module):
    """MLP-embedding graph generator (SLAPS-style).

    Features pass through an MLP; the adjacency is the ReLU-thresholded
    cosine similarity of the embeddings, optionally blended with a fixed
    kNN-initialized prior: ``A = (1-lam) * A_learned + lam * A_init``.
    """

    def __init__(
        self,
        num_features: int,
        hidden_dim: int,
        rng: np.random.Generator,
        k: Optional[int] = 15,
        init_adjacency: Optional[np.ndarray] = None,
        blend: float = 0.3,
    ) -> None:
        super().__init__()
        self.encoder = nn.MLP(num_features, (hidden_dim,), hidden_dim, rng)
        self.k = k
        self.blend = blend if init_adjacency is not None else 0.0
        self._init_adjacency = (
            None if init_adjacency is None else np.asarray(init_adjacency, dtype=np.float64)
        )

    def forward(self, x: Tensor) -> Tensor:
        z = self.encoder(x)
        norms = ops.power(
            ops.add(ops.sum(ops.mul(z, z), axis=1, keepdims=True), Tensor(1e-12)), 0.5
        )
        normed = ops.div(z, norms)
        sim = ops.relu(ops.matmul(normed, ops.transpose(normed)))
        if self.k is not None:
            mask = topk_sparsify(sim.data, self.k)
            sim = ops.mul(sim, Tensor(mask))
        sim = _symmetrize(sim)
        if self._init_adjacency is not None and self.blend > 0:
            sim = ops.add(
                ops.mul(Tensor(1.0 - self.blend), sim),
                Tensor(self.blend * self._init_adjacency),
            )
        return dense_gcn_norm(sim)


class DirectGraphLearner(nn.Module):
    """Free-parameter adjacency (LDS / Table2Graph style).

    ``A = sigmoid(theta)`` (symmetrized).  ``theta`` can be initialized from
    a prior graph (e.g. kNN) or randomly.  :meth:`sparsity_penalty` exposes
    the L1 regularizer Table2Graph uses to keep the matrix sparse.
    """

    def __init__(
        self,
        num_nodes: int,
        rng: np.random.Generator,
        init_adjacency: Optional[np.ndarray] = None,
        init_scale: float = 1.0,
    ) -> None:
        super().__init__()
        if init_adjacency is not None:
            prior = np.asarray(init_adjacency, dtype=np.float64)
            if prior.shape != (num_nodes, num_nodes):
                raise ValueError("init_adjacency must be (n, n)")
            logits = init_scale * (2.0 * np.clip(prior, 0, 1) - 1.0)
        else:
            logits = rng.normal(0.0, init_scale, size=(num_nodes, num_nodes))
        self.theta = nn.Parameter(logits)

    def adjacency(self) -> Tensor:
        return _symmetrize(ops.sigmoid(self.theta))

    def forward(self, x: Optional[Tensor] = None) -> Tensor:
        # ``x`` accepted (and ignored) for interface parity with other learners.
        return dense_gcn_norm(self.adjacency())

    def sparsity_penalty(self) -> Tensor:
        """Mean absolute edge probability — L1 sparsity regularizer."""
        return ops.mean(self.adjacency())
