"""Rule-based graph construction (survey Sec. 4.2.2, Table 3).

Implements the similarity measures and the four mainstream edge criteria
the survey identifies: k-nearest neighbors, thresholding, fully-connected,
and same-feature-value.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.graph.homogeneous import Graph
from repro.graph.utils import symmetrize_edge_index


# ----------------------------------------------------------------------
# pairwise distances / similarities
# ----------------------------------------------------------------------
def pairwise_distances(x: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Dense pairwise distance matrix for ``metric`` in {euclidean, manhattan, cosine}."""
    x = np.asarray(x, dtype=np.float64)
    if metric == "euclidean":
        sq = (x**2).sum(axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
        return np.sqrt(np.maximum(d2, 0.0))
    if metric == "manhattan":
        return np.abs(x[:, None, :] - x[None, :, :]).sum(axis=-1)
    if metric == "cosine":
        return 1.0 - pairwise_similarity(x, "cosine")
    raise ValueError(f"unknown distance metric {metric!r}")


def _cosine_similarity(x: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    normed = x / np.maximum(norms, 1e-12)
    return normed @ normed.T


def _rbf_similarity(x: np.ndarray, gamma: Optional[float] = None) -> np.ndarray:
    d = pairwise_distances(x, "euclidean")
    if gamma is None:
        # Median heuristic: gamma = 1 / (2 * median(d)^2).
        positive = d[d > 0]
        median = np.median(positive) if positive.size else 1.0
        gamma = 1.0 / max(2.0 * median**2, 1e-12)
    return np.exp(-gamma * d**2)


def _heat_similarity(x: np.ndarray, t: float = 1.0) -> np.ndarray:
    d = pairwise_distances(x, "euclidean")
    return np.exp(-(d**2) / max(t, 1e-12))


def _pearson_similarity(x: np.ndarray) -> np.ndarray:
    centered = x - x.mean(axis=1, keepdims=True)
    return _cosine_similarity(centered)


def _inner_similarity(x: np.ndarray) -> np.ndarray:
    return x @ x.T


SIMILARITIES: Dict[str, Callable[..., np.ndarray]] = {
    "cosine": _cosine_similarity,
    "rbf": _rbf_similarity,
    "heat": _heat_similarity,
    "pearson": _pearson_similarity,
    "inner": _inner_similarity,
}


def pairwise_similarity(x: np.ndarray, measure: str = "cosine", **kwargs) -> np.ndarray:
    """Dense pairwise similarity for ``measure`` in SIMILARITIES."""
    x = np.asarray(x, dtype=np.float64)
    if measure in SIMILARITIES:
        return SIMILARITIES[measure](x, **kwargs)
    if measure == "euclidean":
        # Convert distance to similarity for threshold-style uses.
        return -pairwise_distances(x, "euclidean")
    raise ValueError(
        f"unknown similarity {measure!r}; choose from {sorted(SIMILARITIES) + ['euclidean']}"
    )


# ----------------------------------------------------------------------
# kNN criterion
# ----------------------------------------------------------------------
def knn_edges(
    x: np.ndarray,
    k: int,
    metric: str = "euclidean",
    include_distances: bool = False,
):
    """Directed kNN edge index: each node points to its ``k`` nearest others.

    Returns ``edge_index`` of shape ``(2, n*k)`` with edges (neighbor → node)
    so that message passing aggregates *from* neighbors; optionally also the
    neighbor distances (used by LUNAR's distance-preserving edge features).
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, n), got k={k}, n={n}")
    if metric in ("euclidean", "manhattan", "cosine"):
        dist = pairwise_distances(x, metric)
    else:
        dist = -pairwise_similarity(x, metric)
    np.fill_diagonal(dist, np.inf)
    neighbor_idx = np.argpartition(dist, kth=k - 1, axis=1)[:, :k]
    # Sort each row's k neighbors by actual distance for determinism.
    row_order = np.argsort(
        np.take_along_axis(dist, neighbor_idx, axis=1), axis=1
    )
    neighbor_idx = np.take_along_axis(neighbor_idx, row_order, axis=1)
    dst = np.repeat(np.arange(n, dtype=np.int64), k)
    src = neighbor_idx.reshape(-1).astype(np.int64)
    edge_index = np.stack([src, dst])
    if include_distances:
        distances = dist[dst, src]
        return edge_index, distances
    return edge_index


def knn_graph(
    x: np.ndarray,
    k: int,
    metric: str = "euclidean",
    symmetric: bool = True,
    y: Optional[np.ndarray] = None,
) -> Graph:
    """Instance graph via the kNN criterion (LUNAR, GNN4MV, LSTM-GNN style)."""
    edge_index = knn_edges(x, k, metric)
    if symmetric:
        edge_index, _ = symmetrize_edge_index(edge_index)
    return Graph(x.shape[0], edge_index, x=x, y=y)


# ----------------------------------------------------------------------
# threshold criterion
# ----------------------------------------------------------------------
def threshold_graph(
    x: np.ndarray,
    threshold: float,
    measure: str = "cosine",
    y: Optional[np.ndarray] = None,
    weighted: bool = False,
) -> Graph:
    """Connect pairs whose similarity exceeds ``threshold`` (GINN/GAEOD style)."""
    sim = pairwise_similarity(x, measure)
    np.fill_diagonal(sim, -np.inf)
    src, dst = np.nonzero(sim > threshold)
    edge_index = np.stack([src, dst]).astype(np.int64)
    edge_weight = sim[src, dst] if weighted else None
    return Graph(x.shape[0], edge_index, x=x, y=y, edge_weight=edge_weight)


# ----------------------------------------------------------------------
# fully-connected criterion
# ----------------------------------------------------------------------
def fully_connected_graph(
    num_nodes: int,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    self_loops: bool = False,
) -> Graph:
    """Complete graph over ``num_nodes`` (Fi-GNN feature graphs, SGANM)."""
    idx = np.arange(num_nodes, dtype=np.int64)
    src = np.repeat(idx, num_nodes)
    dst = np.tile(idx, num_nodes)
    if not self_loops:
        mask = src != dst
        src, dst = src[mask], dst[mask]
    return Graph(num_nodes, np.stack([src, dst]), x=x, y=y)


# ----------------------------------------------------------------------
# same-feature-value criterion
# ----------------------------------------------------------------------
def same_value_graph(
    codes: np.ndarray,
    x: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    max_group_degree: Optional[int] = 30,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Connect instances sharing the same categorical value (TabGNN, WPN).

    A value shared by ``m`` instances would create a clique of ``m(m-1)``
    edges; ``max_group_degree`` caps the per-node degree inside each value
    group by sampling, which keeps popular values from exploding the graph
    (the survey's scalability warning for this rule).  Missing codes (-1)
    create no edges.
    """
    codes = np.asarray(codes, dtype=np.int64).reshape(-1)
    rng = rng or np.random.default_rng(0)
    n = codes.shape[0]
    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for value in np.unique(codes):
        if value < 0:
            continue
        members = np.nonzero(codes == value)[0]
        m = len(members)
        if m < 2:
            continue
        if max_group_degree is None or m - 1 <= max_group_degree:
            src = np.repeat(members, m)
            dst = np.tile(members, m)
            mask = src != dst
            sources.append(src[mask])
            targets.append(dst[mask])
        else:
            # Sample max_group_degree partners per member.
            for node in members:
                others = members[members != node]
                partners = rng.choice(others, size=max_group_degree, replace=False)
                sources.append(partners)
                targets.append(np.full(max_group_degree, node, dtype=np.int64))
    if sources:
        edge_index = np.stack(
            [np.concatenate(sources), np.concatenate(targets)]
        ).astype(np.int64)
        edge_index, _ = symmetrize_edge_index(edge_index)
    else:
        edge_index = np.zeros((2, 0), dtype=np.int64)
    return Graph(n, edge_index, x=x, y=y)
