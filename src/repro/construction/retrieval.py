"""Retrieval-based graph construction (survey Sec. 4.2.4, PET [27]).

For each target row, retrieve the most relevant rows from a data pool and
connect the target to its retrieved neighbors.  Unlike plain kNN over the
full dataset, retrieval (a) separates the query set from the pool — new
rows can be linked into a frozen pool at test time — and (b) can restrict
similarity to a subset of columns (the "label-relevant" view PET uses).

Index backends
--------------
:class:`PoolIndex` owns the *measure math* (pool-side precomputation,
query representations, ranking scores) and delegates neighbor *search*
to a pluggable backend.  A backend implements two methods::

    build(index: PoolIndex) -> backend   # precompute search structures
    top_k(queries, k, exclude=None) -> (B, k) int64 pool indices

and registers itself under a name in :data:`INDEX_BACKENDS` (or via
:func:`register_index_backend`).  Everything downstream — the serving
engine, ``retrieval_augmented_graph``, the CLI ``--index`` flag — selects
backends purely by name, so a future HNSW/LSH plug-in needs zero engine
edits: implement the two methods, register the name, pass it through.

Two backends ship:

* ``"exact"`` (default) — the O(N·d) scan over the precomputed pool
  matrix.  This is the oracle every approximate backend is measured
  against, and the bit-for-bit behavior `PoolIndex` always had.
* ``"ivf"`` — a pure-numpy IVF (inverted-file) index: a k-means coarse
  quantizer over the pool's ranking representation splits the pool into
  ``nlist ≈ √N`` cells; a query scores the ``nprobe`` nearest cells'
  members exactly (the same sqrt-free ``−d²`` / dot-product surrogate
  the exact scan ranks by) and re-ranks only those candidates — O(√N·d)
  per query instead of O(N·d).  Works for the dot-product family
  (``cosine``/``pearson``/``inner``) and the distance family
  (``euclidean``/``rbf``/``heat``); exotic measures (anything routed
  through the generic stacked fallback) silently keep the exact scan,
  reported via :attr:`PoolIndex.backend_name`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.construction.rules import pairwise_similarity
from repro.graph.homogeneous import Graph
from repro.graph.utils import symmetrize_edge_index


def cross_similarity(
    queries: np.ndarray,
    pool: np.ndarray,
    measure: str = "cosine",
) -> np.ndarray:
    """(len(queries), len(pool)) similarity block, computed directly.

    Equivalent in *ranking* to slicing ``pairwise_similarity`` of the
    stacked matrix, but costs O(B·N) instead of O((B+N)²) — the difference
    between a serving hot path and a quadratic blow-up as the pool grows.
    (For ``rbf``/``heat`` the kernel bandwidth is estimated from the cross
    block rather than the full stack; the kernel is monotone in distance,
    so top-k neighbor rankings are unchanged.)
    """
    return PoolIndex(pool, measure).similarity(queries)


def _sq_norms(x: np.ndarray) -> np.ndarray:
    """Row-wise squared norms — the query-side term shared by
    :meth:`PoolIndex.similarity` and :meth:`PoolIndex._ranking_scores`."""
    return (x**2).sum(axis=1)


def _select_top_k(scores: np.ndarray, k: int, size: int) -> np.ndarray:
    """Best-first (B, k) column indices of a (B, size) score block."""
    top = np.argpartition(scores, kth=size - k, axis=1)[:, -k:]
    order = np.argsort(np.take_along_axis(scores, top, axis=1), axis=1)[:, ::-1]
    return np.take_along_axis(top, order, axis=1)


class ExactIndexBackend:
    """The full O(N·d) scan — the default backend and recall oracle."""

    name = "exact"

    def build(self, index: "PoolIndex") -> "ExactIndexBackend":
        self._index = index
        return self

    def top_k(
        self, queries: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
    ) -> np.ndarray:
        index = self._index
        scores = index._ranking_scores(queries)
        if exclude is not None:
            rows = np.nonzero(exclude >= 0)[0]
            scores[rows, exclude[rows]] = -np.inf
        return _select_top_k(scores, k, index.size)


class IVFIndexBackend:
    """Pure-numpy IVF: k-means coarse quantizer + exact cell re-ranking.

    Parameters
    ----------
    nlist:
        Number of k-means cells; default ``round(√N)`` (the standard
        IVF sizing — probing ``nprobe`` cells then scans ``≈ nprobe·√N``
        candidates).
    nprobe:
        Cells probed per query.  The recall/latency dial: more cells,
        higher recall, more candidates re-ranked.  Probing automatically
        widens past ``nprobe`` when the probed cells hold fewer than
        ``k`` candidates, so results are always valid.
    iters / sample / seed:
        Lloyd iterations, training-sample cap, and RNG seed for the
        (deterministic) k-means build.  Training runs on at most
        ``sample`` pool rows; the final assignment pass covers the full
        pool in bounded chunks.
    """

    name = "ivf"

    def __init__(
        self,
        nlist: Optional[int] = None,
        nprobe: int = 8,
        iters: int = 10,
        sample: Optional[int] = None,
        seed: int = 0,
        chunk_rows: int = 65536,
    ) -> None:
        if nlist is not None and nlist < 1:
            raise ValueError("nlist must be >= 1")
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        self._nlist_opt = nlist
        self.nprobe = int(nprobe)
        self._iters = int(iters)
        self._sample = sample
        self._seed = int(seed)
        self._chunk_rows = int(chunk_rows)
        self._fallback: Optional[ExactIndexBackend] = None

    # ------------------------------------------------------------------
    def build(self, index: "PoolIndex") -> "IVFIndexBackend":
        self._index = index
        if index._pool_t is None:
            # Exotic measure (generic stacked fallback): no vector-space
            # ranking representation to quantize — keep the exact scan.
            self._fallback = ExactIndexBackend().build(index)
            return self
        pool_repr = index._pool_repr
        n = pool_repr.shape[0]
        self.nlist = int(
            np.clip(
                self._nlist_opt
                if self._nlist_opt is not None
                else round(np.sqrt(n)),
                1,
                n,
            )
        )
        rng = np.random.default_rng(self._seed)
        sample = (
            self._sample
            if self._sample is not None
            else min(n, max(4096, 32 * self.nlist))
        )
        train = (
            pool_repr
            if n <= sample
            else pool_repr[rng.choice(n, size=sample, replace=False)]
        )
        self._centroids = self._kmeans(train, self.nlist, rng, self._iters)
        self.nlist = int(self._centroids.shape[0])
        self._centroid_t = np.ascontiguousarray(self._centroids.T)
        self._centroid_sq = _sq_norms(self._centroids)
        # Cells are a Voronoi partition (−d² assignment) for every
        # measure; *probing* must follow the ranking-score family.  For
        # the dot family (inner/cosine/pearson) the best members live in
        # cells whose centroid maximizes q·c — the −d² preference would
        # skip exactly the high-norm cells a MIPS query wants (the
        # spherical-k-means / IVF-for-MIPS idiom).  The distance family
        # probes by −d², matching its −d² re-ranking surrogate.
        self._dot_probe = index.measure not in index._DISTANCE_MEASURES
        assign = self._nearest_cell(pool_repr)
        # CSR-style cell membership: pool rows grouped by cell.
        self._order = np.argsort(assign, kind="stable").astype(np.int64)
        counts = np.bincount(assign, minlength=self.nlist)
        self._offsets = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.int64)
        return self

    def _nearest_cell(self, rows: np.ndarray) -> np.ndarray:
        """Chunked nearest-centroid assignment by the ``−d²`` surrogate."""
        out = np.empty(rows.shape[0], dtype=np.int64)
        for start in range(0, rows.shape[0], self._chunk_rows):
            chunk = rows[start:start + self._chunk_rows]
            scores = chunk @ self._centroid_t
            scores *= 2.0
            scores -= self._centroid_sq[None, :]
            out[start:start + self._chunk_rows] = scores.argmax(axis=1)
        return out

    def _kmeans(
        self, rows: np.ndarray, nlist: int, rng, iters: int
    ) -> np.ndarray:
        n, d = rows.shape
        if nlist > n:  # nlist is clipped to pool size, but the k-means
            nlist = n  # training set may be a smaller sample
        centroids = rows[rng.choice(n, size=nlist, replace=False)].copy()
        for _ in range(iters):
            self._centroid_t = np.ascontiguousarray(centroids.T)
            self._centroid_sq = _sq_norms(centroids)
            assign = self._nearest_cell(rows)
            counts = np.bincount(assign, minlength=nlist)
            # Per-dimension bincount is a fast segment-sum for small d.
            sums = np.stack(
                [
                    np.bincount(assign, weights=rows[:, j], minlength=nlist)
                    for j in range(d)
                ],
                axis=1,
            )
            empty = counts == 0
            if empty.any():  # re-seed dead cells to random training rows
                sums[empty] = rows[rng.integers(0, n, int(empty.sum()))]
                counts[empty] = 1
            centroids = sums / counts[:, None]
        return centroids

    # ------------------------------------------------------------------
    def top_k(
        self, queries: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if self._fallback is not None:
            return self._fallback.top_k(queries, k, exclude)
        index = self._index
        q = index._query_repr(queries)
        batch = q.shape[0]
        # Cell preference per query, best first (nlist is O(√N): a full
        # sort here is cheap and lets probing widen without rescoring).
        probe_scores = q @ self._centroid_t
        if not self._dot_probe:
            probe_scores *= 2.0
            probe_scores -= self._centroid_sq[None, :]
        cell_order = np.argsort(probe_scores, axis=1)[:, ::-1]
        offsets, order = self._offsets, self._order
        out = np.empty((batch, k), dtype=np.int64)
        probed_total = 0
        candidate_total = 0
        for i in range(batch):
            excluded = -1 if exclude is None else int(exclude[i])
            need = k + (1 if excluded >= 0 else 0)
            spans = []
            count = 0
            probed = 0
            for cell in cell_order[i]:
                if probed >= self.nprobe and count >= need:
                    break
                lo, hi = offsets[cell], offsets[cell + 1]
                if hi > lo:
                    spans.append(order[lo:hi])
                    count += hi - lo
                probed += 1
            candidates = spans[0] if len(spans) == 1 else np.concatenate(spans)
            scores = index._subset_scores(q[i], candidates)
            if excluded >= 0:
                scores[candidates == excluded] = -np.inf
            if count > k:
                top = np.argpartition(scores, count - k)[count - k:]
            else:
                top = np.arange(count)
            order_k = np.argsort(scores[top])[::-1]
            out[i] = candidates[top[order_k]]
            probed_total += probed
            candidate_total += count
        stats = index.stats
        stats["queries"] += batch
        stats["probed_cells"] += probed_total
        stats["candidates"] += candidate_total
        return out


#: Named backend registry — ``PoolIndex(..., backend="<name>")`` resolves
#: here, so new backends (HNSW, LSH, …) plug in with zero engine edits.
INDEX_BACKENDS: Dict[str, type] = {
    "exact": ExactIndexBackend,
    "ivf": IVFIndexBackend,
}


def register_index_backend(name: str, factory: type) -> type:
    """Register a backend class under ``name`` (see module docstring)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    INDEX_BACKENDS[name] = factory
    return factory


class PoolIndex:
    """A frozen retrieval pool with its measure-specific terms precomputed.

    The pool-side quantities (row norms for ``cosine``, squared norms for
    the distance family, row means for ``pearson``) never change between
    serving requests, so they are hoisted to construction time: a request
    only pays for the query-side terms plus one ``(B, N)`` matmul.
    :func:`cross_similarity` is a one-shot wrapper over this class, so the
    two are the same math by construction — top-k neighbor sets, ties
    included, match exactly.

    ``backend`` selects the neighbor-search strategy behind :meth:`top_k`
    (a name in :data:`INDEX_BACKENDS` — ``"exact"`` | ``"ivf"`` — or a
    backend instance); ``backend_opts`` are forwarded to the backend's
    constructor (e.g. ``nprobe=16`` for IVF).  :meth:`similarity` and
    :meth:`exact_top_k` always use the exact math regardless of backend.
    """

    _DISTANCE_MEASURES = ("euclidean", "rbf", "heat")

    def __init__(
        self,
        pool: np.ndarray,
        measure: str = "cosine",
        backend: object = "exact",
        **backend_opts,
    ) -> None:
        pool = np.asarray(pool, dtype=np.float64)
        if pool.ndim != 2 or pool.shape[0] == 0:
            raise ValueError("pool must be a non-empty (N, d) matrix")
        self.pool = pool
        self.measure = measure
        self._pool_t: Optional[np.ndarray] = None
        self._pool_sq: Optional[np.ndarray] = None
        if measure == "inner":
            self._pool_t = pool.T
        elif measure in ("cosine", "pearson"):
            centered = (
                pool - pool.mean(axis=1, keepdims=True)
                if measure == "pearson"
                else pool
            )
            norms = np.maximum(
                np.linalg.norm(centered, axis=1, keepdims=True), 1e-12
            )
            self._pool_t = (centered / norms).T
        elif measure in self._DISTANCE_MEASURES:
            self._pool_t = pool.T
            self._pool_sq = _sq_norms(pool)
        # Row-major ranking representation for subset gathers (a no-copy
        # view: _pool_t is itself the transpose of a C-contiguous matrix).
        self._pool_repr = (
            None if self._pool_t is None
            else np.ascontiguousarray(self._pool_t.T)
        )
        #: backend search counters (monotonic; approximate backends report
        #: probe budgets here — the serving engine exports them).
        self.stats: Dict[str, int] = {
            "queries": 0, "probed_cells": 0, "candidates": 0,
        }
        if isinstance(backend, str):
            if backend not in INDEX_BACKENDS:
                raise ValueError(
                    f"unknown index backend {backend!r}; choose from "
                    f"{sorted(INDEX_BACKENDS)}"
                )
            backend = INDEX_BACKENDS[backend](**backend_opts)
        self._backend = backend.build(self)

    @property
    def size(self) -> int:
        return int(self.pool.shape[0])

    @property
    def backend_name(self) -> str:
        """The search strategy actually live behind :meth:`top_k` —
        an approximate backend that had to fall back reports the scan it
        delegates to (``/healthz`` surfaces this)."""
        fallback = getattr(self._backend, "_fallback", None)
        return fallback.name if fallback is not None else self._backend.name

    @property
    def is_approximate(self) -> bool:
        return self.backend_name != "exact"

    # ------------------------------------------------------------------
    def _query_repr(self, queries: np.ndarray) -> np.ndarray:
        """Queries mapped into the pool's ranking representation: the
        space in which ranking scores are dot products against
        ``_pool_t`` (plus pool-side constants for the distance family)."""
        queries = np.asarray(queries, dtype=np.float64)
        measure = self.measure
        if measure in ("cosine", "pearson"):
            if measure == "pearson":
                queries = queries - queries.mean(axis=1, keepdims=True)
            return queries / np.maximum(
                np.linalg.norm(queries, axis=1, keepdims=True), 1e-12
            )
        return queries

    def _subset_scores(
        self, q_repr_row: np.ndarray, subset: np.ndarray
    ) -> np.ndarray:
        """Ranking scores of one query against a pool-row subset.

        Same family as :meth:`_ranking_scores` — the distance measures
        reuse the sqrt-free ``−d²`` surrogate (minus the per-query
        constant, which cannot change a within-query ranking).
        """
        scores = self._pool_repr[subset] @ q_repr_row
        if self.measure in self._DISTANCE_MEASURES:
            scores *= 2.0
            scores -= self._pool_sq[subset]
        return scores

    def similarity(self, queries: np.ndarray) -> np.ndarray:
        """(B, N) similarity block against the frozen pool."""
        queries = np.asarray(queries, dtype=np.float64)
        measure = self.measure
        if measure == "inner" or measure in ("cosine", "pearson"):
            return self._query_repr(queries) @ self._pool_t
        if measure in self._DISTANCE_MEASURES:
            sq = _sq_norms(queries)[:, None] + self._pool_sq[None, :]
            d = np.sqrt(np.maximum(sq - 2.0 * (queries @ self._pool_t), 0.0))
            if measure == "euclidean":
                return -d
            if measure == "heat":
                return np.exp(-(d**2))
            positive = d[d > 0]
            median = np.median(positive) if positive.size else 1.0
            gamma = 1.0 / max(2.0 * median**2, 1e-12)
            return np.exp(-gamma * d**2)
        # Fall back to the generic stacked path for exotic measures.
        stacked = np.concatenate([queries, self.pool], axis=0)
        return pairwise_similarity(stacked, measure)[: len(queries), len(queries):]

    def _ranking_scores(self, queries: np.ndarray) -> np.ndarray:
        """(B, N) scores whose ordering equals :meth:`similarity`'s.

        The distance family ranks by ``-d²`` directly: ``-d`` (euclidean)
        and ``exp(-γ·d²)`` (rbf/heat, γ > 0) are strictly decreasing in
        ``d²``, so the sqrt/exp passes buy nothing for top-k and are
        skipped on the serving hot path.
        """
        if self.measure in self._DISTANCE_MEASURES:
            queries = np.asarray(queries, dtype=np.float64)
            scores = queries @ self._pool_t
            scores *= 2.0
            scores -= _sq_norms(queries)[:, None]
            scores -= self._pool_sq[None, :]
            return scores
        return self.similarity(queries)

    def _validate_k(self, k: int, exclude: Optional[np.ndarray]) -> None:
        limit = self.size - (1 if exclude is not None else 0)
        if not 1 <= k <= limit:
            raise ValueError(
                f"k must be in [1, {limit}] for this pool"
                f"{' (self-exclusion active)' if exclude is not None else ''}"
                f", got {k}"
            )

    def top_k(
        self,
        queries: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Indices (B, k) of each query's top-k pool rows, best first.

        ``exclude`` optionally masks one pool row per query (a ``(B,)``
        int array; ``-1`` masks nothing) — the self-match exclusion the
        transductive kNN path needs when pool rows query their own pool.
        """
        self._validate_k(k, exclude)
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.int64).reshape(-1)
            if exclude.shape[0] != np.asarray(queries).shape[0]:
                raise ValueError("exclude must supply one pool row per query")
        return self._backend.top_k(queries, k, exclude)

    def exact_top_k(
        self,
        queries: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The exact-scan answer, regardless of configured backend — the
        oracle recall@k is measured against."""
        self._validate_k(k, exclude)
        scores = self._ranking_scores(queries)
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.int64).reshape(-1)
            rows = np.nonzero(exclude >= 0)[0]
            scores[rows, exclude[rows]] = -np.inf
        return _select_top_k(scores, k, self.size)


def retrieve_neighbors(
    queries: np.ndarray,
    pool: np.ndarray,
    k: int,
    measure: str = "cosine",
) -> np.ndarray:
    """Indices (len(queries), k) of each query's top-k pool rows.

    One-shot convenience wrapper; callers issuing repeated queries against
    the same pool should build a :class:`PoolIndex` once instead.
    """
    return PoolIndex(pool, measure).top_k(queries, k)


def retrieval_augmented_graph(
    x: np.ndarray,
    pool_mask: np.ndarray,
    k: int = 10,
    measure: str = "cosine",
    columns: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
    index: object = "exact",
    chunk_size: int = 2048,
    **index_opts,
) -> Graph:
    """Connect every row to its top-k retrieved rows *inside the pool*.

    ``pool_mask`` marks the retrievable rows (typically the training set).
    Pool rows retrieve among the other pool rows; non-pool rows (val/test)
    retrieve from the pool only, so no information flows between test rows.

    All retrieval — pool-side included — runs through one
    :class:`PoolIndex` in ``chunk_size``-row query chunks (self-matches
    masked per chunk), so peak memory is O(chunk·N) instead of the dense
    O(N²) pairwise block, and ``index="ivf"`` drops the per-chunk scan to
    O(chunk·√N·d) for the pools where N² was never an option.
    """
    x = np.asarray(x, dtype=np.float64)
    pool_mask = np.asarray(pool_mask, dtype=bool)
    if pool_mask.shape != (x.shape[0],):
        raise ValueError("pool_mask must be a boolean vector over rows")
    view = x if columns is None else x[:, columns]
    pool_idx = np.nonzero(pool_mask)[0]
    n_pool = len(pool_idx)
    if n_pool <= k:
        raise ValueError("pool must contain more than k rows")
    pool_view = view[pool_idx]
    pool_index = PoolIndex(pool_view, measure, backend=index, **index_opts)
    chunk = max(1, int(chunk_size))

    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    # Pool rows: retrieve among pool excluding self (chunked scans).
    for start in range(0, n_pool, chunk):
        stop = min(start + chunk, n_pool)
        neighbors = pool_index.top_k(
            pool_view[start:stop], k, exclude=np.arange(start, stop)
        )
        sources.append(pool_idx[neighbors.reshape(-1)])
        targets.append(np.repeat(pool_idx[start:stop], k))
    # Query rows: retrieve from pool.
    query_idx = np.nonzero(~pool_mask)[0]
    for start in range(0, query_idx.size, chunk):
        rows = query_idx[start:start + chunk]
        neighbors = pool_index.top_k(view[rows], k)
        sources.append(pool_idx[neighbors.reshape(-1)])
        targets.append(np.repeat(rows, k))
    edge_index = np.stack([np.concatenate(sources), np.concatenate(targets)])
    edge_index, _ = symmetrize_edge_index(edge_index.astype(np.int64))
    return Graph(x.shape[0], edge_index, x=x, y=y)
