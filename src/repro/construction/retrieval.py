"""Retrieval-based graph construction (survey Sec. 4.2.4, PET [27]).

For each target row, retrieve the most relevant rows from a data pool and
connect the target to its retrieved neighbors.  Unlike plain kNN over the
full dataset, retrieval (a) separates the query set from the pool — new
rows can be linked into a frozen pool at test time — and (b) can restrict
similarity to a subset of columns (the "label-relevant" view PET uses).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.construction.rules import pairwise_similarity
from repro.graph.homogeneous import Graph
from repro.graph.utils import symmetrize_edge_index


def cross_similarity(
    queries: np.ndarray,
    pool: np.ndarray,
    measure: str = "cosine",
) -> np.ndarray:
    """(len(queries), len(pool)) similarity block, computed directly.

    Equivalent in *ranking* to slicing ``pairwise_similarity`` of the
    stacked matrix, but costs O(B·N) instead of O((B+N)²) — the difference
    between a serving hot path and a quadratic blow-up as the pool grows.
    (For ``rbf``/``heat`` the kernel bandwidth is estimated from the cross
    block rather than the full stack; the kernel is monotone in distance,
    so top-k neighbor rankings are unchanged.)
    """
    return PoolIndex(pool, measure).similarity(queries)


class PoolIndex:
    """A frozen retrieval pool with its measure-specific terms precomputed.

    The pool-side quantities (row norms for ``cosine``, squared norms for
    the distance family, row means for ``pearson``) never change between
    serving requests, so they are hoisted to construction time: a request
    only pays for the query-side terms plus one ``(B, N)`` matmul.
    :func:`cross_similarity` is a one-shot wrapper over this class, so the
    two are the same math by construction — top-k neighbor sets, ties
    included, match exactly.
    """

    _DISTANCE_MEASURES = ("euclidean", "rbf", "heat")

    def __init__(self, pool: np.ndarray, measure: str = "cosine") -> None:
        pool = np.asarray(pool, dtype=np.float64)
        if pool.ndim != 2 or pool.shape[0] == 0:
            raise ValueError("pool must be a non-empty (N, d) matrix")
        self.pool = pool
        self.measure = measure
        self._pool_t: Optional[np.ndarray] = None
        self._pool_sq: Optional[np.ndarray] = None
        if measure == "inner":
            self._pool_t = pool.T
        elif measure in ("cosine", "pearson"):
            centered = (
                pool - pool.mean(axis=1, keepdims=True)
                if measure == "pearson"
                else pool
            )
            norms = np.maximum(
                np.linalg.norm(centered, axis=1, keepdims=True), 1e-12
            )
            self._pool_t = (centered / norms).T
        elif measure in self._DISTANCE_MEASURES:
            self._pool_t = pool.T
            self._pool_sq = (pool**2).sum(axis=1)

    @property
    def size(self) -> int:
        return int(self.pool.shape[0])

    def similarity(self, queries: np.ndarray) -> np.ndarray:
        """(B, N) similarity block against the frozen pool."""
        queries = np.asarray(queries, dtype=np.float64)
        measure = self.measure
        if measure == "inner":
            return queries @ self._pool_t
        if measure in ("cosine", "pearson"):
            if measure == "pearson":
                queries = queries - queries.mean(axis=1, keepdims=True)
            qn = queries / np.maximum(
                np.linalg.norm(queries, axis=1, keepdims=True), 1e-12
            )
            return qn @ self._pool_t
        if measure in self._DISTANCE_MEASURES:
            sq = (queries**2).sum(axis=1)[:, None] + self._pool_sq[None, :]
            d = np.sqrt(np.maximum(sq - 2.0 * (queries @ self._pool_t), 0.0))
            if measure == "euclidean":
                return -d
            if measure == "heat":
                return np.exp(-(d**2))
            positive = d[d > 0]
            median = np.median(positive) if positive.size else 1.0
            gamma = 1.0 / max(2.0 * median**2, 1e-12)
            return np.exp(-gamma * d**2)
        # Fall back to the generic stacked path for exotic measures.
        stacked = np.concatenate([queries, self.pool], axis=0)
        return pairwise_similarity(stacked, measure)[: len(queries), len(queries):]

    def _ranking_scores(self, queries: np.ndarray) -> np.ndarray:
        """(B, N) scores whose ordering equals :meth:`similarity`'s.

        The distance family ranks by ``-d²`` directly: ``-d`` (euclidean)
        and ``exp(-γ·d²)`` (rbf/heat, γ > 0) are strictly decreasing in
        ``d²``, so the sqrt/exp passes buy nothing for top-k and are
        skipped on the serving hot path.
        """
        if self.measure in self._DISTANCE_MEASURES:
            queries = np.asarray(queries, dtype=np.float64)
            scores = queries @ self._pool_t
            scores *= 2.0
            scores -= (queries**2).sum(axis=1)[:, None]
            scores -= self._pool_sq[None, :]
            return scores
        return self.similarity(queries)

    def top_k(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Indices (B, k) of each query's top-k pool rows, best first."""
        if not 1 <= k <= self.size:
            raise ValueError(f"k must be in [1, pool size], got {k}")
        sim = self._ranking_scores(queries)
        top = np.argpartition(sim, kth=self.size - k, axis=1)[:, -k:]
        order = np.argsort(np.take_along_axis(sim, top, axis=1), axis=1)[:, ::-1]
        return np.take_along_axis(top, order, axis=1)


def retrieve_neighbors(
    queries: np.ndarray,
    pool: np.ndarray,
    k: int,
    measure: str = "cosine",
) -> np.ndarray:
    """Indices (len(queries), k) of each query's top-k pool rows.

    One-shot convenience wrapper; callers issuing repeated queries against
    the same pool should build a :class:`PoolIndex` once instead.
    """
    return PoolIndex(pool, measure).top_k(queries, k)


def retrieval_augmented_graph(
    x: np.ndarray,
    pool_mask: np.ndarray,
    k: int = 10,
    measure: str = "cosine",
    columns: Optional[np.ndarray] = None,
    y: Optional[np.ndarray] = None,
) -> Graph:
    """Connect every row to its top-k retrieved rows *inside the pool*.

    ``pool_mask`` marks the retrievable rows (typically the training set).
    Pool rows retrieve among the other pool rows; non-pool rows (val/test)
    retrieve from the pool only, so no information flows between test rows.
    """
    x = np.asarray(x, dtype=np.float64)
    pool_mask = np.asarray(pool_mask, dtype=bool)
    if pool_mask.shape != (x.shape[0],):
        raise ValueError("pool_mask must be a boolean vector over rows")
    view = x if columns is None else x[:, columns]
    pool_idx = np.nonzero(pool_mask)[0]
    if len(pool_idx) <= k:
        raise ValueError("pool must contain more than k rows")

    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    # Pool rows: retrieve among pool excluding self.
    sim = pairwise_similarity(view[pool_idx], measure)
    np.fill_diagonal(sim, -np.inf)
    top = np.argpartition(sim, kth=len(pool_idx) - k - 1, axis=1)[:, -k:]
    for local, node in enumerate(pool_idx):
        sources.append(pool_idx[top[local]])
        targets.append(np.full(k, node, dtype=np.int64))
    # Query rows: retrieve from pool.
    query_idx = np.nonzero(~pool_mask)[0]
    if query_idx.size:
        neighbors = retrieve_neighbors(view[query_idx], view[pool_idx], k, measure)
        for local, node in enumerate(query_idx):
            sources.append(pool_idx[neighbors[local]])
            targets.append(np.full(k, node, dtype=np.int64))
    edge_index = np.stack([np.concatenate(sources), np.concatenate(targets)])
    edge_index, _ = symmetrize_edge_index(edge_index.astype(np.int64))
    return Graph(x.shape[0], edge_index, x=x, y=y)
