"""Graph construction from tabular data (survey Sec. 4.2).

Four families, matching the taxonomy:

* **Intrinsic structure** (Sec. 4.2.1): :mod:`repro.construction.intrinsic` —
  bipartite / heterogeneous / multiplex / hypergraph builders that use the
  table's own row-column-value structure.
* **Rule-based** (Sec. 4.2.2): :mod:`repro.construction.rules` — kNN,
  thresholding, fully-connected and same-feature-value edge criteria over a
  choice of similarity measures (Table 3's grid).
* **Learning-based** (Sec. 4.2.3): :mod:`repro.construction.learned` —
  metric-based, neural and direct graph structure learners (Table 4).
* **Other** (Sec. 4.2.4): retrieval-based neighbor pooling and
  knowledge-based feature graphs.
"""

from repro.construction.rules import (
    SIMILARITIES,
    fully_connected_graph,
    knn_edges,
    knn_graph,
    pairwise_distances,
    pairwise_similarity,
    same_value_graph,
    threshold_graph,
)
from repro.construction.intrinsic import (
    HypergraphSpec,
    bipartite_from_dataset,
    feature_graph_from_correlation,
    feature_graph_from_knowledge,
    hetero_from_dataset,
    hypergraph_from_dataset,
    hypergraph_spec_from_dataset,
    multiplex_from_dataset,
)
from repro.construction.learned import (
    DirectGraphLearner,
    MetricGraphLearner,
    NeuralGraphLearner,
    dense_gcn_norm,
    topk_sparsify,
)
from repro.construction.retrieval import (
    INDEX_BACKENDS,
    ExactIndexBackend,
    IVFIndexBackend,
    PoolIndex,
    cross_similarity,
    register_index_backend,
    retrieval_augmented_graph,
    retrieve_neighbors,
)

__all__ = [
    "SIMILARITIES",
    "fully_connected_graph",
    "knn_edges",
    "knn_graph",
    "pairwise_distances",
    "pairwise_similarity",
    "same_value_graph",
    "threshold_graph",
    "bipartite_from_dataset",
    "feature_graph_from_correlation",
    "feature_graph_from_knowledge",
    "hetero_from_dataset",
    "HypergraphSpec",
    "hypergraph_from_dataset",
    "hypergraph_spec_from_dataset",
    "multiplex_from_dataset",
    "DirectGraphLearner",
    "MetricGraphLearner",
    "NeuralGraphLearner",
    "dense_gcn_norm",
    "topk_sparsify",
    "ExactIndexBackend",
    "INDEX_BACKENDS",
    "IVFIndexBackend",
    "PoolIndex",
    "cross_similarity",
    "register_index_backend",
    "retrieval_augmented_graph",
    "retrieve_neighbors",
]
