"""Intrinsic-structure graph construction (survey Sec. 4.2.1).

Builders that use only the table's own row/column/value structure:
bipartite instance-feature graphs (GRAPE/FATE), heterogeneous graphs with
feature values as typed nodes (GCT/HSGNN/GraphFC), multiplex graphs with one
layer per categorical column (TabGNN), hypergraphs with rows as hyperedges
(HCL/PET), and feature graphs from correlation or external knowledge.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.preprocessing import KBinsDiscretizer, StandardScaler
from repro.datasets.tabular import TabularDataset
from repro.graph.bipartite import BipartiteGraph
from repro.graph.heterogeneous import HeteroGraph
from repro.graph.homogeneous import Graph
from repro.graph.hypergraph import Hypergraph
from repro.graph.multiplex import MultiplexGraph
from repro.construction.rules import same_value_graph


def bipartite_from_dataset(dataset: TabularDataset) -> BipartiteGraph:
    """Instances × (numerical features ∪ one-hot categorical values) bipartite graph.

    Numerical cells become weighted edges carrying the z-scored value;
    categorical cells become weight-1 edges to the (column=value) feature
    node.  NaN / missing cells create no edge — GRAPE's formulation.
    """
    blocks = []
    if dataset.num_numerical:
        scaled = StandardScaler().fit_transform(dataset.numerical)
        blocks.append(scaled)
    if dataset.num_categorical:
        onehot = np.zeros((dataset.num_instances, dataset.num_category_values))
        value_ids = dataset.global_value_ids()
        rows, cols = np.nonzero(value_ids >= 0)
        onehot[rows, value_ids[rows, cols]] = 1.0
        onehot[onehot == 0.0] = np.nan  # absent one-hot cells are "no edge"
        blocks.append(onehot)
    if not blocks:
        raise ValueError("dataset has no features")
    table = np.concatenate(blocks, axis=1)
    return BipartiteGraph.from_table(table, y=dataset.y)


def hetero_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = False,
) -> HeteroGraph:
    """Heterogeneous graph: instance nodes + one node type per categorical column.

    Each categorical column ``c`` contributes nodes for its distinct values
    and a ``has_c`` edge type from instances to their value — the GCT /
    HSGNN / GraphFC formulation.  Optionally numerical columns are
    quantile-binned into value nodes too.
    """
    counts: Dict[str, int] = {"instance": dataset.num_instances}
    columns: list[Tuple[str, np.ndarray, int]] = []
    for j, name in enumerate(dataset.categorical_names):
        columns.append((name, dataset.categorical[:, j], dataset.cardinalities[j]))
    if include_numerical_bins and dataset.num_numerical:
        binned = KBinsDiscretizer(n_bins).fit_transform(dataset.numerical)
        for j, name in enumerate(dataset.numerical_names):
            columns.append((f"{name}_bin", binned[:, j], n_bins))
    if not columns:
        raise ValueError(
            "hetero formulation needs categorical columns "
            "(or include_numerical_bins=True)"
        )
    for name, _, cardinality in columns:
        counts[name] = cardinality
    graph = HeteroGraph(counts)
    for name, codes, _ in columns:
        observed = np.nonzero(codes >= 0)[0]
        edge_index = np.stack([observed, codes[observed]]).astype(np.int64)
        graph.add_edges(("instance", f"has_{name}", name), edge_index)
    graph.add_reverse_edges()
    if dataset.num_numerical:
        graph.set_features("instance", StandardScaler().fit_transform(
            np.nan_to_num(dataset.numerical, nan=0.0)
        ))
    else:
        graph.set_features("instance", np.ones((dataset.num_instances, 1)))
    graph.set_labels("instance", dataset.y)
    return graph


def multiplex_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = False,
    max_group_degree: Optional[int] = 30,
    rng: Optional[np.random.Generator] = None,
) -> MultiplexGraph:
    """Multiplex instance graph: one Same-Feature-Value layer per column (TabGNN)."""
    x = dataset.to_matrix()
    graph = MultiplexGraph(dataset.num_instances, x=x, y=dataset.y)
    rng = rng or np.random.default_rng(0)
    for j, name in enumerate(dataset.categorical_names):
        layer = same_value_graph(
            dataset.categorical[:, j], max_group_degree=max_group_degree, rng=rng
        )
        graph.add_layer(name, layer.edge_index)
    if include_numerical_bins and dataset.num_numerical:
        binned = KBinsDiscretizer(n_bins).fit_transform(dataset.numerical)
        for j, name in enumerate(dataset.numerical_names):
            layer = same_value_graph(
                binned[:, j], max_group_degree=max_group_degree, rng=rng
            )
            graph.add_layer(f"{name}_bin", layer.edge_index)
    if graph.num_layers == 0:
        raise ValueError(
            "multiplex formulation needs categorical columns "
            "(or include_numerical_bins=True)"
        )
    return graph


def hypergraph_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = True,
) -> Hypergraph:
    """Rows-as-hyperedges hypergraph over feature-value nodes (HCL/PET).

    Categorical values become nodes directly.  Numerical columns are
    quantile-binned into value nodes — except *binary* (0/1) columns such as
    EHR multi-hot code indicators, which become a single membership node
    joined exactly when the value is 1 (binning a mostly-constant column
    would collapse all rows into one degenerate bin).
    """
    value_blocks: list[np.ndarray] = []
    offsets = 0
    if dataset.num_categorical:
        ids = dataset.global_value_ids()
        value_blocks.append(ids)
        offsets = dataset.num_category_values
    if include_numerical_bins and dataset.num_numerical:
        numerical = dataset.numerical
        observed = ~np.isnan(numerical)
        is_binary = np.array([
            bool(np.isin(numerical[observed[:, j], j], (0.0, 1.0)).all())
            for j in range(dataset.num_numerical)
        ])
        binary_cols = np.nonzero(is_binary)[0]
        if binary_cols.size:
            block = np.full((dataset.num_instances, binary_cols.size), -1, dtype=np.int64)
            for out_j, j in enumerate(binary_cols):
                members = observed[:, j] & (numerical[:, j] == 1.0)
                block[members, out_j] = offsets + out_j
            value_blocks.append(block)
            offsets += int(binary_cols.size)
        continuous_cols = np.nonzero(~is_binary)[0]
        if continuous_cols.size:
            binned = KBinsDiscretizer(n_bins).fit_transform(numerical[:, continuous_cols])
            shifted = np.where(
                binned >= 0,
                binned + offsets + np.arange(continuous_cols.size)[None, :] * n_bins,
                -1,
            )
            value_blocks.append(shifted)
            offsets += int(continuous_cols.size) * n_bins
    if not value_blocks:
        raise ValueError("hypergraph formulation needs at least one value column")
    value_ids = np.concatenate(value_blocks, axis=1)
    return Hypergraph.from_value_table(value_ids, num_values=offsets, y=dataset.y)


def feature_graph_from_correlation(
    x: np.ndarray,
    threshold: float = 0.3,
    weighted: bool = True,
) -> Graph:
    """Feature graph with edges between |Pearson|-correlated columns.

    A rule/knowledge hybrid used as the default feature-graph construction
    when no external knowledge graph is available (IGNNet uses Pearson
    correlation for exactly this).
    """
    x = np.nan_to_num(np.asarray(x, dtype=np.float64), nan=0.0)
    d = x.shape[1]
    if d == 0:
        raise ValueError("need at least one feature column")
    std = x.std(axis=0)
    safe = np.where(std > 0, std, 1.0)
    normed = (x - x.mean(axis=0)) / safe
    corr = (normed.T @ normed) / max(1, x.shape[0])
    corr[np.abs(corr) < threshold] = 0.0
    np.fill_diagonal(corr, 0.0)
    src, dst = np.nonzero(corr)
    edge_index = np.stack([src, dst]).astype(np.int64) if src.size else np.zeros((2, 0), np.int64)
    weight = np.abs(corr[src, dst]) if (weighted and src.size) else None
    return Graph(d, edge_index, edge_weight=weight)


def feature_graph_from_knowledge(
    num_features: int,
    edges: Sequence[Tuple[int, int]],
    symmetric: bool = True,
) -> Graph:
    """Feature graph from an expert-provided relation list (PLATO-style).

    ``edges`` are (feature_i, feature_j) pairs from domain knowledge
    (protein maps, clinical variable dependencies, ...).
    """
    if not edges:
        raise ValueError("knowledge edge list is empty")
    edge_index = np.array(edges, dtype=np.int64).T
    if symmetric:
        from repro.graph.utils import symmetrize_edge_index

        edge_index, _ = symmetrize_edge_index(edge_index)
    return Graph(num_features, edge_index)
