"""Intrinsic-structure graph construction (survey Sec. 4.2.1).

Builders that use only the table's own row/column/value structure:
bipartite instance-feature graphs (GRAPE/FATE), heterogeneous graphs with
feature values as typed nodes (GCT/HSGNN/GraphFC), multiplex graphs with one
layer per categorical column (TabGNN), hypergraphs with rows as hyperedges
(HCL/PET), and feature graphs from correlation or external knowledge.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.preprocessing import KBinsDiscretizer, StandardScaler, bin_codes
from repro.datasets.tabular import TabularDataset
from repro.graph.bipartite import BipartiteGraph
from repro.graph.heterogeneous import HeteroGraph
from repro.graph.homogeneous import Graph
from repro.graph.hypergraph import Hypergraph
from repro.graph.multiplex import MultiplexGraph
from repro.construction.rules import same_value_graph


@dataclasses.dataclass(frozen=True)
class ValueColumnSpec:
    """One value-node column of a hetero/multiplex construction.

    The same-feature-value rule and the value-typed-node rule both view the
    table as a list of code columns: every categorical column directly, and
    (optionally) every numerical column after quantile binning.  The spec
    freezes what a serving artifact needs to re-derive a query row's codes
    with training-time boundaries: the source column index, the code
    cardinality, and — for binned columns — the fitted quantile edges.
    """

    name: str
    kind: str  # "categorical" | "binned"
    source: int  # index into dataset.categorical / dataset.numerical
    cardinality: int
    codes: np.ndarray  # (n,) training codes; -1 = missing
    bin_edges: Optional[np.ndarray] = None

    def encode(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        """Codes for raw query rows using the frozen training boundaries."""
        if self.kind == "categorical":
            return np.asarray(categorical[:, self.source], dtype=np.int64)
        return bin_codes(numerical[:, self.source], self.bin_edges)

    def to_meta(self) -> Dict[str, object]:
        """JSON-safe column description for artifact sidecars."""
        return {
            "name": self.name,
            "kind": self.kind,
            "source": int(self.source),
            "cardinality": int(self.cardinality),
        }

    @classmethod
    def from_meta(
        cls, meta: Dict[str, object], bin_edges: Optional[np.ndarray] = None
    ) -> "ValueColumnSpec":
        """Rebuild a serve-side spec from :meth:`to_meta` output.

        Training codes are not persisted (serve-time state lives in the
        formulation's vocabularies/graph), so ``codes`` comes back empty.
        """
        return cls(
            str(meta["name"]),
            str(meta["kind"]),
            int(meta["source"]),
            int(meta["cardinality"]),
            codes=np.zeros(0, np.int64),
            bin_edges=None if bin_edges is None else np.asarray(bin_edges),
        )


def value_column_specs(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = False,
) -> List[ValueColumnSpec]:
    """The ordered code columns hetero/multiplex constructions are built from."""
    specs: List[ValueColumnSpec] = []
    for j, name in enumerate(dataset.categorical_names):
        specs.append(ValueColumnSpec(
            name, "categorical", j, dataset.cardinalities[j], dataset.categorical[:, j]
        ))
    if include_numerical_bins and dataset.num_numerical:
        disc = KBinsDiscretizer(n_bins).fit(dataset.numerical)
        binned = disc.transform(dataset.numerical)
        for j, name in enumerate(dataset.numerical_names):
            specs.append(ValueColumnSpec(
                f"{name}_bin", "binned", j, n_bins, binned[:, j], disc.edges_[j]
            ))
    return specs


def bipartite_from_dataset(dataset: TabularDataset) -> BipartiteGraph:
    """Instances × (numerical features ∪ one-hot categorical values) bipartite graph.

    Numerical cells become weighted edges carrying the z-scored value;
    categorical cells become weight-1 edges to the (column=value) feature
    node.  NaN / missing cells create no edge — GRAPE's formulation.
    """
    blocks = []
    if dataset.num_numerical:
        scaled = StandardScaler().fit_transform(dataset.numerical)
        blocks.append(scaled)
    if dataset.num_categorical:
        onehot = np.zeros((dataset.num_instances, dataset.num_category_values))
        value_ids = dataset.global_value_ids()
        rows, cols = np.nonzero(value_ids >= 0)
        onehot[rows, value_ids[rows, cols]] = 1.0
        onehot[onehot == 0.0] = np.nan  # absent one-hot cells are "no edge"
        blocks.append(onehot)
    if not blocks:
        raise ValueError("dataset has no features")
    table = np.concatenate(blocks, axis=1)
    return BipartiteGraph.from_table(table, y=dataset.y)


def hetero_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = False,
    specs: Optional[List[ValueColumnSpec]] = None,
) -> HeteroGraph:
    """Heterogeneous graph: instance nodes + one node type per categorical column.

    Each categorical column ``c`` contributes nodes for its distinct values
    and a ``has_c`` edge type from instances to their value — the GCT /
    HSGNN / GraphFC formulation.  Optionally numerical columns are
    quantile-binned into value nodes too.
    """
    counts: Dict[str, int] = {"instance": dataset.num_instances}
    if specs is None:
        specs = value_column_specs(dataset, n_bins, include_numerical_bins)
    if not specs:
        raise ValueError(
            "hetero formulation needs categorical columns "
            "(or include_numerical_bins=True)"
        )
    for spec in specs:
        counts[spec.name] = spec.cardinality
    graph = HeteroGraph(counts)
    for spec in specs:
        observed = np.nonzero(spec.codes >= 0)[0]
        edge_index = np.stack([observed, spec.codes[observed]]).astype(np.int64)
        graph.add_edges(("instance", f"has_{spec.name}", spec.name), edge_index)
    graph.add_reverse_edges()
    if dataset.num_numerical:
        graph.set_features("instance", StandardScaler().fit_transform(
            np.nan_to_num(dataset.numerical, nan=0.0)
        ))
    else:
        graph.set_features("instance", np.ones((dataset.num_instances, 1)))
    graph.set_labels("instance", dataset.y)
    return graph


def multiplex_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = False,
    max_group_degree: Optional[int] = 30,
    rng: Optional[np.random.Generator] = None,
    specs: Optional[List[ValueColumnSpec]] = None,
) -> MultiplexGraph:
    """Multiplex instance graph: one Same-Feature-Value layer per column (TabGNN)."""
    x = dataset.to_matrix()
    graph = MultiplexGraph(dataset.num_instances, x=x, y=dataset.y)
    rng = rng or np.random.default_rng(0)
    if specs is None:
        specs = value_column_specs(dataset, n_bins, include_numerical_bins)
    for spec in specs:
        layer = same_value_graph(
            spec.codes, max_group_degree=max_group_degree, rng=rng
        )
        graph.add_layer(spec.name, layer.edge_index)
    if graph.num_layers == 0:
        raise ValueError(
            "multiplex formulation needs categorical columns "
            "(or include_numerical_bins=True)"
        )
    return graph


@dataclasses.dataclass(frozen=True)
class HypergraphSpec:
    """Frozen row → value-node membership map of a rows-as-hyperedges build.

    The hypergraph construction turns every (column, value) pair into one
    value node; a row's hyperedge is the set of nodes its cells hit.  This
    spec freezes everything a serving artifact needs to re-derive that
    membership for *query* rows with training-time semantics: the global id
    offsets per column, the categorical cardinalities (ids at or beyond a
    column's training cardinality are never-seen values → no membership,
    the UNK fallback), which numerical columns were treated as binary
    membership flags, and the fitted quantile edges for the binned ones.

    ``encode`` reproduces the training incidence exactly when fed the
    training table, which is what makes served training rows match their
    transductive logits.
    """

    cat_cardinalities: np.ndarray  # (n_cat,) training cardinalities
    cat_offsets: np.ndarray  # (n_cat,) global value-id offset per column
    binary_cols: np.ndarray  # numerical column indices with 0/1 semantics
    binary_offsets: np.ndarray  # (n_binary,) value id of each membership node
    continuous_cols: np.ndarray  # numerical column indices, quantile-binned
    cont_offsets: np.ndarray  # (n_cont,) first value id of each column's bins
    bin_edges: np.ndarray  # (n_cont, n_bins - 1) fitted quantile edges
    num_values: int  # total value-node count (fixed at fit time)

    @property
    def num_member_columns(self) -> int:
        """Membership columns per row (categorical + binary + binned)."""
        return int(
            self.cat_offsets.size
            + self.binary_offsets.size
            + self.cont_offsets.size
        )

    def encode(
        self,
        numerical: np.ndarray,
        categorical: np.ndarray,
        stats: Optional[Dict[str, int]] = None,
    ) -> np.ndarray:
        """Global value-node ids ``(B, num_member_columns)``; ``-1`` = none.

        Missing cells (NaN numericals, ``-1`` categorical codes) and
        never-seen categorical codes both yield ``-1`` — no membership, the
        same zero-message fallback an all-missing training row gets.  When
        ``stats`` is given, never-seen codes increment ``stats["unk_values"]``
        (missing cells do not: absent is not unknown).
        """
        numerical = np.asarray(numerical, dtype=np.float64)
        categorical = np.asarray(categorical, dtype=np.int64)
        n = numerical.shape[0] if numerical.ndim == 2 else categorical.shape[0]
        blocks: List[np.ndarray] = []
        if self.cat_offsets.size:
            codes = categorical[:, : self.cat_offsets.size]
            seen = (codes >= 0) & (codes < self.cat_cardinalities[None, :])
            if stats is not None:
                stats["unk_values"] += int(
                    np.count_nonzero(codes >= self.cat_cardinalities[None, :])
                )
            blocks.append(np.where(seen, codes + self.cat_offsets[None, :], -1))
        if self.binary_cols.size:
            values = numerical[:, self.binary_cols]
            member = ~np.isnan(values) & (values == 1.0)
            blocks.append(np.where(member, self.binary_offsets[None, :], -1))
        if self.continuous_cols.size:
            binned = np.stack(
                [
                    bin_codes(numerical[:, col], self.bin_edges[i])
                    for i, col in enumerate(self.continuous_cols)
                ],
                axis=1,
            )
            blocks.append(
                np.where(binned >= 0, binned + self.cont_offsets[None, :], -1)
            )
        if not blocks:
            return np.full((n, 0), -1, dtype=np.int64)
        return np.concatenate(blocks, axis=1).astype(np.int64)

    def state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """(arrays, json-safe meta) for artifact serialization."""
        arrays = {
            "cat_cardinalities": self.cat_cardinalities,
            "cat_offsets": self.cat_offsets,
            "binary_cols": self.binary_cols,
            "binary_offsets": self.binary_offsets,
            "continuous_cols": self.continuous_cols,
            "cont_offsets": self.cont_offsets,
            "bin_edges": self.bin_edges,
        }
        return arrays, {"num_values": int(self.num_values)}

    @classmethod
    def from_state(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> "HypergraphSpec":
        def _ints(name: str) -> np.ndarray:
            return np.asarray(arrays[name], dtype=np.int64).reshape(-1)

        n_cont = _ints("continuous_cols").size
        bin_edges = np.asarray(arrays["bin_edges"], dtype=np.float64)
        # reshape(0, -1) is ill-defined for the empty array a dataset with
        # no binned columns persists; keep its (0, k) shape explicitly.
        bin_edges = (
            bin_edges.reshape(n_cont, -1) if n_cont else bin_edges.reshape(0, 0)
        )
        return cls(
            cat_cardinalities=_ints("cat_cardinalities"),
            cat_offsets=_ints("cat_offsets"),
            binary_cols=_ints("binary_cols"),
            binary_offsets=_ints("binary_offsets"),
            continuous_cols=_ints("continuous_cols"),
            cont_offsets=_ints("cont_offsets"),
            bin_edges=bin_edges,
            num_values=int(meta["num_values"]),
        )


def hypergraph_spec_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = True,
) -> HypergraphSpec:
    """Fit the frozen :class:`HypergraphSpec` the hypergraph build uses.

    Categorical values become nodes directly.  Numerical columns are
    quantile-binned into value nodes — except *binary* (0/1) columns such as
    EHR multi-hot code indicators, which become a single membership node
    joined exactly when the value is 1 (binning a mostly-constant column
    would collapse all rows into one degenerate bin).
    """
    offset = 0
    if dataset.num_categorical:
        cardinalities = np.asarray(dataset.cardinalities, dtype=np.int64)
        cat_offsets = np.cumsum(np.concatenate([[0], cardinalities[:-1]]))
        offset = int(cardinalities.sum())
    else:
        cardinalities = cat_offsets = np.zeros(0, dtype=np.int64)
    binary_cols = continuous_cols = np.zeros(0, dtype=np.int64)
    binary_offsets = cont_offsets = np.zeros(0, dtype=np.int64)
    bin_edges = np.zeros((0, max(n_bins - 1, 0)))
    if include_numerical_bins and dataset.num_numerical:
        numerical = dataset.numerical
        observed = ~np.isnan(numerical)
        is_binary = np.array([
            bool(np.isin(numerical[observed[:, j], j], (0.0, 1.0)).all())
            for j in range(dataset.num_numerical)
        ])
        binary_cols = np.nonzero(is_binary)[0].astype(np.int64)
        binary_offsets = offset + np.arange(binary_cols.size, dtype=np.int64)
        offset += int(binary_cols.size)
        continuous_cols = np.nonzero(~is_binary)[0].astype(np.int64)
        if continuous_cols.size:
            disc = KBinsDiscretizer(n_bins).fit(numerical[:, continuous_cols])
            bin_edges = np.stack(disc.edges_)
            cont_offsets = offset + n_bins * np.arange(
                continuous_cols.size, dtype=np.int64
            )
            offset += int(continuous_cols.size) * n_bins
    if offset == 0:
        raise ValueError("hypergraph formulation needs at least one value column")
    return HypergraphSpec(
        cat_cardinalities=cardinalities,
        cat_offsets=cat_offsets,
        binary_cols=binary_cols,
        binary_offsets=binary_offsets,
        continuous_cols=continuous_cols,
        cont_offsets=cont_offsets,
        bin_edges=bin_edges,
        num_values=offset,
    )


def hypergraph_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = True,
    spec: Optional[HypergraphSpec] = None,
) -> Hypergraph:
    """Rows-as-hyperedges hypergraph over feature-value nodes (HCL/PET).

    See :func:`hypergraph_spec_from_dataset` for how cells map to value
    nodes; pass an already-fitted ``spec`` to reuse its frozen encoder (the
    servable formulation does, so the persisted spec and the training
    incidence can never drift apart).
    """
    if spec is None:
        spec = hypergraph_spec_from_dataset(
            dataset, n_bins=n_bins, include_numerical_bins=include_numerical_bins
        )
    value_ids = spec.encode(dataset.numerical, dataset.categorical)
    return Hypergraph.from_value_table(
        value_ids, num_values=spec.num_values, y=dataset.y
    )


def feature_graph_from_correlation(
    x: np.ndarray,
    threshold: float = 0.3,
    weighted: bool = True,
) -> Graph:
    """Feature graph with edges between |Pearson|-correlated columns.

    A rule/knowledge hybrid used as the default feature-graph construction
    when no external knowledge graph is available (IGNNet uses Pearson
    correlation for exactly this).
    """
    x = np.nan_to_num(np.asarray(x, dtype=np.float64), nan=0.0)
    d = x.shape[1]
    if d == 0:
        raise ValueError("need at least one feature column")
    std = x.std(axis=0)
    safe = np.where(std > 0, std, 1.0)
    normed = (x - x.mean(axis=0)) / safe
    corr = (normed.T @ normed) / max(1, x.shape[0])
    corr[np.abs(corr) < threshold] = 0.0
    np.fill_diagonal(corr, 0.0)
    src, dst = np.nonzero(corr)
    edge_index = np.stack([src, dst]).astype(np.int64) if src.size else np.zeros((2, 0), np.int64)
    weight = np.abs(corr[src, dst]) if (weighted and src.size) else None
    return Graph(d, edge_index, edge_weight=weight)


def feature_graph_from_knowledge(
    num_features: int,
    edges: Sequence[Tuple[int, int]],
    symmetric: bool = True,
) -> Graph:
    """Feature graph from an expert-provided relation list (PLATO-style).

    ``edges`` are (feature_i, feature_j) pairs from domain knowledge
    (protein maps, clinical variable dependencies, ...).
    """
    if not edges:
        raise ValueError("knowledge edge list is empty")
    edge_index = np.array(edges, dtype=np.int64).T
    if symmetric:
        from repro.graph.utils import symmetrize_edge_index

        edge_index, _ = symmetrize_edge_index(edge_index)
    return Graph(num_features, edge_index)
