"""Intrinsic-structure graph construction (survey Sec. 4.2.1).

Builders that use only the table's own row/column/value structure:
bipartite instance-feature graphs (GRAPE/FATE), heterogeneous graphs with
feature values as typed nodes (GCT/HSGNN/GraphFC), multiplex graphs with one
layer per categorical column (TabGNN), hypergraphs with rows as hyperedges
(HCL/PET), and feature graphs from correlation or external knowledge.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.preprocessing import KBinsDiscretizer, StandardScaler, bin_codes
from repro.datasets.tabular import TabularDataset
from repro.graph.bipartite import BipartiteGraph
from repro.graph.heterogeneous import HeteroGraph
from repro.graph.homogeneous import Graph
from repro.graph.hypergraph import Hypergraph
from repro.graph.multiplex import MultiplexGraph
from repro.construction.rules import same_value_graph


@dataclasses.dataclass(frozen=True)
class ValueColumnSpec:
    """One value-node column of a hetero/multiplex construction.

    The same-feature-value rule and the value-typed-node rule both view the
    table as a list of code columns: every categorical column directly, and
    (optionally) every numerical column after quantile binning.  The spec
    freezes what a serving artifact needs to re-derive a query row's codes
    with training-time boundaries: the source column index, the code
    cardinality, and — for binned columns — the fitted quantile edges.
    """

    name: str
    kind: str  # "categorical" | "binned"
    source: int  # index into dataset.categorical / dataset.numerical
    cardinality: int
    codes: np.ndarray  # (n,) training codes; -1 = missing
    bin_edges: Optional[np.ndarray] = None

    def encode(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        """Codes for raw query rows using the frozen training boundaries."""
        if self.kind == "categorical":
            return np.asarray(categorical[:, self.source], dtype=np.int64)
        return bin_codes(numerical[:, self.source], self.bin_edges)

    def to_meta(self) -> Dict[str, object]:
        """JSON-safe column description for artifact sidecars."""
        return {
            "name": self.name,
            "kind": self.kind,
            "source": int(self.source),
            "cardinality": int(self.cardinality),
        }

    @classmethod
    def from_meta(
        cls, meta: Dict[str, object], bin_edges: Optional[np.ndarray] = None
    ) -> "ValueColumnSpec":
        """Rebuild a serve-side spec from :meth:`to_meta` output.

        Training codes are not persisted (serve-time state lives in the
        formulation's vocabularies/graph), so ``codes`` comes back empty.
        """
        return cls(
            str(meta["name"]),
            str(meta["kind"]),
            int(meta["source"]),
            int(meta["cardinality"]),
            codes=np.zeros(0, np.int64),
            bin_edges=None if bin_edges is None else np.asarray(bin_edges),
        )


def value_column_specs(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = False,
) -> List[ValueColumnSpec]:
    """The ordered code columns hetero/multiplex constructions are built from."""
    specs: List[ValueColumnSpec] = []
    for j, name in enumerate(dataset.categorical_names):
        specs.append(ValueColumnSpec(
            name, "categorical", j, dataset.cardinalities[j], dataset.categorical[:, j]
        ))
    if include_numerical_bins and dataset.num_numerical:
        disc = KBinsDiscretizer(n_bins).fit(dataset.numerical)
        binned = disc.transform(dataset.numerical)
        for j, name in enumerate(dataset.numerical_names):
            specs.append(ValueColumnSpec(
                f"{name}_bin", "binned", j, n_bins, binned[:, j], disc.edges_[j]
            ))
    return specs


def bipartite_from_dataset(dataset: TabularDataset) -> BipartiteGraph:
    """Instances × (numerical features ∪ one-hot categorical values) bipartite graph.

    Numerical cells become weighted edges carrying the z-scored value;
    categorical cells become weight-1 edges to the (column=value) feature
    node.  NaN / missing cells create no edge — GRAPE's formulation.
    """
    blocks = []
    if dataset.num_numerical:
        scaled = StandardScaler().fit_transform(dataset.numerical)
        blocks.append(scaled)
    if dataset.num_categorical:
        onehot = np.zeros((dataset.num_instances, dataset.num_category_values))
        value_ids = dataset.global_value_ids()
        rows, cols = np.nonzero(value_ids >= 0)
        onehot[rows, value_ids[rows, cols]] = 1.0
        onehot[onehot == 0.0] = np.nan  # absent one-hot cells are "no edge"
        blocks.append(onehot)
    if not blocks:
        raise ValueError("dataset has no features")
    table = np.concatenate(blocks, axis=1)
    return BipartiteGraph.from_table(table, y=dataset.y)


def hetero_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = False,
    specs: Optional[List[ValueColumnSpec]] = None,
) -> HeteroGraph:
    """Heterogeneous graph: instance nodes + one node type per categorical column.

    Each categorical column ``c`` contributes nodes for its distinct values
    and a ``has_c`` edge type from instances to their value — the GCT /
    HSGNN / GraphFC formulation.  Optionally numerical columns are
    quantile-binned into value nodes too.
    """
    counts: Dict[str, int] = {"instance": dataset.num_instances}
    if specs is None:
        specs = value_column_specs(dataset, n_bins, include_numerical_bins)
    if not specs:
        raise ValueError(
            "hetero formulation needs categorical columns "
            "(or include_numerical_bins=True)"
        )
    for spec in specs:
        counts[spec.name] = spec.cardinality
    graph = HeteroGraph(counts)
    for spec in specs:
        observed = np.nonzero(spec.codes >= 0)[0]
        edge_index = np.stack([observed, spec.codes[observed]]).astype(np.int64)
        graph.add_edges(("instance", f"has_{spec.name}", spec.name), edge_index)
    graph.add_reverse_edges()
    if dataset.num_numerical:
        graph.set_features("instance", StandardScaler().fit_transform(
            np.nan_to_num(dataset.numerical, nan=0.0)
        ))
    else:
        graph.set_features("instance", np.ones((dataset.num_instances, 1)))
    graph.set_labels("instance", dataset.y)
    return graph


def multiplex_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = False,
    max_group_degree: Optional[int] = 30,
    rng: Optional[np.random.Generator] = None,
    specs: Optional[List[ValueColumnSpec]] = None,
) -> MultiplexGraph:
    """Multiplex instance graph: one Same-Feature-Value layer per column (TabGNN)."""
    x = dataset.to_matrix()
    graph = MultiplexGraph(dataset.num_instances, x=x, y=dataset.y)
    rng = rng or np.random.default_rng(0)
    if specs is None:
        specs = value_column_specs(dataset, n_bins, include_numerical_bins)
    for spec in specs:
        layer = same_value_graph(
            spec.codes, max_group_degree=max_group_degree, rng=rng
        )
        graph.add_layer(spec.name, layer.edge_index)
    if graph.num_layers == 0:
        raise ValueError(
            "multiplex formulation needs categorical columns "
            "(or include_numerical_bins=True)"
        )
    return graph


def hypergraph_from_dataset(
    dataset: TabularDataset,
    n_bins: int = 5,
    include_numerical_bins: bool = True,
) -> Hypergraph:
    """Rows-as-hyperedges hypergraph over feature-value nodes (HCL/PET).

    Categorical values become nodes directly.  Numerical columns are
    quantile-binned into value nodes — except *binary* (0/1) columns such as
    EHR multi-hot code indicators, which become a single membership node
    joined exactly when the value is 1 (binning a mostly-constant column
    would collapse all rows into one degenerate bin).
    """
    value_blocks: list[np.ndarray] = []
    offsets = 0
    if dataset.num_categorical:
        ids = dataset.global_value_ids()
        value_blocks.append(ids)
        offsets = dataset.num_category_values
    if include_numerical_bins and dataset.num_numerical:
        numerical = dataset.numerical
        observed = ~np.isnan(numerical)
        is_binary = np.array([
            bool(np.isin(numerical[observed[:, j], j], (0.0, 1.0)).all())
            for j in range(dataset.num_numerical)
        ])
        binary_cols = np.nonzero(is_binary)[0]
        if binary_cols.size:
            block = np.full((dataset.num_instances, binary_cols.size), -1, dtype=np.int64)
            for out_j, j in enumerate(binary_cols):
                members = observed[:, j] & (numerical[:, j] == 1.0)
                block[members, out_j] = offsets + out_j
            value_blocks.append(block)
            offsets += int(binary_cols.size)
        continuous_cols = np.nonzero(~is_binary)[0]
        if continuous_cols.size:
            binned = KBinsDiscretizer(n_bins).fit_transform(numerical[:, continuous_cols])
            shifted = np.where(
                binned >= 0,
                binned + offsets + np.arange(continuous_cols.size)[None, :] * n_bins,
                -1,
            )
            value_blocks.append(shifted)
            offsets += int(continuous_cols.size) * n_bins
    if not value_blocks:
        raise ValueError("hypergraph formulation needs at least one value column")
    value_ids = np.concatenate(value_blocks, axis=1)
    return Hypergraph.from_value_table(value_ids, num_values=offsets, y=dataset.y)


def feature_graph_from_correlation(
    x: np.ndarray,
    threshold: float = 0.3,
    weighted: bool = True,
) -> Graph:
    """Feature graph with edges between |Pearson|-correlated columns.

    A rule/knowledge hybrid used as the default feature-graph construction
    when no external knowledge graph is available (IGNNet uses Pearson
    correlation for exactly this).
    """
    x = np.nan_to_num(np.asarray(x, dtype=np.float64), nan=0.0)
    d = x.shape[1]
    if d == 0:
        raise ValueError("need at least one feature column")
    std = x.std(axis=0)
    safe = np.where(std > 0, std, 1.0)
    normed = (x - x.mean(axis=0)) / safe
    corr = (normed.T @ normed) / max(1, x.shape[0])
    corr[np.abs(corr) < threshold] = 0.0
    np.fill_diagonal(corr, 0.0)
    src, dst = np.nonzero(corr)
    edge_index = np.stack([src, dst]).astype(np.int64) if src.size else np.zeros((2, 0), np.int64)
    weight = np.abs(corr[src, dst]) if (weighted and src.size) else None
    return Graph(d, edge_index, edge_weight=weight)


def feature_graph_from_knowledge(
    num_features: int,
    edges: Sequence[Tuple[int, int]],
    symmetric: bool = True,
) -> Graph:
    """Feature graph from an expert-provided relation list (PLATO-style).

    ``edges`` are (feature_i, feature_j) pairs from domain knowledge
    (protein maps, clinical variable dependencies, ...).
    """
    if not edges:
        raise ValueError("knowledge edge list is empty")
    edge_index = np.array(edges, dtype=np.int64).T
    if symmetric:
        from repro.graph.utils import symmetrize_edge_index

        edge_index, _ = symmetrize_edge_index(edge_index)
    return Graph(num_features, edge_index)
