"""Hypergraphs for tabular data (survey Sec. 4.1.3, HCL [10] / PET [27]).

Nodes are distinct feature values; every table row becomes one hyperedge
joining the values it contains.  The incidence matrix ``H`` (nodes ×
hyperedges) drives HGNN-style convolution:

    X' = Dv^{-1/2} H W De^{-1} H^T Dv^{-1/2} X Θ
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.graph.utils import safe_reciprocal


class Hypergraph:
    """A hypergraph stored as a sparse incidence matrix.

    Parameters
    ----------
    incidence:
        ``(num_nodes, num_hyperedges)`` sparse 0/1 matrix; ``H[v, e] = 1``
        iff node ``v`` belongs to hyperedge ``e``.
    x:
        Optional node features.
    y:
        Optional *hyperedge* labels (rows are hyperedges in the tabular
        formulation, so classification is hyperedge-level — "Edge" task in
        the survey's Table 2 for HCL).
    """

    def __init__(
        self,
        incidence: sp.spmatrix,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> None:
        self.incidence = sp.csr_matrix(incidence)
        if (self.incidence.data < 0).any():
            raise ValueError("incidence entries must be nonnegative")
        self.x = None if x is None else np.asarray(x, dtype=np.float64)
        if self.x is not None and self.x.shape[0] != self.num_nodes:
            raise ValueError("x must have one row per node")
        self.y = None if y is None else np.asarray(y)
        if self.y is not None and self.y.shape[0] != self.num_hyperedges:
            raise ValueError("y must have one entry per hyperedge")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.incidence.shape[0])

    @property
    def num_hyperedges(self) -> int:
        return int(self.incidence.shape[1])

    def node_degrees(self) -> np.ndarray:
        return np.asarray(self.incidence.sum(axis=1)).reshape(-1)

    def hyperedge_degrees(self) -> np.ndarray:
        return np.asarray(self.incidence.sum(axis=0)).reshape(-1)

    # ------------------------------------------------------------------
    def hgnn_operator(self) -> sp.csr_matrix:
        """The normalized clique-expansion operator of HGNN (node → node)."""
        h = self.incidence
        dv = self.node_degrees()
        de = self.hyperedge_degrees()
        dv_inv_sqrt = sp.diags(safe_reciprocal(dv, power=0.5))
        de_inv = sp.diags(safe_reciprocal(de))
        return (dv_inv_sqrt @ h @ de_inv @ h.T @ dv_inv_sqrt).tocsr()

    def node_to_edge_operator(self) -> sp.csr_matrix:
        """Mean-aggregate node states into hyperedge states (edges × nodes)."""
        de = self.hyperedge_degrees()
        return (sp.diags(safe_reciprocal(de)) @ self.incidence.T).tocsr()

    def edge_to_node_operator(self) -> sp.csr_matrix:
        """Mean-aggregate hyperedge states back into nodes (nodes × edges)."""
        dv = self.node_degrees()
        return (sp.diags(safe_reciprocal(dv)) @ self.incidence).tocsr()

    # ------------------------------------------------------------------
    @classmethod
    def from_value_table(
        cls,
        value_ids: np.ndarray,
        num_values: Optional[int] = None,
        y: Optional[np.ndarray] = None,
    ) -> "Hypergraph":
        """Build the rows-as-hyperedges hypergraph from a categorical table.

        ``value_ids[i, j]`` is the *global* id of the value that row ``i``
        takes in column ``j`` (use
        :class:`~repro.datasets.preprocessing.OrdinalEncoder` with global
        offsets).  Negative ids mark missing cells and create no membership.
        """
        value_ids = np.asarray(value_ids, dtype=np.int64)
        if value_ids.ndim != 2:
            raise ValueError("value_ids must be a 2-D table")
        n_rows, _ = value_ids.shape
        if num_values is None:
            num_values = int(value_ids.max()) + 1
        rows, cols = np.nonzero(value_ids >= 0)
        nodes = value_ids[rows, cols]
        incidence = sp.csr_matrix(
            (np.ones(len(nodes)), (nodes, rows)), shape=(num_values, n_rows)
        )
        incidence.data = np.minimum(incidence.data, 1.0)  # dedupe repeated values
        return cls(incidence, y=y)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Hypergraph(num_nodes={self.num_nodes}, "
            f"num_hyperedges={self.num_hyperedges})"
        )
