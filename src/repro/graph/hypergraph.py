"""Hypergraphs for tabular data (survey Sec. 4.1.3, HCL [10] / PET [27]).

Nodes are distinct feature values; every table row becomes one hyperedge
joining the values it contains.  The incidence matrix ``H`` (nodes ×
hyperedges) drives HGNN-style convolution:

    X' = Dv^{-1/2} H W De^{-1} H^T Dv^{-1/2} X Θ
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.utils import safe_reciprocal


class Hypergraph:
    """A hypergraph stored as a sparse incidence matrix.

    Parameters
    ----------
    incidence:
        ``(num_nodes, num_hyperedges)`` sparse 0/1 matrix; ``H[v, e] = 1``
        iff node ``v`` belongs to hyperedge ``e``.
    x:
        Optional node features.
    y:
        Optional *hyperedge* labels (rows are hyperedges in the tabular
        formulation, so classification is hyperedge-level — "Edge" task in
        the survey's Table 2 for HCL).
    """

    def __init__(
        self,
        incidence: sp.spmatrix,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> None:
        self.incidence = sp.csr_matrix(incidence)
        if (self.incidence.data < 0).any():
            raise ValueError("incidence entries must be nonnegative")
        self.x = None if x is None else np.asarray(x, dtype=np.float64)
        if self.x is not None and self.x.shape[0] != self.num_nodes:
            raise ValueError("x must have one row per node")
        self.y = None if y is None else np.asarray(y)
        if self.y is not None and self.y.shape[0] != self.num_hyperedges:
            raise ValueError("y must have one entry per hyperedge")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.incidence.shape[0])

    @property
    def num_hyperedges(self) -> int:
        return int(self.incidence.shape[1])

    def node_degrees(self) -> np.ndarray:
        return np.asarray(self.incidence.sum(axis=1)).reshape(-1)

    def hyperedge_degrees(self) -> np.ndarray:
        return np.asarray(self.incidence.sum(axis=0)).reshape(-1)

    # ------------------------------------------------------------------
    def hgnn_operator(self) -> sp.csr_matrix:
        """The normalized clique-expansion operator of HGNN (node → node)."""
        h = self.incidence
        dv = self.node_degrees()
        de = self.hyperedge_degrees()
        dv_inv_sqrt = sp.diags(safe_reciprocal(dv, power=0.5))
        de_inv = sp.diags(safe_reciprocal(de))
        return (dv_inv_sqrt @ h @ de_inv @ h.T @ dv_inv_sqrt).tocsr()

    def node_to_edge_operator(self) -> sp.csr_matrix:
        """Mean-aggregate node states into hyperedge states (edges × nodes)."""
        de = self.hyperedge_degrees()
        return (sp.diags(safe_reciprocal(de)) @ self.incidence.T).tocsr()

    def edge_to_node_operator(self) -> sp.csr_matrix:
        """Mean-aggregate hyperedge states back into nodes (nodes × edges)."""
        dv = self.node_degrees()
        return (sp.diags(safe_reciprocal(dv)) @ self.incidence).tocsr()

    # ------------------------------------------------------------------
    # serving: attach views and state serialization
    # ------------------------------------------------------------------
    @staticmethod
    def _memberships(member_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
        """Deduplicated ``(node, hyperedge)`` membership pairs from an id table.

        ``member_ids[b, c]`` is the global value-node id row ``b`` takes in
        membership column ``c``; negatives mark missing/UNK cells and create
        no membership — exactly :meth:`from_value_table`'s convention.
        """
        member_ids = np.asarray(member_ids, dtype=np.int64)
        if member_ids.ndim != 2:
            raise ValueError("member_ids must be a 2-D (B, columns) table")
        rows, cols = np.nonzero(member_ids >= 0)
        nodes = member_ids[rows, cols]
        pairs = np.unique(np.stack([rows, nodes], axis=1), axis=0)
        return pairs[:, 1], pairs[:, 0], int(member_ids.shape[0])

    def attach_view(self, member_ids: np.ndarray):
        """Directed node→query-hyperedge aggregation view for B query rows.

        Serving attaches each query row as a *new hyperedge* over the frozen
        value nodes: the returned :class:`~repro.graph.homogeneous.EdgeView`
        is bipartite — ``src`` indexes this hypergraph's value-node table,
        ``dst`` indexes the B query hyperedges (``num_nodes`` = B destination
        buckets) — with ``1/degree`` weights replicating exactly the
        ``De^-1 H^T`` readout a training hyperedge gets.  Edges are directed
        node→query, so value-node states (and every training hyperedge's
        logits) are invariant to attached queries.  A query with no
        memberships (all cells missing/UNK) gets no edges and aggregates to
        the zero state — the same fallback an all-missing training row has.
        Building the view is O(B·columns), independent of pool size.
        """
        src, dst, n_queries = self._memberships(member_ids)
        if src.size and int(src.max()) >= self.num_nodes:
            raise ValueError("member id exceeds the frozen value-node count")
        from repro.graph.homogeneous import EdgeView

        degrees = np.bincount(dst, minlength=n_queries).astype(np.float64)
        return EdgeView(src, dst, n_queries, weight=1.0 / degrees[dst])

    def with_hyperedges(self, member_ids: np.ndarray) -> "Hypergraph":
        """Copy with B query hyperedges appended as new incidence columns.

        The attach is *directed*: the node→node :meth:`hgnn_operator` (node
        degrees and the ``H De^-1 H^T`` mixing) is still computed from the
        original columns only, so value-node states are exactly those of the
        frozen hypergraph, while the :meth:`node_to_edge_operator` readout
        covers the appended columns with their own degrees.  This is the
        full-graph correctness oracle for incremental hypergraph serving:
        ``forward()`` on the attached copy reproduces training-hyperedge
        logits bit-for-bit and scores the queries through the model's
        ordinary spmm path.
        """
        src, dst, n_queries = self._memberships(member_ids)
        if src.size and int(src.max()) >= self.num_nodes:
            raise ValueError("member id exceeds the frozen value-node count")
        extra = sp.csr_matrix(
            (np.ones(src.shape[0]), (src, dst)),
            shape=(self.num_nodes, n_queries),
        )
        incidence = sp.hstack([self.incidence, extra], format="csr")
        return _AttachedHypergraph(incidence, base_hyperedges=self.num_hyperedges)

    def state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """(arrays, json-safe meta) serialization of the incidence structure.

        Only the frozen structure is persisted — features and labels are
        training-side state a serving artifact does not need.
        """
        arrays = {
            "indptr": self.incidence.indptr.astype(np.int64),
            "indices": self.incidence.indices.astype(np.int64),
            "data": self.incidence.data.astype(np.float64),
        }
        meta = {
            "num_nodes": self.num_nodes,
            "num_hyperedges": self.num_hyperedges,
        }
        return arrays, meta

    @classmethod
    def from_state(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> "Hypergraph":
        """Rebuild a hypergraph serialized by :meth:`state`."""
        incidence = sp.csr_matrix(
            (
                np.asarray(arrays["data"], dtype=np.float64),
                np.asarray(arrays["indices"], dtype=np.int64),
                np.asarray(arrays["indptr"], dtype=np.int64),
            ),
            shape=(int(meta["num_nodes"]), int(meta["num_hyperedges"])),
        )
        return cls(incidence)

    # ------------------------------------------------------------------
    @classmethod
    def from_value_table(
        cls,
        value_ids: np.ndarray,
        num_values: Optional[int] = None,
        y: Optional[np.ndarray] = None,
    ) -> "Hypergraph":
        """Build the rows-as-hyperedges hypergraph from a categorical table.

        ``value_ids[i, j]`` is the *global* id of the value that row ``i``
        takes in column ``j`` (use
        :class:`~repro.datasets.preprocessing.OrdinalEncoder` with global
        offsets).  Negative ids mark missing cells and create no membership.
        """
        value_ids = np.asarray(value_ids, dtype=np.int64)
        if value_ids.ndim != 2:
            raise ValueError("value_ids must be a 2-D table")
        n_rows, _ = value_ids.shape
        if num_values is None:
            num_values = int(value_ids.max()) + 1
        rows, cols = np.nonzero(value_ids >= 0)
        nodes = value_ids[rows, cols]
        incidence = sp.csr_matrix(
            (np.ones(len(nodes)), (nodes, rows)), shape=(num_values, n_rows)
        )
        incidence.data = np.minimum(incidence.data, 1.0)  # dedupe repeated values
        return cls(incidence, y=y)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Hypergraph(num_nodes={self.num_nodes}, "
            f"num_hyperedges={self.num_hyperedges})"
        )


class _AttachedHypergraph(Hypergraph):
    """A hypergraph with query columns appended under directed semantics.

    Produced by :meth:`Hypergraph.with_hyperedges`; the node→node operator
    sees only the first ``base_hyperedges`` columns so attached queries
    cannot perturb the frozen value-node states.
    """

    def __init__(self, incidence: sp.spmatrix, base_hyperedges: int) -> None:
        super().__init__(incidence)
        self.base_hyperedges = int(base_hyperedges)

    def hgnn_operator(self) -> sp.csr_matrix:
        base = Hypergraph(self.incidence[:, : self.base_hyperedges])
        return base.hgnn_operator()
