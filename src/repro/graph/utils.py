"""Edge-index utilities and graph statistics shared by all graph classes."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np


def safe_reciprocal(values: np.ndarray, power: float = 1.0) -> np.ndarray:
    """Elementwise ``values**-power`` with zeros (and subnormals whose
    reciprocal would overflow) mapped to zero, without warnings."""
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros_like(values)
    positive = values > 0
    with np.errstate(over="ignore"):
        recip = values[positive] ** (-power)
    recip[~np.isfinite(recip)] = 0.0
    out[positive] = recip
    return out


def validate_edge_index(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Check an edge index is a well-formed ``(2, E)`` int array in range."""
    edge_index = np.asarray(edge_index, dtype=np.int64)
    if edge_index.ndim != 2 or edge_index.shape[0] != 2:
        raise ValueError(f"edge_index must have shape (2, E), got {edge_index.shape}")
    if edge_index.size and (edge_index.min() < 0 or edge_index.max() >= num_nodes):
        raise ValueError(
            f"edge_index contains node ids outside [0, {num_nodes})"
        )
    return edge_index


def symmetrize_edge_index(
    edge_index: np.ndarray, edge_weight: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Add the reverse of every edge, then coalesce duplicates.

    Weights of duplicate (coalesced) edges are combined by ``max`` so that
    symmetrizing an already-symmetric weighted graph is a no-op.
    """
    both = np.concatenate([edge_index, edge_index[::-1]], axis=1)
    weights = None if edge_weight is None else np.concatenate([edge_weight, edge_weight])
    return coalesce_edge_index(both, weights)


def coalesce_edge_index(
    edge_index: np.ndarray, edge_weight: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Remove duplicate edges (keeping max weight for duplicates)."""
    if edge_index.size == 0:
        return edge_index.reshape(2, 0), edge_weight
    order = np.lexsort((edge_index[1], edge_index[0]))
    sorted_edges = edge_index[:, order]
    keep = np.ones(sorted_edges.shape[1], dtype=bool)
    keep[1:] = np.any(sorted_edges[:, 1:] != sorted_edges[:, :-1], axis=0)
    coalesced = sorted_edges[:, keep]
    if edge_weight is None:
        return coalesced, None
    sorted_weights = np.asarray(edge_weight, dtype=np.float64)[order]
    group_ids = np.cumsum(keep) - 1
    out_weights = np.full(coalesced.shape[1], -np.inf)
    np.maximum.at(out_weights, group_ids, sorted_weights)
    return coalesced, out_weights


def remove_self_loops(
    edge_index: np.ndarray, edge_weight: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    mask = edge_index[0] != edge_index[1]
    out_weight = None if edge_weight is None else np.asarray(edge_weight)[mask]
    return edge_index[:, mask], out_weight


def edge_homophily(edge_index: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of edges joining same-label endpoints (survey Sec. 4.1.2).

    The survey recommends homophilic tests when choosing which attributes
    become nodes/relations; this is the standard edge-homophily statistic.
    Returns ``nan`` for empty graphs.
    """
    if edge_index.size == 0:
        return float("nan")
    labels = np.asarray(labels)
    return float(np.mean(labels[edge_index[0]] == labels[edge_index[1]]))


def degree_statistics(edge_index: np.ndarray, num_nodes: int) -> Dict[str, float]:
    """Degree summary used by graph-construction diagnostics."""
    degrees = np.bincount(edge_index[1], minlength=num_nodes)
    return {
        "mean": float(degrees.mean()) if num_nodes else 0.0,
        "min": float(degrees.min()) if num_nodes else 0.0,
        "max": float(degrees.max()) if num_nodes else 0.0,
        "isolated": int((degrees == 0).sum()),
    }


def graph_summary(graph) -> Dict[str, object]:
    """Human-readable summary for any graph exposing edge_index/num_nodes."""
    stats = degree_statistics(graph.edge_index, graph.num_nodes)
    summary: Dict[str, object] = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "degree_mean": stats["mean"],
        "degree_max": stats["max"],
        "isolated_nodes": stats["isolated"],
    }
    if getattr(graph, "y", None) is not None:
        summary["edge_homophily"] = edge_homophily(graph.edge_index, graph.y)
    return summary
