"""Homogeneous attributed graphs ``G = (V, E, X)`` (survey Sec. 2.2).

Used for both *instance graphs* (nodes are table rows) and *feature graphs*
(nodes are columns).  Provides the normalized adjacency operators that the
GNN layers in :mod:`repro.gnn` consume.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.graph import utils


class Graph:
    """A homogeneous graph with optional node features, labels and masks.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    edge_index:
        ``(2, E)`` integer array of (source, destination) pairs.  The graph
        is stored as directed; use :meth:`symmetrize` for undirected
        semantics.
    x:
        Optional ``(n, d)`` node-feature matrix.
    y:
        Optional ``(n,)`` label vector (int for classification, float for
        regression).
    edge_weight:
        Optional ``(E,)`` nonnegative weights.
    masks:
        Optional dict of named boolean ``(n,)`` masks (train/val/test).
    """

    def __init__(
        self,
        num_nodes: int,
        edge_index: np.ndarray,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        edge_weight: Optional[np.ndarray] = None,
        masks: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be nonnegative")
        self.num_nodes = int(num_nodes)
        self.edge_index = utils.validate_edge_index(edge_index, self.num_nodes)
        if x is not None:
            x = np.asarray(x, dtype=np.float64)
            if x.shape[0] != num_nodes:
                raise ValueError(
                    f"x has {x.shape[0]} rows but graph has {num_nodes} nodes"
                )
        self.x = x
        if y is not None:
            y = np.asarray(y)
            if y.shape[0] != num_nodes:
                raise ValueError(
                    f"y has {y.shape[0]} entries but graph has {num_nodes} nodes"
                )
        self.y = y
        if edge_weight is not None:
            edge_weight = np.asarray(edge_weight, dtype=np.float64)
            if edge_weight.shape != (self.edge_index.shape[1],):
                raise ValueError("edge_weight length must equal number of edges")
        self.edge_weight = edge_weight
        self.masks: Dict[str, np.ndarray] = {}
        for name, mask in (masks or {}).items():
            self.set_mask(name, mask)
        # Structure is immutable after construction (transforms return new
        # Graphs), so the normalized operators can be built once and shared.
        # Callers must treat the returned matrices as read-only.
        self._operator_cache: Dict[Tuple[str, bool], sp.csr_matrix] = {}

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    @property
    def num_features(self) -> int:
        return 0 if self.x is None else int(self.x.shape[1])

    def set_mask(self, name: str, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_nodes,):
            raise ValueError(f"mask {name!r} must have shape ({self.num_nodes},)")
        self.masks[name] = mask

    def degrees(self, direction: str = "in") -> np.ndarray:
        row = self.edge_index[1] if direction == "in" else self.edge_index[0]
        return np.bincount(row, minlength=self.num_nodes).astype(np.float64)

    # ------------------------------------------------------------------
    # structure transforms
    # ------------------------------------------------------------------
    def symmetrize(self) -> "Graph":
        """Return an undirected copy (both edge directions, coalesced)."""
        edge_index, edge_weight = utils.symmetrize_edge_index(
            self.edge_index, self.edge_weight
        )
        return self._replace_structure(edge_index, edge_weight)

    def add_self_loops(self) -> "Graph":
        """Return a copy with one self loop (weight 1) on every node."""
        edge_index, edge_weight = utils.remove_self_loops(
            self.edge_index, self.edge_weight
        )
        loops = np.tile(np.arange(self.num_nodes, dtype=np.int64), (2, 1))
        new_index = np.concatenate([edge_index, loops], axis=1)
        if edge_weight is not None or self.edge_weight is not None:
            base = edge_weight if edge_weight is not None else np.ones(edge_index.shape[1])
            new_weight = np.concatenate([base, np.ones(self.num_nodes)])
        else:
            new_weight = None
        return self._replace_structure(new_index, new_weight)

    def _replace_structure(self, edge_index, edge_weight) -> "Graph":
        return Graph(
            self.num_nodes,
            edge_index,
            x=self.x,
            y=self.y,
            edge_weight=edge_weight,
            masks=dict(self.masks),
        )

    # ------------------------------------------------------------------
    # adjacency operators
    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        """Plain (weighted) adjacency ``A`` with ``A[dst, src] = w``.

        Oriented so that ``A @ X`` aggregates *incoming* messages, matching
        the ``aggregate`` step of Sec. 2.3.  Memoized (structure is frozen
        at construction); treat the result as read-only.
        """
        key = ("adjacency", False)
        if key not in self._operator_cache:
            weights = (
                self.edge_weight
                if self.edge_weight is not None
                else np.ones(self.num_edges)
            )
            self._operator_cache[key] = sp.csr_matrix(
                (weights, (self.edge_index[1], self.edge_index[0])),
                shape=(self.num_nodes, self.num_nodes),
            )
        return self._operator_cache[key]

    def gcn_adjacency(self) -> sp.csr_matrix:
        """Symmetric-normalized adjacency with self loops: D^-1/2 (A+I) D^-1/2.

        Memoized; treat the result as read-only.
        """
        key = ("gcn", False)
        if key not in self._operator_cache:
            adj = self.adjacency() + sp.eye(self.num_nodes, format="csr")
            degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
            d_mat = sp.diags(utils.safe_reciprocal(degrees, power=0.5))
            self._operator_cache[key] = (d_mat @ adj @ d_mat).tocsr()
        return self._operator_cache[key]

    def mean_adjacency(self, add_self_loops: bool = False) -> sp.csr_matrix:
        """Row-normalized adjacency D^-1 A (mean aggregation, GraphSAGE).

        Memoized per ``add_self_loops`` value; treat the result as read-only.
        """
        key = ("mean", bool(add_self_loops))
        if key not in self._operator_cache:
            adj = self.adjacency()
            if add_self_loops:
                adj = adj + sp.eye(self.num_nodes, format="csr")
            degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
            self._operator_cache[key] = (
                sp.diags(utils.safe_reciprocal(degrees)) @ adj
            ).tocsr()
        return self._operator_cache[key]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        if self.edge_weight is not None:
            g.add_weighted_edges_from(
                zip(self.edge_index[0], self.edge_index[1], self.edge_weight)
            )
        else:
            g.add_edges_from(zip(self.edge_index[0], self.edge_index[1]))
        return g

    @staticmethod
    def from_networkx(
        g: nx.Graph,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> "Graph":
        nodes = sorted(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in g.edges()]
        if not g.is_directed():
            edges += [(v, u) for u, v in edges]
        edge_index = (
            np.array(edges, dtype=np.int64).T if edges else np.zeros((2, 0), np.int64)
        )
        return Graph(len(nodes), edge_index, x=x, y=y)

    def summary(self) -> Dict[str, object]:
        return utils.graph_summary(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, num_features={self.num_features})"
