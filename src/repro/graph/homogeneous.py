"""Homogeneous attributed graphs ``G = (V, E, X)`` (survey Sec. 2.2).

Used for both *instance graphs* (nodes are table rows) and *feature graphs*
(nodes are columns).  Provides the normalized adjacency operators and the
edge-wise :class:`EdgeView` substrate that the GNN layers in
:mod:`repro.gnn` consume.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.graph import utils
from repro.tensor import Tensor, ops

#: Edge-view flavors understood by :meth:`Graph.edge_view` /
#: :meth:`Graph.attach_view`.  Each conv layer declares the flavor it
#: consumes via its ``view_kind`` class attribute.
VIEW_KINDS = ("sum", "mean", "mean_loops", "gcn", "attention")


class EdgeView:
    """Edge-wise message-passing view: directed edges ``src → dst`` over a
    single node table, with optional per-edge coefficients.

    This is the uniform substrate every conv layer's ``propagate`` runs on.
    :meth:`aggregate` is the weighted-sum primitive — gather messages at
    ``src``, scale by :attr:`weight`, segment-sum into ``dst`` buckets —
    with a memoized sparse-operator fast path when the view was derived
    from a whole :class:`Graph`.  Attention layers read :attr:`src` /
    :attr:`dst` directly and normalize with ``segment_softmax`` over
    :attr:`num_nodes` destination buckets.

    Views come from two places, both cheap to reuse:

    * :meth:`Graph.edge_view` — derived once per normalization flavor from
      a frozen graph and memoized alongside the adjacency-operator cache
      (self loops, where the flavor needs them, are baked in here — no
      per-forward ``tile``/``concat``);
    * :meth:`Graph.attach_view` — a tiny bipartite view linking B query
      rows to their k retrieved pool neighbors, built per serving request
      in O(B·k).
    """

    __slots__ = ("src", "dst", "num_nodes", "weight", "_matrix")

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        weight: Optional[np.ndarray] = None,
        matrix: Optional[sp.spmatrix] = None,
    ) -> None:
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError("src and dst must be equal-length 1-D arrays")
        self.num_nodes = int(num_nodes)
        self.weight = None if weight is None else np.asarray(weight, dtype=np.float64)
        if self.weight is not None and self.weight.shape != self.src.shape:
            raise ValueError("weight length must equal number of edges")
        self._matrix = matrix

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    @classmethod
    def from_edge_index(
        cls, edge_index: np.ndarray, num_nodes: int, add_self_loops: bool = False
    ) -> "EdgeView":
        """Unweighted view from a raw ``(2, E)`` edge index (GAT compat path)."""
        edge_index = np.asarray(edge_index, dtype=np.int64)
        src, dst = edge_index[0], edge_index[1]
        if add_self_loops:
            loops = np.arange(num_nodes, dtype=np.int64)
            src = np.concatenate([src, loops])
            dst = np.concatenate([dst, loops])
        return cls(src, dst, num_nodes)

    def aggregate(self, h: Tensor) -> Tensor:
        """Weighted-sum aggregation: ``out[d] = Σ_{e: dst_e = d} w_e · h[src_e]``.

        Differentiable either way: views derived from a frozen graph carry
        a memoized sparse operator (one ``spmm``); per-request attach views
        run the gather → scale → segment-sum primitives directly, keeping
        the cost proportional to the number of edges in the view.
        """
        if self._matrix is not None:
            return ops.spmm(self._matrix, h)
        messages = ops.gather_rows(h, self.src)
        if self.weight is not None:
            messages = ops.mul(messages, Tensor(self.weight[:, None]))
        return ops.segment_sum(messages, self.dst, self.num_nodes)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"EdgeView(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"weighted={self.weight is not None})"
        )


class Graph:
    """A homogeneous graph with optional node features, labels and masks.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    edge_index:
        ``(2, E)`` integer array of (source, destination) pairs.  The graph
        is stored as directed; use :meth:`symmetrize` for undirected
        semantics.
    x:
        Optional ``(n, d)`` node-feature matrix.
    y:
        Optional ``(n,)`` label vector (int for classification, float for
        regression).
    edge_weight:
        Optional ``(E,)`` nonnegative weights.
    masks:
        Optional dict of named boolean ``(n,)`` masks (train/val/test).
    """

    def __init__(
        self,
        num_nodes: int,
        edge_index: np.ndarray,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        edge_weight: Optional[np.ndarray] = None,
        masks: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be nonnegative")
        self.num_nodes = int(num_nodes)
        self.edge_index = utils.validate_edge_index(edge_index, self.num_nodes)
        if x is not None:
            x = np.asarray(x, dtype=np.float64)
            if x.shape[0] != num_nodes:
                raise ValueError(
                    f"x has {x.shape[0]} rows but graph has {num_nodes} nodes"
                )
        self.x = x
        if y is not None:
            y = np.asarray(y)
            if y.shape[0] != num_nodes:
                raise ValueError(
                    f"y has {y.shape[0]} entries but graph has {num_nodes} nodes"
                )
        self.y = y
        if edge_weight is not None:
            edge_weight = np.asarray(edge_weight, dtype=np.float64)
            if edge_weight.shape != (self.edge_index.shape[1],):
                raise ValueError("edge_weight length must equal number of edges")
        self.edge_weight = edge_weight
        self.masks: Dict[str, np.ndarray] = {}
        for name, mask in (masks or {}).items():
            self.set_mask(name, mask)
        # Structure is immutable after construction (transforms return new
        # Graphs), so the normalized operators and edge views can be built
        # once and shared.  Callers must treat the cached values as
        # read-only.
        self._operator_cache: Dict[Tuple[str, object], object] = {}

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    @property
    def num_features(self) -> int:
        return 0 if self.x is None else int(self.x.shape[1])

    def set_mask(self, name: str, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_nodes,):
            raise ValueError(f"mask {name!r} must have shape ({self.num_nodes},)")
        self.masks[name] = mask

    def degrees(self, direction: str = "in") -> np.ndarray:
        row = self.edge_index[1] if direction == "in" else self.edge_index[0]
        return np.bincount(row, minlength=self.num_nodes).astype(np.float64)

    # ------------------------------------------------------------------
    # structure transforms
    # ------------------------------------------------------------------
    def symmetrize(self) -> "Graph":
        """Return an undirected copy (both edge directions, coalesced)."""
        edge_index, edge_weight = utils.symmetrize_edge_index(
            self.edge_index, self.edge_weight
        )
        return self._replace_structure(edge_index, edge_weight)

    def add_self_loops(self) -> "Graph":
        """Return a copy with one self loop (weight 1) on every node."""
        edge_index, edge_weight = utils.remove_self_loops(
            self.edge_index, self.edge_weight
        )
        loops = np.tile(np.arange(self.num_nodes, dtype=np.int64), (2, 1))
        new_index = np.concatenate([edge_index, loops], axis=1)
        if edge_weight is not None or self.edge_weight is not None:
            base = edge_weight if edge_weight is not None else np.ones(edge_index.shape[1])
            new_weight = np.concatenate([base, np.ones(self.num_nodes)])
        else:
            new_weight = None
        return self._replace_structure(new_index, new_weight)

    def _replace_structure(self, edge_index, edge_weight) -> "Graph":
        return Graph(
            self.num_nodes,
            edge_index,
            x=self.x,
            y=self.y,
            edge_weight=edge_weight,
            masks=dict(self.masks),
        )

    # ------------------------------------------------------------------
    # adjacency operators
    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        """Plain (weighted) adjacency ``A`` with ``A[dst, src] = w``.

        Oriented so that ``A @ X`` aggregates *incoming* messages, matching
        the ``aggregate`` step of Sec. 2.3.  Memoized (structure is frozen
        at construction); treat the result as read-only.
        """
        key = ("adjacency", False)
        if key not in self._operator_cache:
            weights = (
                self.edge_weight
                if self.edge_weight is not None
                else np.ones(self.num_edges)
            )
            self._operator_cache[key] = sp.csr_matrix(
                (weights, (self.edge_index[1], self.edge_index[0])),
                shape=(self.num_nodes, self.num_nodes),
            )
        return self._operator_cache[key]

    def gcn_adjacency(self) -> sp.csr_matrix:
        """Symmetric-normalized adjacency with self loops: D^-1/2 (A+I) D^-1/2.

        Memoized; treat the result as read-only.
        """
        key = ("gcn", False)
        if key not in self._operator_cache:
            adj = self.adjacency() + sp.eye(self.num_nodes, format="csr")
            degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
            d_mat = sp.diags(utils.safe_reciprocal(degrees, power=0.5))
            self._operator_cache[key] = (d_mat @ adj @ d_mat).tocsr()
        return self._operator_cache[key]

    def mean_adjacency(self, add_self_loops: bool = False) -> sp.csr_matrix:
        """Row-normalized adjacency D^-1 A (mean aggregation, GraphSAGE).

        Memoized per ``add_self_loops`` value; treat the result as read-only.
        """
        key = ("mean", bool(add_self_loops))
        if key not in self._operator_cache:
            adj = self.adjacency()
            if add_self_loops:
                adj = adj + sp.eye(self.num_nodes, format="csr")
            degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
            self._operator_cache[key] = (
                sp.diags(utils.safe_reciprocal(degrees)) @ adj
            ).tocsr()
        return self._operator_cache[key]

    # ------------------------------------------------------------------
    # edge views (the message-passing substrate)
    # ------------------------------------------------------------------
    def edge_view(self, kind: str) -> EdgeView:
        """Memoized :class:`EdgeView` of this graph under ``kind`` normalization.

        ``kind`` selects how per-edge coefficients (and self loops) are
        derived — one flavor per conv family:

        * ``"sum"`` — raw (weighted) adjacency, no loops (GIN);
        * ``"mean"`` — ``D^-1 A``, no loops (GraphSAGE);
        * ``"mean_loops"`` — ``D^-1 (A + I)`` (gated message steps);
        * ``"gcn"`` — ``D^-1/2 (A + I) D^-1/2`` (GCN);
        * ``"attention"`` — raw edges plus one self loop per node, no
          weights: normalization is learned per edge (GAT).

        The weighted flavors reuse the memoized adjacency operators, so
        :meth:`EdgeView.aggregate` on a full-graph view is exactly the
        operator ``spmm`` of earlier revisions — same numbers, same speed.
        """
        key = ("view", kind)
        if key not in self._operator_cache:
            if kind == "attention":
                loops = np.arange(self.num_nodes, dtype=np.int64)
                view = EdgeView(
                    np.concatenate([self.edge_index[0], loops]),
                    np.concatenate([self.edge_index[1], loops]),
                    self.num_nodes,
                )
            else:
                operators = {
                    "sum": self.adjacency,
                    "mean": self.mean_adjacency,
                    "mean_loops": lambda: self.mean_adjacency(add_self_loops=True),
                    "gcn": self.gcn_adjacency,
                }
                if kind not in operators:
                    raise ValueError(
                        f"unknown edge-view kind {kind!r}; choose from {VIEW_KINDS}"
                    )
                matrix = operators[kind]()
                coo = matrix.tocoo()
                view = EdgeView(
                    coo.col, coo.row, self.num_nodes, weight=coo.data, matrix=matrix
                )
            self._operator_cache[key] = view
        return self._operator_cache[key]

    def _gcn_inv_sqrt_degrees(self) -> np.ndarray:
        """Memoized ``1/sqrt(in_degree + 1)`` — the GCN normalization terms."""
        key = ("gcn_inv_sqrt_deg", False)
        if key not in self._operator_cache:
            degrees = np.asarray(self.adjacency().sum(axis=1)).reshape(-1) + 1.0
            self._operator_cache[key] = 1.0 / np.sqrt(degrees)
        return self._operator_cache[key]

    def attach_view(self, kind: str, neighbor_idx: np.ndarray) -> EdgeView:
        """Bipartite attach view linking B query rows to this (pool) graph.

        ``neighbor_idx`` is the ``(B, k)`` global pool indices of each
        query's retrieved neighbors.  The view is expressed over a *local*
        node table of ``B·k + B`` rows whose convention the caller must
        follow when assembling node states: row ``q·k + j`` holds pool node
        ``neighbor_idx[q, j]``'s state and the last ``B`` rows hold the
        query states.  Edges are directed pool→query (one per retrieved
        neighbor) plus, for the flavors that use self loops, one
        query→query loop; pool-local rows have no in-edges, so their
        outputs are vacuous and ignored.

        Per-edge weights replicate exactly what :meth:`edge_view` would
        produce on the induced (pool + queries) graph: directed attach
        edges leave every pool degree untouched, so a query's in-degree is
        ``k`` (``k + 1`` with its loop) and the pool-side GCN terms come
        from the memoized pool degrees.  Building the view is O(B·k) —
        independent of pool size.
        """
        neighbor_idx = np.asarray(neighbor_idx, dtype=np.int64)
        if neighbor_idx.ndim != 2 or neighbor_idx.size == 0:
            raise ValueError("neighbor_idx must be a non-empty (B, k) array")
        n_queries, k = neighbor_idx.shape
        base = n_queries * k
        src = np.arange(base, dtype=np.int64)
        dst = base + np.repeat(np.arange(n_queries, dtype=np.int64), k)
        loops = base + np.arange(n_queries, dtype=np.int64)
        num_local = base + n_queries
        if kind == "gcn":
            inv_sqrt_q = 1.0 / np.sqrt(k + 1.0)
            attach_w = self._gcn_inv_sqrt_degrees()[neighbor_idx.reshape(-1)] * inv_sqrt_q
            return EdgeView(
                np.concatenate([src, loops]),
                np.concatenate([dst, loops]),
                num_local,
                weight=np.concatenate([attach_w, np.full(n_queries, inv_sqrt_q**2)]),
            )
        if kind == "mean":
            return EdgeView(src, dst, num_local, weight=np.full(base, 1.0 / k))
        if kind == "mean_loops":
            return EdgeView(
                np.concatenate([src, loops]),
                np.concatenate([dst, loops]),
                num_local,
                weight=np.full(base + n_queries, 1.0 / (k + 1.0)),
            )
        if kind == "sum":
            return EdgeView(src, dst, num_local)
        if kind == "attention":
            return EdgeView(
                np.concatenate([src, loops]), np.concatenate([dst, loops]), num_local
            )
        raise ValueError(f"unknown edge-view kind {kind!r}; choose from {VIEW_KINDS}")

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        if self.edge_weight is not None:
            g.add_weighted_edges_from(
                zip(self.edge_index[0], self.edge_index[1], self.edge_weight)
            )
        else:
            g.add_edges_from(zip(self.edge_index[0], self.edge_index[1]))
        return g

    @staticmethod
    def from_networkx(
        g: nx.Graph,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> "Graph":
        nodes = sorted(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in g.edges()]
        if not g.is_directed():
            edges += [(v, u) for u, v in edges]
        edge_index = (
            np.array(edges, dtype=np.int64).T if edges else np.zeros((2, 0), np.int64)
        )
        return Graph(len(nodes), edge_index, x=x, y=y)

    def summary(self) -> Dict[str, object]:
        return utils.graph_summary(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, num_features={self.num_features})"
