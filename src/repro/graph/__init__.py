"""Graph data structures for tabular data (survey Sec. 2.2 & 4.1).

Implements every graph formulation the survey catalogues:

* :class:`~repro.graph.homogeneous.Graph` — homogeneous attributed graphs
  (instance graphs and feature graphs, Sec. 4.1.1);
* :class:`~repro.graph.bipartite.BipartiteGraph` — instance-feature bipartite
  graphs (GRAPE/FATE/IGRM style, Sec. 4.1.2);
* :class:`~repro.graph.heterogeneous.HeteroGraph` — general heterogeneous
  graphs with typed nodes and edges (Sec. 4.1.2);
* :class:`~repro.graph.multiplex.MultiplexGraph` — multi-relational layered
  graphs sharing one node set (TabGNN style, Sec. 4.1.2);
* :class:`~repro.graph.hypergraph.Hypergraph` — hypergraphs whose hyperedges
  join any number of tabular elements (HCL/PET/HyTrel style, Sec. 4.1.3).
"""

from repro.graph.homogeneous import EdgeView, Graph
from repro.graph.bipartite import BipartiteGraph
from repro.graph.heterogeneous import HeteroGraph
from repro.graph.multiplex import MultiplexGraph
from repro.graph.hypergraph import Hypergraph
from repro.graph.utils import (
    edge_homophily,
    degree_statistics,
    graph_summary,
    symmetrize_edge_index,
    remove_self_loops,
    coalesce_edge_index,
)

__all__ = [
    "EdgeView",
    "Graph",
    "BipartiteGraph",
    "HeteroGraph",
    "MultiplexGraph",
    "Hypergraph",
    "edge_homophily",
    "degree_statistics",
    "graph_summary",
    "symmetrize_edge_index",
    "remove_self_loops",
    "coalesce_edge_index",
]
