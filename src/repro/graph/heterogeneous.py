"""General heterogeneous graphs with typed nodes and typed edges (Sec. 4.1.2).

The canonical tabular use is *feature values as nodes*: each categorical
value becomes a typed node connected to the instances possessing it (GCT,
HSGNN, xFraud, GraphFC style).  Relational-database rows-as-typed-nodes also
fit this class (GNNDB/RelBench style).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

EdgeType = Tuple[str, str, str]  # (source node type, relation name, destination node type)


class HeteroGraph:
    """A heterogeneous graph: node sets per type, edge indexes per edge type.

    Parameters
    ----------
    node_counts:
        Mapping node-type name → number of nodes of that type.
    """

    def __init__(self, node_counts: Dict[str, int]) -> None:
        if not node_counts:
            raise ValueError("a heterogeneous graph needs at least one node type")
        self.node_counts: Dict[str, int] = {k: int(v) for k, v in node_counts.items()}
        self.edge_indexes: Dict[EdgeType, np.ndarray] = {}
        self.node_features: Dict[str, np.ndarray] = {}
        self.y: Optional[np.ndarray] = None
        self.target_type: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def node_types(self) -> List[str]:
        return list(self.node_counts)

    @property
    def edge_types(self) -> List[EdgeType]:
        return list(self.edge_indexes)

    @property
    def num_nodes_total(self) -> int:
        return sum(self.node_counts.values())

    def num_edges(self, edge_type: Optional[EdgeType] = None) -> int:
        if edge_type is not None:
            return int(self.edge_indexes[edge_type].shape[1])
        return int(sum(e.shape[1] for e in self.edge_indexes.values()))

    # ------------------------------------------------------------------
    def add_edges(self, edge_type: EdgeType, edge_index: np.ndarray) -> None:
        """Register edges of a given (src_type, relation, dst_type)."""
        src_type, _, dst_type = edge_type
        for t in (src_type, dst_type):
            if t not in self.node_counts:
                raise KeyError(f"unknown node type {t!r}")
        edge_index = np.asarray(edge_index, dtype=np.int64)
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, E)")
        if edge_index.size:
            if edge_index[0].max() >= self.node_counts[src_type] or edge_index[0].min() < 0:
                raise ValueError(f"source ids out of range for type {src_type!r}")
            if edge_index[1].max() >= self.node_counts[dst_type] or edge_index[1].min() < 0:
                raise ValueError(f"destination ids out of range for type {dst_type!r}")
        if edge_type in self.edge_indexes:
            edge_index = np.concatenate([self.edge_indexes[edge_type], edge_index], axis=1)
        self.edge_indexes[edge_type] = edge_index

    def set_features(self, node_type: str, x: np.ndarray) -> None:
        if node_type not in self.node_counts:
            raise KeyError(f"unknown node type {node_type!r}")
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.node_counts[node_type]:
            raise ValueError(
                f"features for {node_type!r} must have {self.node_counts[node_type]} rows"
            )
        self.node_features[node_type] = x

    def set_labels(self, node_type: str, y: np.ndarray) -> None:
        if node_type not in self.node_counts:
            raise KeyError(f"unknown node type {node_type!r}")
        y = np.asarray(y)
        if y.shape[0] != self.node_counts[node_type]:
            raise ValueError("labels must cover every node of the target type")
        self.y = y
        self.target_type = node_type

    # ------------------------------------------------------------------
    def mean_operator(self, edge_type: EdgeType) -> sp.csr_matrix:
        """Row-normalized (dst × src) aggregation operator for one edge type."""
        src_type, _, dst_type = edge_type
        edge_index = self.edge_indexes[edge_type]
        matrix = sp.csr_matrix(
            (np.ones(edge_index.shape[1]), (edge_index[1], edge_index[0])),
            shape=(self.node_counts[dst_type], self.node_counts[src_type]),
        )
        degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
        from repro.graph.utils import safe_reciprocal

        return (sp.diags(safe_reciprocal(degrees)) @ matrix).tocsr()

    def reverse(self, edge_type: EdgeType) -> EdgeType:
        """The canonical reversed edge type."""
        src, rel, dst = edge_type
        return (dst, f"rev_{rel}", src)

    def add_reverse_edges(self) -> None:
        """Add a reversed copy of every edge type (for bidirectional message flow)."""
        for edge_type in list(self.edge_indexes):
            rev_type = self.reverse(edge_type)
            if rev_type not in self.edge_indexes:
                self.edge_indexes[rev_type] = self.edge_indexes[edge_type][::-1].copy()

    # ------------------------------------------------------------------
    def state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """(arrays, json-safe meta) pair for artifact serialization.

        Edge types are flattened to ``src|rel|dst`` keys; the meta block
        records node counts, the key order (dict order is semantic for
        rebuilt models — layer parameters are matched positionally), the
        target type, and which node types carry explicit features.
        """
        arrays: Dict[str, np.ndarray] = {}
        for i, (edge_type, edge_index) in enumerate(self.edge_indexes.items()):
            arrays[f"edges::{i}"] = edge_index
        for node_type, x in self.node_features.items():
            arrays[f"features::{node_type}"] = x
        meta = {
            "node_types": list(self.node_counts),
            "node_counts": [int(self.node_counts[t]) for t in self.node_counts],
            "edge_types": ["|".join(et) for et in self.edge_indexes],
            "feature_types": list(self.node_features),
            "target_type": self.target_type,
        }
        return arrays, meta

    @classmethod
    def from_state(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> "HeteroGraph":
        """Rebuild a graph saved by :meth:`state` (labels are not restored)."""
        graph = cls(dict(zip(meta["node_types"], meta["node_counts"])))
        for i, key in enumerate(meta["edge_types"]):
            src, rel, dst = str(key).split("|")
            graph.add_edges((src, rel, dst), arrays[f"edges::{i}"])
        for node_type in meta["feature_types"]:
            graph.set_features(str(node_type), arrays[f"features::{node_type}"])
        if meta.get("target_type"):
            graph.target_type = str(meta["target_type"])
        return graph

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"HeteroGraph(node_types={self.node_counts}, "
            f"edge_types={[et[1] for et in self.edge_types]})"
        )
