"""Multiplex / multi-relational graphs (survey Sec. 4.1.2, TabGNN [51]).

All layers share one node set (the data instances); each layer is a
homogeneous graph built from one relation — typically "shares the value of
categorical feature f" (the Same-Feature-Value rule of Sec. 4.2.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.graph.homogeneous import Graph


class MultiplexGraph:
    """A layered graph: one homogeneous layer per relation, shared nodes.

    Parameters
    ----------
    num_nodes:
        Size of the shared node set.
    x, y:
        Shared node features / labels (layers carry structure only).
    """

    def __init__(
        self,
        num_nodes: int,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> None:
        self.num_nodes = int(num_nodes)
        self.x = None if x is None else np.asarray(x, dtype=np.float64)
        if self.x is not None and self.x.shape[0] != num_nodes:
            raise ValueError("x must have one row per node")
        self.y = None if y is None else np.asarray(y)
        if self.y is not None and self.y.shape[0] != num_nodes:
            raise ValueError("y must have one entry per node")
        self._layers: Dict[str, Graph] = {}

    # ------------------------------------------------------------------
    @property
    def relations(self) -> List[str]:
        return list(self._layers)

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def add_layer(self, relation: str, edge_index: np.ndarray,
                  edge_weight: Optional[np.ndarray] = None) -> None:
        """Add one relation layer; node features/labels are shared."""
        if relation in self._layers:
            raise KeyError(f"relation {relation!r} already exists")
        self._layers[relation] = Graph(
            self.num_nodes, edge_index, x=self.x, y=self.y, edge_weight=edge_weight
        )

    def layer(self, relation: str) -> Graph:
        return self._layers[relation]

    @classmethod
    def from_layers(
        cls,
        num_nodes: int,
        layers: Dict[str, np.ndarray],
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> "MultiplexGraph":
        """Rebuild a multiplex graph from per-relation edge indexes.

        The inverse of iterating ``relations`` / ``layer(r).edge_index`` —
        used by serving artifacts to rehydrate the frozen training-pool
        graph from flat arrays.  Insertion order of ``layers`` is preserved.
        """
        graph = cls(num_nodes, x=x, y=y)
        for relation, edge_index in layers.items():
            graph.add_layer(relation, np.asarray(edge_index, dtype=np.int64))
        return graph

    def layers(self) -> List[Graph]:
        return list(self._layers.values())

    def flatten(self) -> Graph:
        """Merge all layers into a single multi-relational homogeneous graph.

        This is the "multi-relational graph" variant the survey contrasts
        with the layered multiplex view: all relations in one structure.
        """
        if not self._layers:
            return Graph(self.num_nodes, np.zeros((2, 0), dtype=np.int64), x=self.x, y=self.y)
        edge_index = np.concatenate([g.edge_index for g in self._layers.values()], axis=1)
        merged = Graph(self.num_nodes, edge_index, x=self.x, y=self.y)
        coalesced = merged.symmetrize()
        return coalesced

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MultiplexGraph(num_nodes={self.num_nodes}, relations={self.relations})"
        )
