"""Bipartite instance-feature graphs (survey Sec. 4.1.2, GRAPE [157]).

Rows become *instance nodes*, columns become *feature nodes*, and each
observed cell ``(i, j)`` becomes an edge whose weight carries the feature
value.  Missing cells simply have no edge — the formulation's native way of
handling missing data (advantage (d) in the survey) — and imputation becomes
edge-value prediction (advantage (e)).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp


class BipartiteGraph:
    """Instance-feature bipartite graph with feature values as edge weights.

    Parameters
    ----------
    num_instances, num_features:
        Sizes of the two node sets.
    edge_instance, edge_feature:
        Parallel ``(E,)`` arrays: edge ``k`` joins instance ``edge_instance[k]``
        to feature ``edge_feature[k]``.
    edge_value:
        ``(E,)`` observed cell values (normalized features).
    y:
        Optional instance labels.
    """

    def __init__(
        self,
        num_instances: int,
        num_features: int,
        edge_instance: np.ndarray,
        edge_feature: np.ndarray,
        edge_value: np.ndarray,
        y: Optional[np.ndarray] = None,
    ) -> None:
        self.num_instances = int(num_instances)
        self.num_features = int(num_features)
        self.edge_instance = np.asarray(edge_instance, dtype=np.int64)
        self.edge_feature = np.asarray(edge_feature, dtype=np.int64)
        self.edge_value = np.asarray(edge_value, dtype=np.float64)
        if not (
            self.edge_instance.shape
            == self.edge_feature.shape
            == self.edge_value.shape
        ):
            raise ValueError("edge arrays must have identical shapes")
        if self.edge_instance.size:
            if self.edge_instance.min() < 0 or self.edge_instance.max() >= num_instances:
                raise ValueError("edge_instance out of range")
            if self.edge_feature.min() < 0 or self.edge_feature.max() >= num_features:
                raise ValueError("edge_feature out of range")
        self.y = None if y is None else np.asarray(y)
        if self.y is not None and self.y.shape[0] != num_instances:
            raise ValueError("y must have one entry per instance")

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.edge_instance.shape[0])

    @classmethod
    def from_table(
        cls,
        values: np.ndarray,
        observed_mask: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
    ) -> "BipartiteGraph":
        """Build from a (possibly incomplete) numeric table.

        ``observed_mask[i, j] == False`` (or a NaN in ``values``) means the
        cell is missing and no edge is created.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("values must be a 2-D table")
        if observed_mask is None:
            observed_mask = ~np.isnan(values)
        observed_mask = np.asarray(observed_mask, dtype=bool)
        if observed_mask.shape != values.shape:
            raise ValueError("observed_mask must match values shape")
        rows, cols = np.nonzero(observed_mask)
        return cls(
            num_instances=values.shape[0],
            num_features=values.shape[1],
            edge_instance=rows,
            edge_feature=cols,
            edge_value=values[rows, cols],
            y=y,
        )

    # ------------------------------------------------------------------
    def incidence(self, normalize: bool = True) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
        """Return (instance←feature, feature←instance) aggregation operators.

        Both are row-normalized when ``normalize`` so each aggregation is a
        mean over observed neighbors.
        """
        inst_from_feat = sp.csr_matrix(
            (np.ones(self.num_edges), (self.edge_instance, self.edge_feature)),
            shape=(self.num_instances, self.num_features),
        )
        feat_from_inst = inst_from_feat.T.tocsr()
        if normalize:
            inst_from_feat = _row_normalize(inst_from_feat)
            feat_from_inst = _row_normalize(feat_from_inst)
        return inst_from_feat, feat_from_inst

    def observed_matrix(self) -> np.ndarray:
        """Dense table with NaN for unobserved cells."""
        table = np.full((self.num_instances, self.num_features), np.nan)
        table[self.edge_instance, self.edge_feature] = self.edge_value
        return table

    def observed_mask(self) -> np.ndarray:
        mask = np.zeros((self.num_instances, self.num_features), dtype=bool)
        mask[self.edge_instance, self.edge_feature] = True
        return mask

    def split_edges(
        self, holdout_fraction: float, rng: np.random.Generator
    ) -> Tuple["BipartiteGraph", Dict[str, np.ndarray]]:
        """Hold out a fraction of edges (cells) for imputation evaluation.

        Returns the graph without the held-out edges, plus the held-out
        (instance, feature, value) triples.
        """
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        n_hold = max(1, int(round(self.num_edges * holdout_fraction)))
        perm = rng.permutation(self.num_edges)
        hold, keep = perm[:n_hold], perm[n_hold:]
        train_graph = BipartiteGraph(
            self.num_instances,
            self.num_features,
            self.edge_instance[keep],
            self.edge_feature[keep],
            self.edge_value[keep],
            y=self.y,
        )
        heldout = {
            "instance": self.edge_instance[hold],
            "feature": self.edge_feature[hold],
            "value": self.edge_value[hold],
        }
        return train_graph, heldout

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BipartiteGraph(instances={self.num_instances}, "
            f"features={self.num_features}, edges={self.num_edges})"
        )


def _row_normalize(matrix: sp.csr_matrix) -> sp.csr_matrix:
    degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
    from repro.graph.utils import safe_reciprocal

    return (sp.diags(safe_reciprocal(degrees)) @ matrix).tocsr()
