"""The GNN4TDL pipeline of Figure 1, end to end.

``run_pipeline`` executes the survey's four phases on a
:class:`~repro.datasets.TabularDataset`:

1. **Graph Formulation** — choose what becomes a node;
2. **Graph Construction** — create the edges;
3. **Representation Learning** — run a GNN;
4. **Training Plans** — main task (+ optional auxiliary task), strategy,
   prediction layer.

It returns per-phase timing and test metrics, which is exactly what the
Figure 1 benchmark prints — plus, for the row-wise formulations, a
:class:`PipelineState` bundling the fitted model, frozen preprocessing and
graph-construction state so the run can be exported as a
:class:`repro.serving.ModelArtifact` and serve unseen rows inductively.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional

import numpy as np

from repro import nn
from repro.construction.rules import knn_graph
from repro.datasets.preprocessing import TabularPreprocessor, train_val_test_masks
from repro.datasets.tabular import TabularDataset
from repro.gnn.networks import build_network
from repro.graph.homogeneous import Graph
from repro.metrics import accuracy, macro_f1
from repro.models import (
    FeatureGraphClassifier,
    HeteroTabClassifier,
    HypergraphClassifier,
    TabGNN,
)
from repro.construction.intrinsic import multiplex_from_dataset
from repro.tensor import Tensor, ops
from repro.training.tasks import DenoisingAutoencoderTask
from repro.training.trainer import Trainer

FORMULATIONS = ("instance", "feature", "multiplex", "hetero", "hypergraph")

#: Formulations whose fitted state can be exported as a serving artifact.
#: The row-wise formulations support inductive inference (new rows link into
#: the frozen pool via retrieval, survey Sec. 4.2.4); the node-heterogeneous
#: formulations are bound to the training table's value nodes.
SERVABLE_FORMULATIONS = ("instance", "feature")


def _field_matrix(
    dataset: TabularDataset,
    preprocessor: Optional[TabularPreprocessor] = None,
) -> np.ndarray:
    """One standardized column per original field (numerical + ordinal codes).

    When ``preprocessor`` is omitted a fields-mode
    :class:`~repro.datasets.TabularPreprocessor` is fit on ``dataset`` itself
    (the historical transductive behavior).  Passing a fitted preprocessor
    reuses its frozen statistics instead of refitting on every call — the
    train/serve-parity path used by ``run_pipeline`` and the serving engine.
    """
    if preprocessor is None:
        preprocessor = TabularPreprocessor(mode="fields").fit(dataset)
    return preprocessor.transform_dataset(dataset)


@dataclasses.dataclass
class PipelineState:
    """Everything a trained run needs to keep predicting after training.

    ``run_pipeline`` attaches one of these to its result so callers can
    (a) recompute transductive predictions without retraining and
    (b) export the run as a :class:`repro.serving.ModelArtifact` for
    inductive serving of rows the training graph never contained.
    """

    formulation: str
    network: str
    model: nn.Module
    preprocessor: Optional[TabularPreprocessor]
    features: Optional[np.ndarray]
    config: Dict[str, object]
    graph: Optional[Graph] = None

    def logits(self) -> np.ndarray:
        """Transductive logits over the training table (eval mode)."""
        self.model.eval()
        if self.formulation == "feature":
            return self.model(self.features).data
        return self.model().data

    def predictions(self) -> np.ndarray:
        return self.logits().argmax(axis=1)

    def export_artifact(self) -> "object":
        """Bundle this run into a :class:`repro.serving.ModelArtifact`."""
        from repro.serving.artifact import ModelArtifact

        if self.formulation not in SERVABLE_FORMULATIONS:
            raise NotImplementedError(
                f"formulation {self.formulation!r} binds the model to the "
                f"training table's value nodes and cannot serve unseen rows; "
                f"export one of {SERVABLE_FORMULATIONS}"
            )
        return ModelArtifact.from_pipeline_state(self)


@dataclasses.dataclass
class PipelineResult:
    formulation: str
    network: str
    test_accuracy: float
    test_macro_f1: float
    phase_seconds: Dict[str, float]
    num_parameters: int
    state: Optional[PipelineState] = None

    def as_row(self) -> str:
        timings = ", ".join(f"{k}={v:.2f}s" for k, v in self.phase_seconds.items())
        return (
            f"{self.formulation:<10} {self.network:<8} "
            f"acc={self.test_accuracy:.3f} f1={self.test_macro_f1:.3f}  ({timings})"
        )

    def export_artifact(self) -> "object":
        if self.state is None:
            raise RuntimeError("this result carries no fitted state to export")
        return self.state.export_artifact()


def run_pipeline(
    dataset: TabularDataset,
    formulation: str = "instance",
    network: str = "gcn",
    hidden_dim: int = 32,
    k: int = 10,
    max_epochs: int = 150,
    with_auxiliary: bool = False,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    seed: int = 0,
) -> PipelineResult:
    """Execute formulation → construction → representation → training.

    ``train_fraction`` controls the semi-supervised regime: the graph always
    spans every row, but only that fraction of labels is used for the loss
    (survey Sec. 2.5d) — the rest supply structure only.
    """
    if formulation not in FORMULATIONS:
        raise ValueError(f"formulation must be one of {FORMULATIONS}")
    if dataset.task == "regression":
        raise ValueError("run_pipeline currently supports classification tasks")
    rng = np.random.default_rng(seed)
    y = dataset.y
    out_dim = dataset.num_classes
    train_mask, val_mask, test_mask = train_val_test_masks(
        dataset.num_instances, train_fraction, val_fraction, rng, stratify=y
    )
    timings: Dict[str, float] = {}

    # --- Phases 1+2: formulation & construction -------------------------
    start = time.perf_counter()
    aux_task = None
    preprocessor: Optional[TabularPreprocessor] = None
    graph: Optional[Graph] = None
    x = x_fields = None
    # These also land in PipelineState.config: the serving engine must
    # reconstruct graphs/models with exactly the values used here.
    metric = "euclidean"
    num_layers = 2
    embed_dim = hidden_dim // 2
    if formulation == "instance":
        # Standardization statistics are fit once on the training split and
        # frozen (train/serve parity): the same transform the serving engine
        # later applies to unseen rows produced these node features.
        preprocessor = TabularPreprocessor(mode="onehot").fit(
            dataset, row_mask=train_mask
        )
        x = preprocessor.transform_dataset(dataset)
        graph = knn_graph(x, k=k, metric=metric, y=y)
        model = build_network(
            network, graph, hidden_dim, out_dim, rng, num_layers=num_layers
        )
        forward = model
    elif formulation == "feature":
        # Feature-graph methods tokenize *fields* (one node per original
        # column, Fi-GNN/T2G-Former style), not one-hot indicator columns.
        preprocessor = TabularPreprocessor(mode="fields").fit(
            dataset, row_mask=train_mask
        )
        x_fields = _field_matrix(dataset, preprocessor)
        model = FeatureGraphClassifier(
            x_fields.shape[1], out_dim, rng, embed_dim=embed_dim
        )
        forward = lambda: model(x_fields)  # noqa: E731 - tiny pipeline closures
    elif formulation == "multiplex":
        graph = multiplex_from_dataset(dataset, include_numerical_bins=True)
        model = TabGNN(graph, hidden_dim, out_dim, rng)
        forward = model
    elif formulation == "hetero":
        model = HeteroTabClassifier(
            dataset, rng, hidden_dim=hidden_dim, include_numerical_bins=True
        )
        forward = model
    else:  # hypergraph
        model = HypergraphClassifier(dataset, rng, hidden_dim=hidden_dim)
        forward = model
    timings["construction"] = time.perf_counter() - start

    # --- Phase 4 (wrapping phase 3): training plan -----------------------
    if with_auxiliary and formulation == "instance":
        aux_task = DenoisingAutoencoderTask(hidden_dim, x, rng)

    optimizer_params = list(model.parameters())
    if aux_task is not None:
        optimizer_params += list(aux_task.parameters())
    optimizer = nn.Adam(optimizer_params, lr=0.01, weight_decay=5e-4)
    trainer = Trainer(model, optimizer, max_epochs=max_epochs, patience=30)

    # Balanced class weights keep imbalanced tasks (fraud/anomaly) from
    # collapsing to the majority class.
    counts = np.bincount(y[train_mask], minlength=out_dim).astype(np.float64)
    class_weights = counts.sum() / (out_dim * np.maximum(counts, 1.0))

    def loss_fn() -> Tensor:
        loss = nn.cross_entropy(forward(), y, mask=train_mask,
                                class_weights=class_weights)
        if aux_task is not None:
            loss = ops.add(loss, ops.mul(Tensor(0.5), aux_task.loss(model.embed)))
        return loss

    def val_fn() -> float:
        pred = forward().data.argmax(axis=1)
        return accuracy(y[val_mask], pred[val_mask])

    start = time.perf_counter()
    trainer.fit(loss_fn, val_fn)
    timings["training"] = time.perf_counter() - start

    start = time.perf_counter()
    pred = forward().data.argmax(axis=1)
    timings["inference"] = time.perf_counter() - start

    state = PipelineState(
        formulation=formulation,
        network=network,
        model=model,
        preprocessor=preprocessor,
        features=x_fields if formulation == "feature" else x,
        config={
            "hidden_dim": hidden_dim,
            "out_dim": out_dim,
            "k": k,
            "metric": metric,
            "num_layers": num_layers,
            "embed_dim": embed_dim,
            "task": dataset.task,
        },
        graph=graph,
    )
    return PipelineResult(
        formulation=formulation,
        network=network,
        test_accuracy=accuracy(y[test_mask], pred[test_mask]),
        test_macro_f1=macro_f1(y[test_mask], pred[test_mask]),
        phase_seconds=timings,
        num_parameters=model.num_parameters(),
        state=state,
    )
