"""The GNN4TDL pipeline of Figure 1, end to end.

``run_pipeline`` executes the survey's four phases on a
:class:`~repro.datasets.TabularDataset`:

1. **Graph Formulation** — choose what becomes a node;
2. **Graph Construction** — create the edges;
3. **Representation Learning** — run a GNN;
4. **Training Plans** — main task (+ optional auxiliary task), strategy,
   prediction layer.

Phases 1+2 are dispatched through the :mod:`repro.formulations` registry:
the pipeline never branches on the formulation name — it asks the
registered :class:`~repro.formulations.Formulation` to fit, build its
model and expose its transductive forward.  Registering a new formulation
therefore requires no pipeline edits.

It returns per-phase timing and test metrics, which is exactly what the
Figure 1 benchmark prints — plus a :class:`PipelineState` bundling the
trained model with the fitted formulation (frozen preprocessing +
graph-construction state) so any servable run can be exported as a
:class:`repro.serving.ModelArtifact` and serve unseen rows.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro import formulations, nn
from repro.datasets.preprocessing import TabularPreprocessor, train_val_test_masks
from repro.datasets.tabular import TabularDataset
from repro.formulations import FittedFormulation
from repro.metrics import accuracy, macro_f1
from repro.obs import MetricsRegistry
from repro.tensor import Tensor, ops
from repro.training.tasks import DenoisingAutoencoderTask
from repro.training.trainer import Trainer

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.serving.artifact import ModelArtifact

def __getattr__(name: str):
    """``FORMULATIONS`` is the *live* registry listing (PEP 562).

    Registered formulation names, in registry order — formulations added
    after import (plug-ins) appear too.  Servability is a per-formulation
    capability (``formulations.servable()``), not a pipeline-side
    whitelist.
    """
    if name == "FORMULATIONS":
        return formulations.available()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _field_matrix(
    dataset: TabularDataset,
    preprocessor: Optional[TabularPreprocessor] = None,
) -> np.ndarray:
    """One standardized column per original field (numerical + ordinal codes).

    Reference implementation of the feature-graph tokenizer input, kept
    for tests and notebooks: the feature formulation and the serving
    engine call ``TabularPreprocessor.transform`` directly with the same
    frozen statistics.  When ``preprocessor`` is omitted a fields-mode
    preprocessor is fit on ``dataset`` itself (the historical transductive
    behavior); passing a fitted one reuses its frozen statistics.
    """
    if preprocessor is None:
        preprocessor = TabularPreprocessor(mode="fields").fit(dataset)
    return preprocessor.transform_dataset(dataset)


@dataclasses.dataclass
class PipelineState:
    """Everything a trained run needs to keep predicting after training.

    ``run_pipeline`` attaches one of these to its result so callers can
    (a) recompute transductive predictions without retraining and
    (b) export the run as a :class:`repro.serving.ModelArtifact` for
    inductive serving of rows the training graph never contained.
    The formulation-specific pieces (graph, preprocessing, serve payload)
    live on :attr:`fitted`; this class just pairs them with the trained
    model.
    """

    fitted: FittedFormulation
    model: nn.Module
    network: str

    @property
    def formulation(self) -> str:
        return self.fitted.name

    @property
    def preprocessor(self) -> Optional[TabularPreprocessor]:
        return self.fitted.preprocessor

    @property
    def config(self) -> Dict[str, object]:
        return self.fitted.config

    @property
    def graph(self):
        return getattr(self.fitted, "graph", None)

    @property
    def features(self) -> Optional[np.ndarray]:
        return self.fitted.features

    def logits(self) -> np.ndarray:
        """Transductive logits over the training table (eval mode)."""
        return self.fitted.logits(self.model)

    def predictions(self) -> np.ndarray:
        return self.logits().argmax(axis=1)

    def export_artifact(self) -> "ModelArtifact":
        """Bundle this run into a :class:`repro.serving.ModelArtifact`."""
        from repro.serving.artifact import ModelArtifact

        if not self.fitted.servable:
            raise NotImplementedError(
                f"formulation {self.formulation!r} binds the model to the "
                f"training table and cannot serve unseen rows; "
                f"export one of {formulations.servable()}"
            )
        return ModelArtifact.from_pipeline_state(self)


@dataclasses.dataclass
class PipelineResult:
    formulation: str
    network: str
    test_accuracy: float
    test_macro_f1: float
    phase_seconds: Dict[str, float]
    num_parameters: int
    state: Optional[PipelineState] = None

    def as_row(self) -> str:
        timings = ", ".join(f"{k}={v:.2f}s" for k, v in self.phase_seconds.items())
        return (
            f"{self.formulation:<10} {self.network:<8} "
            f"acc={self.test_accuracy:.3f} f1={self.test_macro_f1:.3f}  ({timings})"
        )

    def export_artifact(self) -> "ModelArtifact":
        if self.state is None:
            raise RuntimeError("this result carries no fitted state to export")
        return self.state.export_artifact()


def run_pipeline(
    dataset: TabularDataset,
    formulation: str = "instance",
    network: str = "gcn",
    hidden_dim: int = 32,
    k: int = 10,
    max_epochs: int = 150,
    with_auxiliary: bool = False,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> PipelineResult:
    """Execute formulation → construction → representation → training.

    ``train_fraction`` controls the semi-supervised regime: the graph always
    spans every row, but only that fraction of labels is used for the loss
    (survey Sec. 2.5d) — the rest supply structure only.

    ``registry`` (a :class:`repro.obs.MetricsRegistry`) opts the run into
    observability: the trainer reports per-epoch loss/val-score/duration
    metrics into it, and each phase's wall-clock lands in a
    ``repro_pipeline_phase_seconds{phase=...}`` gauge.
    """
    formulation_impl = formulations.get(formulation)  # raises with choices
    if dataset.task == "regression":
        raise ValueError("run_pipeline currently supports classification tasks")
    rng = np.random.default_rng(seed)
    y = dataset.y
    out_dim = dataset.num_classes
    train_mask, val_mask, test_mask = train_val_test_masks(
        dataset.num_instances, train_fraction, val_fraction, rng, stratify=y
    )
    timings: Dict[str, float] = {}

    # These land in the fitted formulation's config (and hence the serving
    # artifact): the engine must reconstruct graphs/models with exactly the
    # values used here.
    config: Dict[str, object] = {
        "network": network,
        "hidden_dim": hidden_dim,
        "out_dim": out_dim,
        "k": k,
        "metric": "euclidean",
        "num_layers": 2,
        "embed_dim": hidden_dim // 2,
        "task": dataset.task,
    }

    # --- Phases 1+2: formulation & construction -------------------------
    start = time.perf_counter()
    fitted = formulation_impl.fit(dataset, train_mask, config)
    model = fitted.build_model(rng)
    forward = fitted.forward_fn(model)
    timings["construction"] = time.perf_counter() - start

    # --- Phase 4 (wrapping phase 3): training plan -----------------------
    aux_task = None
    if with_auxiliary and fitted.aux_features is not None:
        aux_task = DenoisingAutoencoderTask(hidden_dim, fitted.aux_features, rng)

    optimizer_params = list(model.parameters())
    if aux_task is not None:
        optimizer_params += list(aux_task.parameters())
    optimizer = nn.Adam(optimizer_params, lr=0.01, weight_decay=5e-4)
    trainer = Trainer(model, optimizer, max_epochs=max_epochs, patience=30,
                      registry=registry)

    # Balanced class weights keep imbalanced tasks (fraud/anomaly) from
    # collapsing to the majority class.
    counts = np.bincount(y[train_mask], minlength=out_dim).astype(np.float64)
    class_weights = counts.sum() / (out_dim * np.maximum(counts, 1.0))

    def loss_fn() -> Tensor:
        loss = nn.cross_entropy(forward(), y, mask=train_mask,
                                class_weights=class_weights)
        if aux_task is not None:
            loss = ops.add(loss, ops.mul(Tensor(0.5), aux_task.loss(model.embed)))
        return loss

    def val_fn() -> float:
        pred = forward().data.argmax(axis=1)
        return accuracy(y[val_mask], pred[val_mask])

    start = time.perf_counter()
    trainer.fit(loss_fn, val_fn)
    timings["training"] = time.perf_counter() - start

    start = time.perf_counter()
    pred = forward().data.argmax(axis=1)
    timings["inference"] = time.perf_counter() - start

    if registry is not None:
        phase_gauge = registry.gauge(
            "repro_pipeline_phase_seconds",
            "Wall-clock seconds spent in each pipeline phase.",
            labelnames=("phase",),
        )
        for phase, seconds in timings.items():
            phase_gauge.labels(phase=phase).set(seconds)

    return PipelineResult(
        formulation=formulation,
        network=network,
        test_accuracy=accuracy(y[test_mask], pred[test_mask]),
        test_macro_f1=macro_f1(y[test_mask], pred[test_mask]),
        phase_seconds=timings,
        num_parameters=model.num_parameters(),
        state=PipelineState(fitted=fitted, model=model, network=network),
    )
