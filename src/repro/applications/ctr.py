"""Click-through-rate prediction (survey Sec. 5.2).

Fi-GNN's structural feature-interaction modelling versus the conventional
CTR stack: logistic regression over one-hot fields (no interactions) and an
MLP over one-hot fields (implicit interactions).  On latent-factor CTR data
the signal lives in user×item interactions, so the expected ranking is
Fi-GNN > MLP > logistic (the survey's Sec. 2.5b claim).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro import nn
from repro.baselines import LogisticRegressionClassifier, MLPClassifier
from repro.datasets.preprocessing import train_val_test_masks
from repro.datasets.tabular import TabularDataset
from repro.metrics import log_loss, roc_auc
from repro.models import FiGNN
from repro.training.trainer import Trainer


def train_fignn(
    dataset: TabularDataset,
    train_mask: np.ndarray,
    val_mask: np.ndarray,
    embed_dim: int = 16,
    epochs: int = 150,
    seed: int = 0,
) -> FiGNN:
    rng = np.random.default_rng(seed)
    model = FiGNN(
        dataset.cardinalities,
        embed_dim,
        rng,
        num_numerical=dataset.num_numerical,
    )
    optimizer = nn.Adam(model.parameters(), lr=0.01, weight_decay=1e-5)
    trainer = Trainer(model, optimizer, max_epochs=epochs, patience=25)
    y = dataset.y

    def loss_fn():
        logits = model(dataset)
        return nn.binary_cross_entropy_with_logits(logits, y, mask=train_mask)

    def val_fn() -> float:
        probs = model.predict_proba(dataset)
        return roc_auc(y[val_mask], probs[val_mask])

    trainer.fit(loss_fn, val_fn)
    return model


def run_ctr_benchmark(
    dataset: TabularDataset,
    seed: int = 0,
    epochs: int = 150,
) -> Dict[str, Dict[str, float]]:
    """AUC / log-loss for logistic, MLP and Fi-GNN on a CTR dataset."""
    if dataset.task != "binary":
        raise ValueError("CTR prediction expects a binary dataset")
    rng = np.random.default_rng(seed)
    y = dataset.y
    train_mask, val_mask, test_mask = train_val_test_masks(
        dataset.num_instances, 0.6, 0.2, rng, stratify=y
    )
    onehot = dataset.to_matrix()

    results: Dict[str, Dict[str, float]] = {}

    logistic = LogisticRegressionClassifier(epochs=300).fit(
        onehot[train_mask], y[train_mask]
    )
    probs = logistic.predict_proba(onehot)[:, 1]
    results["logistic"] = {
        "auc": roc_auc(y[test_mask], probs[test_mask]),
        "logloss": log_loss(y[test_mask], probs[test_mask]),
    }

    mlp = MLPClassifier(hidden_dims=(64, 32), epochs=epochs, seed=seed).fit(
        onehot[train_mask], y[train_mask]
    )
    probs = mlp.predict_proba(onehot)[:, 1]
    results["mlp"] = {
        "auc": roc_auc(y[test_mask], probs[test_mask]),
        "logloss": log_loss(y[test_mask], probs[test_mask]),
    }

    fignn = train_fignn(dataset, train_mask, val_mask, epochs=epochs, seed=seed)
    probs = fignn.predict_proba(dataset)
    results["fignn"] = {
        "auc": roc_auc(y[test_mask], probs[test_mask]),
        "logloss": log_loss(y[test_mask], probs[test_mask]),
    }
    return results


def export_ctr_artifact(
    dataset: TabularDataset,
    path: Optional[str] = None,
    epochs: int = 120,
    seed: int = 0,
):
    """Train a servable CTR scorer and export it as a model artifact.

    Uses the feature-graph formulation (Fi-GNN style field interactions),
    which is row-wise and therefore serves unseen impressions without a
    training pool.  Returns the :class:`repro.serving.ModelArtifact`; also
    saves it when ``path`` is given.
    """
    from repro.pipeline import run_pipeline

    if dataset.task != "binary":
        raise ValueError("CTR prediction expects a binary dataset")
    result = run_pipeline(
        dataset, formulation="feature", max_epochs=epochs, seed=seed
    )
    artifact = result.export_artifact()
    artifact.metadata["application"] = "ctr"
    artifact.metadata["test_accuracy"] = result.test_accuracy
    if path is not None:
        artifact.save(path)
    return artifact
