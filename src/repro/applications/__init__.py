"""Application pipelines from survey Sec. 5.

Each module wires generators, construction, models and baselines into one
callable returning a method → metrics dict:

* :mod:`repro.applications.anomaly` — anomaly detection (Sec. 5.1);
* :mod:`repro.applications.ctr` — click-through-rate prediction (Sec. 5.2);
* :mod:`repro.applications.medical` — EHR risk prediction (Sec. 5.3);
* :mod:`repro.applications.imputation` — missing-data imputation (Sec. 5.4);
* :mod:`repro.applications.fraud` — fraud detection on multi-relational
  graphs (Sec. 5.1/5.5).

The fraud and CTR applications additionally expose ``export_*_artifact``
helpers that train a servable model and hand back a
:class:`repro.serving.ModelArtifact` ready for the prediction server.
"""

from repro.applications.anomaly import run_anomaly_detection
from repro.applications.ctr import export_ctr_artifact, run_ctr_benchmark
from repro.applications.medical import run_ehr_benchmark
from repro.applications.imputation import run_imputation_benchmark
from repro.applications.fraud import export_fraud_artifact, run_fraud_benchmark

__all__ = [
    "run_anomaly_detection",
    "run_ctr_benchmark",
    "run_ehr_benchmark",
    "run_imputation_benchmark",
    "run_fraud_benchmark",
    "export_ctr_artifact",
    "export_fraud_artifact",
]
