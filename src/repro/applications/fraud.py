"""Fraud detection on multi-relational graphs (survey Sec. 5.1 & 5.5).

Fraudsters form rings sharing devices and merchants; relations are built by
the same-feature-value rule per categorical column (the CARE-GNN/TabGNN
formulation).  Class-weighted losses handle the heavy imbalance (the
pick-and-choose concern of PC-GNN).  Compares:

* **MLP** — flat features, no relations;
* **TabGNN (attention fusion)** — multiplex relations with attention;
* **TabGNN (mean fusion)** — the fusion ablation arm;
* **flattened GCN** — all relations merged into one homogeneous graph.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro import nn
from repro.baselines import MLPClassifier
from repro.construction.intrinsic import multiplex_from_dataset
from repro.datasets.preprocessing import train_val_test_masks
from repro.datasets.tabular import TabularDataset
from repro.gnn.networks import GCN
from repro.metrics import average_precision, precision_recall_f1, roc_auc
from repro.models import TabGNN
from repro.training.trainer import Trainer


def _class_weights(y: np.ndarray) -> np.ndarray:
    counts = np.bincount(y, minlength=2).astype(np.float64)
    weights = counts.sum() / np.maximum(counts, 1.0) / 2.0
    return weights


def _fit(model, y, train_mask, val_mask, epochs, weights):
    optimizer = nn.Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
    trainer = Trainer(model, optimizer, max_epochs=epochs, patience=25)

    def loss_fn():
        return nn.cross_entropy(model(), y, mask=train_mask, class_weights=weights)

    def val_fn() -> float:
        scores = model().data
        probs = scores[:, 1] - scores[:, 0]
        return roc_auc(y[val_mask], probs[val_mask])

    trainer.fit(loss_fn, val_fn)


def run_fraud_benchmark(
    dataset: TabularDataset,
    seed: int = 0,
    epochs: int = 150,
) -> Dict[str, Dict[str, float]]:
    """AUC / AP / F1 of relation-aware models vs the flat baseline."""
    if dataset.task != "binary":
        raise ValueError("fraud detection expects a binary dataset")
    rng = np.random.default_rng(seed)
    y = dataset.y
    train_mask, val_mask, test_mask = train_val_test_masks(
        dataset.num_instances, 0.6, 0.2, rng, stratify=y
    )
    weights = _class_weights(y[train_mask])
    x = dataset.to_matrix()
    results: Dict[str, Dict[str, float]] = {}

    def evaluate(scores: np.ndarray, preds: np.ndarray) -> Dict[str, float]:
        metrics = {
            "auc": roc_auc(y[test_mask], scores[test_mask]),
            "ap": average_precision(y[test_mask], scores[test_mask]),
        }
        metrics.update(
            {"f1": precision_recall_f1(y[test_mask], preds[test_mask])["f1"]}
        )
        return metrics

    mlp = MLPClassifier(hidden_dims=(64,), epochs=epochs, seed=seed).fit(
        x[train_mask], y[train_mask]
    )
    probs = mlp.predict_proba(x)[:, 1]
    results["mlp"] = evaluate(probs, (probs > 0.5).astype(int))

    multiplex = multiplex_from_dataset(dataset)
    for fusion in ("attention", "mean"):
        model = TabGNN(multiplex, 32, 2, np.random.default_rng(seed), fusion=fusion)
        _fit(model, y, train_mask, val_mask, epochs, weights)
        logits = model().data
        scores = logits[:, 1] - logits[:, 0]
        results[f"tabgnn_{fusion}"] = evaluate(scores, logits.argmax(axis=1))

    flat = multiplex.flatten()
    flat.x = x
    gcn = GCN(flat, (32,), 2, np.random.default_rng(seed))
    _fit(gcn, y, train_mask, val_mask, epochs, weights)
    logits = gcn().data
    scores = logits[:, 1] - logits[:, 0]
    results["flattened_gcn"] = evaluate(scores, logits.argmax(axis=1))
    return results


def export_fraud_artifact(
    dataset: TabularDataset,
    path: Optional[str] = None,
    network: str = "gcn",
    epochs: int = 120,
    seed: int = 0,
):
    """Train a servable fraud scorer and export it as a model artifact.

    The multi-relational TabGNN above is transductive (its relation graphs
    are bound to the training table), so the deployment path trains the
    instance-graph pipeline instead: incoming transactions link into the
    frozen training pool by retrieval and are scored inductively.  Returns
    the :class:`repro.serving.ModelArtifact`; also saves it when ``path``
    is given.
    """
    from repro.pipeline import run_pipeline

    if dataset.task != "binary":
        raise ValueError("fraud detection expects a binary dataset")
    result = run_pipeline(
        dataset, formulation="instance", network=network,
        max_epochs=epochs, seed=seed,
    )
    artifact = result.export_artifact()
    artifact.metadata["application"] = "fraud"
    artifact.metadata["test_auc_proxy_accuracy"] = result.test_accuracy
    if path is not None:
        artifact.save(path)
    return artifact
