"""Anomaly detection on tabular data (survey Sec. 5.1).

Compares the survey's GNN-based detectors against their classical
ancestors on the same data:

* **LUNAR** — learned kNN-distance message passing;
* **kNN distance** — the non-learned mean-kNN-distance detector LUNAR
  generalizes (its ablation);
* **GAE** — graph-autoencoder reconstruction error (MST-GRA/GAEOD family);
* **z-score** — structure-blind per-feature deviation baseline.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.construction.rules import knn_graph
from repro.datasets.tabular import TabularDataset
from repro.gnn.autoencoder import GraphAutoencoder
from repro import nn
from repro.metrics import average_precision, precision_at_k, roc_auc
from repro.tensor import Tensor


def zscore_scores(x: np.ndarray) -> np.ndarray:
    """Mean absolute z-score per row — no structure, pure marginals."""
    mean = x.mean(axis=0)
    std = np.where(x.std(axis=0) > 0, x.std(axis=0), 1.0)
    return np.abs((x - mean) / std).mean(axis=1)


def gae_scores(
    x: np.ndarray, k: int = 10, epochs: int = 120, seed: int = 0
) -> np.ndarray:
    """Graph-autoencoder reconstruction error on the kNN graph."""
    rng = np.random.default_rng(seed)
    graph = knn_graph(x, k=k)
    adjacency = graph.gcn_adjacency()
    model = GraphAutoencoder(x.shape[1], (32,), 16, rng)
    optimizer = nn.Adam(model.parameters(), lr=0.01)
    features = Tensor(x)
    for _ in range(epochs):
        model.train()
        loss = model.reconstruction_loss(features, adjacency, graph.edge_index, rng)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    model.eval()
    return model.anomaly_scores(features, adjacency)


def run_anomaly_detection(
    dataset: TabularDataset,
    k: int = 10,
    seed: int = 0,
    epochs: int = 120,
) -> Dict[str, Dict[str, float]]:
    """Score the dataset with all four detectors; returns metrics per method."""
    from repro.models import LUNAR  # local import avoids a cycle at package init

    if dataset.task != "binary":
        raise ValueError("anomaly detection expects a binary dataset (1 = anomaly)")
    x = dataset.to_matrix()
    y = dataset.y
    n_anomalies = int(y.sum())
    if n_anomalies == 0:
        raise ValueError("dataset contains no anomalies")

    lunar = LUNAR(k=k, seed=seed, epochs=epochs).fit(x)
    methods = {
        "lunar": lunar.score(),
        "knn_distance": lunar.baseline_knn_score(),
        "gae": gae_scores(x, k=k, epochs=epochs, seed=seed),
        "zscore": zscore_scores(x),
    }
    results: Dict[str, Dict[str, float]] = {}
    for name, scores in methods.items():
        results[name] = {
            "auc": roc_auc(y, scores),
            "ap": average_precision(y, scores),
            "p_at_k": precision_at_k(y, scores, k=n_anomalies),
        }
    return results
