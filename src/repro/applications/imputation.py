"""Missing-data imputation (survey Sec. 5.4).

GRAPE-style bipartite edge-value prediction versus classical imputers
(mean / median / kNN / iterative ridge) under MCAR, MAR and MNAR
missingness.  The harness starts from a *complete* table, injects
missingness with a chosen mechanism, imputes with each method, and reports
RMSE against the ground truth at exactly the injected cells.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro import nn
from repro.baselines import IterativeImputer, KNNImputer, MeanImputer, MedianImputer
from repro.datasets.missing import inject_missing
from repro.datasets.preprocessing import StandardScaler
from repro.datasets.tabular import TabularDataset
from repro.graph.bipartite import BipartiteGraph
from repro.metrics import rmse
from repro.models import GRAPE
from repro.training.trainer import Trainer


def train_grape_imputer(
    graph: BipartiteGraph,
    epochs: int = 300,
    seed: int = 0,
    hidden_dim: int = 64,
    drop_rate: float = 0.3,
    instance_init: str = "features",
) -> GRAPE:
    """Train GRAPE on observed edges with edge-dropout reconstruction.

    Early stopping validates on a fixed held-out edge subset because the
    training loss itself is stochastic (fresh dropout mask per epoch).
    """
    rng = np.random.default_rng(seed)
    model = GRAPE(graph, hidden_dim, out_dim=2, rng=rng, instance_init=instance_init)
    optimizer = nn.Adam(model.parameters(), lr=0.01)
    val_graph, val_edges = graph.split_edges(0.1, np.random.default_rng(seed + 1))
    loss_rng = np.random.default_rng(seed + 2)
    trainer = Trainer(model, optimizer, max_epochs=epochs, patience=40)

    def loss_fn():
        return model.imputation_loss(drop_rate=drop_rate, rng=loss_rng)

    def val_fn() -> float:
        pred = model.predict_edges(
            val_edges["instance"], val_edges["feature"], graph=val_graph
        ).data
        return -float(np.sqrt(np.mean((pred - val_edges["value"]) ** 2)))

    trainer.fit(loss_fn, val_fn)
    return model


def run_imputation_benchmark(
    dataset: TabularDataset,
    rate: float = 0.3,
    mechanism: str = "mcar",
    epochs: int = 300,
    seed: int = 0,
    include_grape_ones: bool = False,
) -> Dict[str, float]:
    """RMSE at injected-missing cells for every imputer (z-scored space).

    ``dataset`` must be complete (no NaN) so injected cells have ground
    truth.  Set ``include_grape_ones=True`` to also run the survey-faithful
    constant-instance-init GRAPE (the ablation arm).
    """
    if dataset.num_numerical == 0:
        raise ValueError("imputation benchmark needs numerical columns")
    if np.isnan(dataset.numerical).any():
        raise ValueError("dataset must be complete before injecting missingness")
    rng = np.random.default_rng(seed)
    missing = inject_missing(dataset, rate, mechanism, rng)
    scaler = StandardScaler()
    table = scaler.fit_transform(missing.numerical)
    truth = scaler.transform(dataset.numerical)
    mask = np.isnan(table)
    if not mask.any():
        raise ValueError("no cells were injected as missing; increase rate")
    rows, cols = np.nonzero(mask)

    results: Dict[str, float] = {}
    for name, imputer in (
        ("mean", MeanImputer()),
        ("median", MedianImputer()),
        ("knn", KNNImputer(k=5)),
        ("iterative", IterativeImputer(max_iter=8)),
    ):
        filled = imputer.fit_transform(table)
        results[name] = rmse(truth[mask], filled[mask])

    graph = BipartiteGraph.from_table(table)
    grape = train_grape_imputer(graph, epochs=epochs, seed=seed)
    results["grape"] = rmse(truth[mask], grape.predict_edges(rows, cols).data)
    if include_grape_ones:
        grape_ones = train_grape_imputer(
            graph, epochs=epochs, seed=seed, instance_init="ones"
        )
        results["grape_ones_init"] = rmse(
            truth[mask], grape_ones.predict_edges(rows, cols).data
        )
    return results
