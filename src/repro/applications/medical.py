"""EHR risk prediction (survey Sec. 5.3).

Patients carry multi-hot diagnosis-code records; the disease label depends
on which code *group* dominates.  Compares:

* **MLP** — flat multi-hot baseline;
* **HeteroTabClassifier** — patient & code nodes (GCT/HSGNN formulation);
* **HypergraphClassifier** — patients as hyperedges over code-value nodes
  (HCL formulation);
* **kNN-graph GCN** — patient-similarity instance graph.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro import nn
from repro.baselines import MLPClassifier
from repro.datasets.preprocessing import train_val_test_masks
from repro.datasets.tabular import TabularDataset
from repro.metrics import accuracy, macro_f1
from repro.models import HeteroTabClassifier, HypergraphClassifier, KNNGraphClassifier
from repro.training.trainer import Trainer


def _train_full_batch(model, y, train_mask, val_mask, epochs, lr=0.01):
    optimizer = nn.Adam(model.parameters(), lr=lr, weight_decay=5e-4)
    trainer = Trainer(model, optimizer, max_epochs=epochs, patience=25)

    def loss_fn():
        return nn.cross_entropy(model(), y, mask=train_mask)

    def val_fn() -> float:
        pred = model().data.argmax(axis=1)
        return accuracy(y[val_mask], pred[val_mask])

    trainer.fit(loss_fn, val_fn)
    return model


def run_ehr_benchmark(
    dataset: TabularDataset,
    seed: int = 0,
    epochs: int = 150,
) -> Dict[str, Dict[str, float]]:
    """Accuracy / macro-F1 of the four formulations on an EHR dataset."""
    rng = np.random.default_rng(seed)
    y = dataset.y
    train_mask, val_mask, test_mask = train_val_test_masks(
        dataset.num_instances, 0.6, 0.2, rng, stratify=y
    )
    x = dataset.to_matrix()
    results: Dict[str, Dict[str, float]] = {}

    def evaluate(pred: np.ndarray) -> Dict[str, float]:
        return {
            "accuracy": accuracy(y[test_mask], pred[test_mask]),
            "macro_f1": macro_f1(y[test_mask], pred[test_mask]),
        }

    mlp = MLPClassifier(hidden_dims=(64,), epochs=epochs, seed=seed).fit(
        x[train_mask], y[train_mask]
    )
    results["mlp"] = evaluate(mlp.predict(x))

    hetero = HeteroTabClassifier(dataset, np.random.default_rng(seed), hidden_dim=32)
    _train_full_batch(hetero, y, train_mask, val_mask, epochs)
    results["hetero_gnn"] = evaluate(hetero().data.argmax(axis=1))

    hyper = HypergraphClassifier(dataset, np.random.default_rng(seed), hidden_dim=32)
    _train_full_batch(hyper, y, train_mask, val_mask, epochs)
    results["hypergraph_gnn"] = evaluate(hyper().data.argmax(axis=1))

    knn = KNNGraphClassifier(k=10, network="gcn", max_epochs=epochs, seed=seed)
    knn.fit(x, y, train_mask=train_mask, val_mask=val_mask)
    results["knn_gcn"] = evaluate(knn.predict())
    return results
