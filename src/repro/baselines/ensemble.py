"""Tree ensembles: random forest and gradient boosting.

Gradient boosting fits regression trees to softmax residuals (one tree per
class per round), the standard multiclass GBDT formulation; random forest
bootstrap-aggregates deep CART trees with feature subsampling.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.tree import DecisionTreeClassifier, DecisionTreeRegressor


class RandomForestClassifier:
    """Bagged CART trees with sqrt-feature subsampling and soft voting."""

    def __init__(
        self,
        num_trees: int = 30,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if num_trees < 1:
            raise ValueError("num_trees must be >= 1")
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: List[DecisionTreeClassifier] = []
        self.num_classes_: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.num_classes_ = int(y.max()) + 1
        rng = np.random.default_rng(self.seed)
        max_features = self.max_features or max(1, int(np.sqrt(x.shape[1])))
        self.trees_ = []
        for t in range(self.num_trees):
            boot = rng.integers(0, len(y), size=len(y))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed + t,
            )
            xb, yb = x[boot], y[boot]
            # Guarantee every class appears so per-tree proba shapes agree.
            tree.num_classes_ = self.num_classes_
            tree.root_ = tree._grow(xb, yb, depth=0)
            self.trees_.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("fit must be called before predict")
        probs = np.zeros((len(x), self.num_classes_))
        for tree in self.trees_:
            probs += tree.predict_proba(x)
        return probs / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)


class GradientBoostingClassifier:
    """Multiclass gradient boosting with shallow regression trees.

    Each round fits one tree per class to the negative softmax gradient
    (residual ``onehot - prob``) and adds ``lr * tree`` to that class's
    score function.
    """

    def __init__(
        self,
        num_rounds: int = 50,
        lr: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.num_rounds = num_rounds
        self.lr = lr
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.trees_: List[List[DecisionTreeRegressor]] = []
        self.base_score_: Optional[np.ndarray] = None
        self.num_classes_: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        n = len(y)
        self.num_classes_ = int(y.max()) + 1
        onehot = np.zeros((n, self.num_classes_))
        onehot[np.arange(n), y] = 1.0
        priors = np.clip(onehot.mean(axis=0), 1e-12, None)
        self.base_score_ = np.log(priors)
        scores = np.tile(self.base_score_, (n, 1))
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        for round_idx in range(self.num_rounds):
            shifted = scores - scores.max(axis=1, keepdims=True)
            probs = np.exp(shifted)
            probs /= probs.sum(axis=1, keepdims=True)
            residual = onehot - probs
            round_trees: List[DecisionTreeRegressor] = []
            if self.subsample < 1.0:
                pick = rng.random(n) < self.subsample
                if pick.sum() < 2 * self.min_samples_leaf:
                    pick = np.ones(n, dtype=bool)
            else:
                pick = np.ones(n, dtype=bool)
            for c in range(self.num_classes_):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    seed=self.seed + round_idx * self.num_classes_ + c,
                )
                tree.fit(x[pick], residual[pick, c])
                scores[:, c] += self.lr * tree.predict(x)
                round_trees.append(tree)
            self.trees_.append(round_trees)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.base_score_ is None:
            raise RuntimeError("fit must be called before predict")
        x = np.asarray(x, dtype=np.float64)
        scores = np.tile(self.base_score_, (len(x), 1))
        for round_trees in self.trees_:
            for c, tree in enumerate(round_trees):
                scores[:, c] += self.lr * tree.predict(x)
        return scores

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        scores -= scores.max(axis=1, keepdims=True)
        probs = np.exp(scores)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.decision_function(x).argmax(axis=1)
