"""k-nearest-neighbor classifier (brute force, small-data regime)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.construction.rules import pairwise_distances


class KNNClassifier:
    """Majority vote over the k nearest training rows.

    The non-parametric cousin of the kNN *graph*: comparing it against a
    kNN-graph GNN isolates what message passing adds beyond local voting.
    """

    def __init__(self, k: int = 5, metric: str = "euclidean", weighted: bool = False) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.metric = metric
        self.weighted = weighted
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        self._x = np.asarray(x, dtype=np.float64)
        self._y = np.asarray(y, dtype=np.int64)
        if len(self._x) < self.k:
            raise ValueError("training set smaller than k")
        self.classes_ = np.unique(self._y)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("fit must be called before predict")
        x = np.asarray(x, dtype=np.float64)
        stacked = np.concatenate([x, self._x], axis=0)
        dist = pairwise_distances(stacked, self.metric)[: len(x), len(x):]
        nearest = np.argpartition(dist, kth=self.k - 1, axis=1)[:, : self.k]
        probs = np.zeros((len(x), len(self.classes_)))
        for i in range(len(x)):
            neighbor_labels = np.searchsorted(self.classes_, self._y[nearest[i]])
            if self.weighted:
                weights = 1.0 / (dist[i, nearest[i]] + 1e-12)
            else:
                weights = np.ones(self.k)
            np.add.at(probs[i], neighbor_labels, weights)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.predict_proba(x).argmax(axis=1)]
