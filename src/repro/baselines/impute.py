"""Classical imputers: mean, median, kNN and iterative (MICE-style) ridge.

The reference points for the GNN-based imputation application (survey
Sec. 5.4): GRAPE-style edge prediction is expected to beat these on MAR and
MNAR missingness, while mean imputation is the weakest but fastest.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.linear import RidgeRegression


class _StatImputer:
    _stat = None  # overridden

    def __init__(self) -> None:
        self.fill_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "_StatImputer":
        x = np.asarray(x, dtype=np.float64)
        fill = self._stat(x)
        # Columns that are entirely missing fall back to 0.
        self.fill_ = np.where(np.isnan(fill), 0.0, fill)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.fill_ is None:
            raise RuntimeError("fit must be called before transform")
        x = np.asarray(x, dtype=np.float64).copy()
        rows, cols = np.nonzero(np.isnan(x))
        x[rows, cols] = self.fill_[cols]
        return x

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


def _silent_nanstat(fn, x: np.ndarray) -> np.ndarray:
    """Apply a nan-aware statistic, silencing the all-NaN-column warning."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return fn(x, axis=0)


class MeanImputer(_StatImputer):
    """Replace NaN with the column mean over observed entries."""

    @staticmethod
    def _stat(x: np.ndarray) -> np.ndarray:
        return _silent_nanstat(np.nanmean, x)


class MedianImputer(_StatImputer):
    """Replace NaN with the column median over observed entries."""

    @staticmethod
    def _stat(x: np.ndarray) -> np.ndarray:
        return _silent_nanstat(np.nanmedian, x)


class KNNImputer:
    """Fill each missing cell with the mean over the k nearest rows.

    Row distances use observed-dimension-normalized Euclidean distance
    (NaN-aware), matching sklearn's behaviour in spirit.
    """

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._x: Optional[np.ndarray] = None
        self._fallback: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "KNNImputer":
        self._x = np.asarray(x, dtype=np.float64)
        fallback = _silent_nanstat(np.nanmean, self._x)
        self._fallback = np.where(np.isnan(fallback), 0.0, fallback)
        return self

    def _nan_distances(self, row: np.ndarray) -> np.ndarray:
        diff = self._x - row
        valid = ~np.isnan(diff)
        diff = np.where(valid, diff, 0.0)
        counts = valid.sum(axis=1)
        sq = (diff**2).sum(axis=1)
        # Scale up by the fraction of usable dimensions, guard zero overlap.
        d = self._x.shape[1]
        with np.errstate(divide="ignore"):
            scaled = sq * d / np.maximum(counts, 1)
        scaled[counts == 0] = np.inf
        return np.sqrt(scaled)

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("fit must be called before transform")
        x = np.asarray(x, dtype=np.float64).copy()
        for i in range(x.shape[0]):
            missing = np.isnan(x[i])
            if not missing.any():
                continue
            dist = self._nan_distances(x[i])
            order = np.argsort(dist)
            for j in np.nonzero(missing)[0]:
                donors = [idx for idx in order if not np.isnan(self._x[idx, j])][: self.k]
                if donors:
                    x[i, j] = float(np.mean(self._x[donors, j]))
                else:
                    x[i, j] = self._fallback[j]
        return x

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


class IterativeImputer:
    """MICE-style round-robin regression imputation with ridge models.

    Starts from mean fill, then repeatedly re-predicts each incomplete
    column from all the others until convergence or ``max_iter``.
    """

    def __init__(self, max_iter: int = 10, alpha: float = 1.0, tol: float = 1e-4) -> None:
        self.max_iter = max_iter
        self.alpha = alpha
        self.tol = tol

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        missing = np.isnan(x)
        filled = MeanImputer().fit_transform(x)
        if not missing.any():
            return filled
        incomplete_cols = np.nonzero(missing.any(axis=0))[0]
        for _ in range(self.max_iter):
            max_change = 0.0
            for j in incomplete_cols:
                observed = ~missing[:, j]
                if observed.sum() < 2:
                    continue
                others = np.delete(np.arange(x.shape[1]), j)
                model = RidgeRegression(alpha=self.alpha)
                model.fit(filled[observed][:, others], filled[observed, j])
                preds = model.predict(filled[missing[:, j]][:, others])
                change = np.max(np.abs(filled[missing[:, j], j] - preds), initial=0.0)
                max_change = max(max_change, float(change))
                filled[missing[:, j], j] = preds
            if max_change < self.tol:
                break
        return filled
