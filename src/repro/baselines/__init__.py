"""Structure-blind baselines the survey's comparisons require.

Conventional TDL models (Sec. 1 & 6): logistic regression, MLP, k-nearest
neighbors, CART decision trees, random forests and gradient boosting — the
"tree-based models [that] still outperform deep learning on typical tabular
data" discussion — plus classical imputers (mean/median/kNN/iterative) for
the missing-data application (Sec. 5.4).
"""

from repro.baselines.linear import LogisticRegressionClassifier, RidgeRegression
from repro.baselines.mlp import MLPClassifier, MLPRegressor
from repro.baselines.neighbors import KNNClassifier
from repro.baselines.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.baselines.ensemble import GradientBoostingClassifier, RandomForestClassifier
from repro.baselines.impute import (
    IterativeImputer,
    KNNImputer,
    MeanImputer,
    MedianImputer,
)

__all__ = [
    "LogisticRegressionClassifier",
    "RidgeRegression",
    "MLPClassifier",
    "MLPRegressor",
    "KNNClassifier",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "RandomForestClassifier",
    "IterativeImputer",
    "KNNImputer",
    "MeanImputer",
    "MedianImputer",
]
