"""MLP baselines: the structure-blind deep-learning reference point.

These wrap :class:`repro.nn.MLP` in a fit/predict interface.  They see each
row independently — no instance correlation, no explicit feature graph —
which is precisely the "conventional deep TDL" the survey argues GNNs
improve on (Sec. 2.5).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.tensor import Tensor


class _MLPBase:
    def __init__(
        self,
        hidden_dims: Sequence[int] = (64, 32),
        lr: float = 0.01,
        epochs: int = 200,
        weight_decay: float = 1e-4,
        dropout: float = 0.0,
        seed: int = 0,
        patience: Optional[int] = None,
    ) -> None:
        self.hidden_dims = tuple(hidden_dims)
        self.lr = lr
        self.epochs = epochs
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.seed = seed
        self.patience = patience
        self.model: Optional[nn.MLP] = None

    def _build(self, in_features: int, out_features: int) -> nn.MLP:
        rng = np.random.default_rng(self.seed)
        return nn.MLP(
            in_features, self.hidden_dims, out_features, rng, dropout=self.dropout
        )

    def _train(self, loss_fn) -> None:
        optimizer = nn.Adam(
            self.model.parameters(), lr=self.lr, weight_decay=self.weight_decay
        )
        best = np.inf
        bad = 0
        for _ in range(self.epochs):
            self.model.train()
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            if self.patience is not None:
                value = float(loss.item())
                if value < best - 1e-6:
                    best, bad = value, 0
                else:
                    bad += 1
                    if bad > self.patience:
                        break
        self.model.eval()


class MLPClassifier(_MLPBase):
    """Feed-forward classifier over flattened tabular features."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.classes_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.classes_ = np.unique(y)
        labels = np.searchsorted(self.classes_, y)
        self.model = self._build(x.shape[1], len(self.classes_))
        features = Tensor(x)
        self._train(lambda: nn.cross_entropy(self.model(features), labels))
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit must be called before predict")
        logits = self.model(Tensor(np.asarray(x, dtype=np.float64))).data
        logits = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.predict_proba(x).argmax(axis=1)]


class MLPRegressor(_MLPBase):
    """Feed-forward regressor over flattened tabular features."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.model = self._build(x.shape[1], 1)
        features = Tensor(x)
        target = y.reshape(-1, 1)
        self._train(lambda: nn.mse_loss(self.model(features), target))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit must be called before predict")
        return self.model(Tensor(np.asarray(x, dtype=np.float64))).data.reshape(-1)
