"""Linear baselines: multinomial logistic regression and ridge regression."""

from __future__ import annotations

from typing import Optional

import numpy as np


class LogisticRegressionClassifier:
    """Multinomial logistic regression trained by full-batch gradient descent.

    A deliberately structure- and interaction-blind baseline: it can only
    exploit *marginal* feature signal, which is what makes it the reference
    point for the feature-interaction experiments (Sec. 2.5b).
    """

    def __init__(
        self,
        lr: float = 0.1,
        epochs: int = 300,
        l2: float = 1e-4,
        fit_intercept: bool = True,
    ) -> None:
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.weights_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def _design(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.fit_intercept:
            return np.concatenate([x, np.ones((x.shape[0], 1))], axis=1)
        return x

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        design = self._design(x)
        y = np.asarray(y, dtype=np.int64)
        self.classes_ = np.unique(y)
        num_classes = len(self.classes_)
        label_index = np.searchsorted(self.classes_, y)
        onehot = np.zeros((len(y), num_classes))
        onehot[np.arange(len(y)), label_index] = 1.0
        w = np.zeros((design.shape[1], num_classes))
        for _ in range(self.epochs):
            logits = design @ w
            logits -= logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            grad = design.T @ (probs - onehot) / len(y) + self.l2 * w
            w -= self.lr * grad
        self.weights_ = w
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("fit must be called before predict")
        logits = self._design(x) @ self.weights_
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.predict_proba(x).argmax(axis=1)]


class RidgeRegression:
    """Closed-form L2-regularized least squares."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError("alpha must be nonnegative")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if self.fit_intercept:
            x_mean = x.mean(axis=0)
            y_mean = y.mean()
            xc = x - x_mean
            yc = y - y_mean
        else:
            x_mean, y_mean, xc, yc = 0.0, 0.0, x, y
        gram = xc.T @ xc + self.alpha * np.eye(x.shape[1])
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        if self.fit_intercept:
            self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("fit must be called before predict")
        return np.asarray(x, dtype=np.float64) @ self.coef_ + self.intercept_
