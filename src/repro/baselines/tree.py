"""CART decision trees (classification and regression).

Trees are the survey's Sec. 6 reference point: they handle non-smooth
decision boundaries and irrelevant features gracefully, abilities the
survey proposes importing into tabular GNNs.  Implemented as standard
greedy CART with exhaustive threshold search per feature.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np


@dataclasses.dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: Optional[np.ndarray] = None  # class distribution or mean

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_gini(x, y, num_classes, min_leaf):
    """Best (feature, threshold, gain) under Gini impurity; None if no split."""
    n = len(y)
    counts = np.bincount(y, minlength=num_classes).astype(np.float64)
    parent_gini = 1.0 - ((counts / n) ** 2).sum()
    best = None
    for j in range(x.shape[1]):
        order = np.argsort(x[:, j], kind="mergesort")
        xs, ys = x[order, j], y[order]
        left = np.zeros(num_classes)
        right = counts.copy()
        for i in range(n - 1):
            left[ys[i]] += 1
            right[ys[i]] -= 1
            if xs[i] == xs[i + 1]:
                continue
            nl, nr = i + 1, n - i - 1
            if nl < min_leaf or nr < min_leaf:
                continue
            gini_l = 1.0 - ((left / nl) ** 2).sum()
            gini_r = 1.0 - ((right / nr) ** 2).sum()
            gain = parent_gini - (nl * gini_l + nr * gini_r) / n
            if best is None or gain > best[2]:
                best = (j, 0.5 * (xs[i] + xs[i + 1]), gain)
    return best


def _best_split_mse(x, y, min_leaf):
    """Best (feature, threshold, gain) under variance reduction."""
    n = len(y)
    total_sum = y.sum()
    total_sq = (y**2).sum()
    parent_var = total_sq / n - (total_sum / n) ** 2
    best = None
    for j in range(x.shape[1]):
        order = np.argsort(x[:, j], kind="mergesort")
        xs, ys = x[order, j], y[order]
        cum = np.cumsum(ys)
        cum_sq = np.cumsum(ys**2)
        for i in range(n - 1):
            if xs[i] == xs[i + 1]:
                continue
            nl, nr = i + 1, n - i - 1
            if nl < min_leaf or nr < min_leaf:
                continue
            var_l = cum_sq[i] / nl - (cum[i] / nl) ** 2
            var_r = (total_sq - cum_sq[i]) / nr - ((total_sum - cum[i]) / nr) ** 2
            gain = parent_var - (nl * var_l + nr * var_r) / n
            if best is None or gain > best[2]:
                best = (j, 0.5 * (xs[i] + xs[i + 1]), gain)
    return best


class _BaseTree:
    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        min_gain: float = 1e-9,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self.root_: Optional[_Node] = None

    def _feature_subset(self, num_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= num_features:
            return np.arange(num_features)
        return self._rng.choice(num_features, size=self.max_features, replace=False)

    def _predict_row(self, row: np.ndarray) -> np.ndarray:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self.root_ is None:
            raise RuntimeError("fit must be called first")
        return walk(self.root_)


class DecisionTreeClassifier(_BaseTree):
    """Greedy CART classifier with Gini impurity."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.num_classes_: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.num_classes_ = int(y.max()) + 1
        self.root_ = self._grow(x, y, depth=0)
        return self

    def _leaf(self, y: np.ndarray) -> _Node:
        counts = np.bincount(y, minlength=self.num_classes_).astype(np.float64)
        return _Node(value=counts / counts.sum())

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if depth >= self.max_depth or len(np.unique(y)) == 1 or len(y) < 2 * self.min_samples_leaf:
            return self._leaf(y)
        features = self._feature_subset(x.shape[1])
        best = _best_split_gini(x[:, features], y, self.num_classes_, self.min_samples_leaf)
        if best is None or best[2] <= self.min_gain:
            return self._leaf(y)
        feature = int(features[best[0]])
        threshold = best[1]
        mask = x[:, feature] <= threshold
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("fit must be called before predict")
        x = np.asarray(x, dtype=np.float64)
        return np.stack([self._predict_row(row) for row in x])

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)


class DecisionTreeRegressor(_BaseTree):
    """Greedy CART regressor with variance reduction."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.root_ = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.allclose(y, y[0]):
            return _Node(value=np.array([y.mean()]))
        features = self._feature_subset(x.shape[1])
        best = _best_split_mse(x[:, features], y, self.min_samples_leaf)
        if best is None or best[2] <= self.min_gain:
            return _Node(value=np.array([y.mean()]))
        feature = int(features[best[0]])
        threshold = best[1]
        mask = x[:, feature] <= threshold
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("fit must be called before predict")
        x = np.asarray(x, dtype=np.float64)
        return np.array([self._predict_row(row)[0] for row in x])
