"""Robustness tooling (survey Sec. 6, "Dealing with Robustness Issues").

The survey names four robustness axes for tabular GNNs: noise in the graph
structure, data distribution shift, over-smoothing/overfitting, and
adversarial perturbations.  This module provides the injection utilities
the robustness benchmarks use:

* :func:`perturb_edges` — random structural noise: delete a fraction of true
  edges and insert the same number of spurious ones;
* :func:`feature_shift` — covariate shift: additive mean shift on a subset
  of columns at evaluation time;
* :func:`oversmoothing_score` — mean pairwise cosine similarity of node
  embeddings (1.0 = fully over-smoothed);
* :func:`worst_case_feature_attack` — a simple gradient-free perturbation
  that flips each test row's most influential feature by ±ε.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.homogeneous import Graph
from repro.graph.utils import coalesce_edge_index


def perturb_edges(
    graph: Graph,
    noise_rate: float,
    rng: Optional[np.random.Generator] = None,
) -> Graph:
    """Replace ``noise_rate`` of the edges with random spurious edges.

    Deletions and insertions are balanced so degree statistics stay roughly
    constant; inserted edges are sampled uniformly (the survey's "spurious
    edges ... incorrect propagation" scenario).
    """
    if not 0.0 <= noise_rate <= 1.0:
        raise ValueError("noise_rate must be in [0, 1]")
    rng = rng or np.random.default_rng(0)
    num_edges = graph.num_edges
    if num_edges == 0 or noise_rate == 0.0:
        return graph
    num_replace = int(round(num_edges * noise_rate))
    keep = np.ones(num_edges, dtype=bool)
    keep[rng.choice(num_edges, size=num_replace, replace=False)] = False
    kept = graph.edge_index[:, keep]
    random_edges = rng.integers(0, graph.num_nodes, size=(2, num_replace))
    loops = random_edges[0] == random_edges[1]
    random_edges[1, loops] = (random_edges[1, loops] + 1) % graph.num_nodes
    merged = np.concatenate([kept, random_edges], axis=1)
    merged, _ = coalesce_edge_index(merged)
    return Graph(graph.num_nodes, merged, x=graph.x, y=graph.y)


def feature_shift(
    x: np.ndarray,
    magnitude: float,
    column_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Additive covariate shift on a random subset of columns."""
    if magnitude < 0:
        raise ValueError("magnitude must be nonnegative")
    rng = rng or np.random.default_rng(0)
    x = np.asarray(x, dtype=np.float64).copy()
    num_cols = x.shape[1]
    shifted = rng.choice(num_cols, size=max(1, int(num_cols * column_fraction)),
                         replace=False)
    x[:, shifted] += magnitude
    return x


def oversmoothing_score(embeddings: np.ndarray) -> float:
    """Mean pairwise cosine similarity; → 1 as representations collapse."""
    z = np.asarray(embeddings, dtype=np.float64)
    norms = np.linalg.norm(z, axis=1, keepdims=True)
    normed = z / np.maximum(norms, 1e-12)
    sim = normed @ normed.T
    n = len(z)
    if n < 2:
        raise ValueError("need at least two embeddings")
    off_diagonal = sim.sum() - np.trace(sim)
    return float(off_diagonal / (n * (n - 1)))


def worst_case_feature_attack(
    x: np.ndarray,
    predict_proba,
    y: np.ndarray,
    epsilon: float,
    num_probe: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Gradient-free per-row attack: probe a few columns with ±ε and keep the
    perturbation that most reduces the true-class probability.

    ``predict_proba`` maps an ``(n, d)`` matrix to ``(n, C)`` probabilities.
    Returns the perturbed feature matrix (at most one column changed/row).
    """
    if epsilon < 0:
        raise ValueError("epsilon must be nonnegative")
    rng = rng or np.random.default_rng(0)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    base = predict_proba(x)[np.arange(len(y)), y]
    best_x = x.copy()
    best_drop = np.zeros(len(y))
    columns = rng.choice(x.shape[1], size=min(num_probe, x.shape[1]), replace=False)
    for col in columns:
        for sign in (+1.0, -1.0):
            candidate = x.copy()
            candidate[:, col] += sign * epsilon
            probs = predict_proba(candidate)[np.arange(len(y)), y]
            drop = base - probs
            improved = drop > best_drop
            best_x[improved] = candidate[improved]
            best_drop = np.maximum(best_drop, drop)
    return best_x
