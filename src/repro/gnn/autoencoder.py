"""Graph autoencoder (GAE [76]) for unsupervised representation learning.

Used by the survey's anomaly-detection line (MST-GRA, GAEOD): the encoder
is a GCN stack, the decoder reconstructs (a) the adjacency via inner
products and/or (b) the node features via a linear decoder; reconstruction
error is the anomaly score.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.gnn.conv import GCNConv
from repro.tensor import Tensor, ops


class GraphAutoencoder(nn.Module):
    """GCN encoder + inner-product structure decoder + linear feature decoder."""

    def __init__(
        self,
        in_features: int,
        hidden_dims: Sequence[int],
        latent_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        widths = [in_features, *hidden_dims, latent_dim]
        self.encoder_layers = nn.ModuleList(
            [GCNConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self.feature_decoder = nn.Linear(latent_dim, in_features, rng)

    def encode(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        h = x
        for i, conv in enumerate(self.encoder_layers):
            h = conv(h, adjacency)
            if i < len(self.encoder_layers) - 1:
                h = ops.relu(h)
        return h

    def decode_features(self, z: Tensor) -> Tensor:
        return self.feature_decoder(z)

    def decode_edges(self, z: Tensor, pairs: np.ndarray) -> Tensor:
        """Edge-probability logits ``<z_i, z_j>`` for the given (2, m) pairs."""
        zi = ops.gather_rows(z, pairs[0])
        zj = ops.gather_rows(z, pairs[1])
        return ops.sum(ops.mul(zi, zj), axis=1)

    def reconstruction_loss(
        self,
        x: Tensor,
        adjacency: sp.spmatrix,
        edge_index: np.ndarray,
        rng: np.random.Generator,
        feature_weight: float = 1.0,
        structure_weight: float = 1.0,
    ) -> Tensor:
        """Feature MSE + balanced positive/negative edge BCE."""
        z = self.encode(x, adjacency)
        loss = ops.mul(
            Tensor(feature_weight),
            nn.losses.mse_loss(self.decode_features(z), x.data),
        )
        num_pos = edge_index.shape[1]
        if structure_weight > 0 and num_pos > 0:
            n = x.shape[0]
            neg = rng.integers(0, n, size=(2, num_pos))
            pairs = np.concatenate([edge_index, neg], axis=1)
            labels = np.concatenate([np.ones(num_pos), np.zeros(num_pos)])
            logits = self.decode_edges(z, pairs)
            loss = ops.add(
                loss,
                ops.mul(
                    Tensor(structure_weight),
                    nn.losses.binary_cross_entropy_with_logits(logits, labels),
                ),
            )
        return loss

    def anomaly_scores(self, x: Tensor, adjacency: sp.spmatrix) -> np.ndarray:
        """Per-node feature reconstruction error (higher = more anomalous)."""
        z = self.encode(x, adjacency)
        recon = self.decode_features(z)
        return np.mean((recon.data - x.data) ** 2, axis=1)
