"""Neighbor-sampled mini-batch training (survey Sec. 6, "Scaling GNNs").

Full-batch message passing touches every node each step; GraphSAGE-style
neighbor sampling caps the per-step cost at ``batch_size * fanout**depth``
nodes, which is the survey's first scalability lever.  This module provides:

* :func:`sample_neighborhood` — uniform fanout-bounded neighbor sampling
  around a seed batch, returning the sampled block operators;
* :class:`SampledSAGE` — a SAGE stack whose forward consumes sampled blocks
  (training) or the full graph (inference);
* :func:`train_sampled` — the mini-batch training loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.gnn.conv import SAGEConv
from repro.graph.homogeneous import Graph
from repro.tensor import Tensor, ops


class _AdjacencyList:
    """CSR-style neighbor lookup built once per graph."""

    def __init__(self, graph: Graph) -> None:
        order = np.argsort(graph.edge_index[1], kind="mergesort")
        self._sources = graph.edge_index[0][order]
        destinations = graph.edge_index[1][order]
        self._offsets = np.searchsorted(
            destinations, np.arange(graph.num_nodes + 1)
        )

    def neighbors(self, node: int) -> np.ndarray:
        return self._sources[self._offsets[node]:self._offsets[node + 1]]


def sample_neighborhood(
    adjacency: _AdjacencyList,
    seeds: np.ndarray,
    fanouts: Sequence[int],
    rng: np.random.Generator,
) -> Tuple[List[sp.csr_matrix], np.ndarray]:
    """Sample a fanout-bounded computation block around ``seeds``.

    Returns one mean-aggregation operator per layer (deepest first) and the
    final input-node id array.  Layer ``l``'s operator maps layer-``l+1``
    node states (rows = nodes needed at depth l) from the states of their
    sampled neighbors (columns = nodes needed at depth l+1).
    """
    layers_nodes = [np.asarray(seeds, dtype=np.int64)]
    sampled_edges: List[Tuple[np.ndarray, np.ndarray]] = []
    for fanout in fanouts:
        current = layers_nodes[-1]
        sources: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for node in current:
            neighbors = adjacency.neighbors(int(node))
            if neighbors.size == 0:
                continue
            if neighbors.size > fanout:
                neighbors = rng.choice(neighbors, size=fanout, replace=False)
            sources.append(neighbors)
            targets.append(np.full(neighbors.size, node, dtype=np.int64))
        if sources:
            src = np.concatenate(sources)
            dst = np.concatenate(targets)
        else:
            src = np.zeros(0, dtype=np.int64)
            dst = np.zeros(0, dtype=np.int64)
        sampled_edges.append((src, dst))
        next_nodes = np.unique(np.concatenate([current, src]))
        layers_nodes.append(next_nodes)

    operators: List[sp.csr_matrix] = []
    # Build operators deepest-first so forward() can fold inward.
    for depth in reversed(range(len(fanouts))):
        rows_nodes = layers_nodes[depth]
        cols_nodes = layers_nodes[depth + 1]
        col_index = {int(n): i for i, n in enumerate(cols_nodes)}
        row_index = {int(n): i for i, n in enumerate(rows_nodes)}
        src, dst = sampled_edges[depth]
        if src.size:
            r = np.array([row_index[int(d)] for d in dst])
            c = np.array([col_index[int(s)] for s in src])
            data = np.ones(len(r))
            matrix = sp.csr_matrix(
                (data, (r, c)), shape=(len(rows_nodes), len(cols_nodes))
            )
            degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
            inv = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)
            matrix = (sp.diags(inv) @ matrix).tocsr()
        else:
            matrix = sp.csr_matrix((len(rows_nodes), len(cols_nodes)))
        # Self-inclusion: each row node also appears among columns.
        self_cols = np.array([col_index[int(n)] for n in rows_nodes])
        selector = sp.csr_matrix(
            (np.ones(len(rows_nodes)), (np.arange(len(rows_nodes)), self_cols)),
            shape=(len(rows_nodes), len(cols_nodes)),
        )
        operators.append((matrix, selector))
    return operators, layers_nodes[-1]


class SampledSAGE(nn.Module):
    """GraphSAGE whose training forward runs on sampled blocks.

    ``forward_blocks`` consumes the output of :func:`sample_neighborhood`;
    ``forward_full`` runs classic full-batch inference on the whole graph.
    """

    def __init__(
        self,
        in_features: int,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        num_layers: int = 2,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        widths = [in_features] + [hidden_dim] * (num_layers - 1) + [out_dim]
        self.convs = nn.ModuleList(
            [SAGEConv(widths[i], widths[i + 1], rng) for i in range(num_layers)]
        )
        self.num_layers = num_layers

    def forward_blocks(self, x_input: Tensor, operators) -> Tensor:
        h = x_input
        for conv, (matrix, selector) in zip(self.convs, operators):
            neighbor = ops.spmm(matrix, h)
            self_h = ops.spmm(selector, h)
            h = conv.linear(ops.concat([self_h, neighbor], axis=1))
            if conv is not self.convs[len(self.convs) - 1]:
                h = ops.relu(h)
        return h

    def forward_full(self, x: Tensor, mean_adjacency: sp.spmatrix) -> Tensor:
        h = x
        for i, conv in enumerate(self.convs):
            h = conv(h, mean_adjacency)
            if i < self.num_layers - 1:
                h = ops.relu(h)
        return h


def train_sampled(
    graph: Graph,
    labels: np.ndarray,
    train_mask: np.ndarray,
    model: SampledSAGE,
    fanouts: Sequence[int],
    batch_size: int = 64,
    epochs: int = 10,
    lr: float = 0.01,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Mini-batch neighbor-sampled training; returns per-epoch mean losses."""
    if graph.x is None:
        raise ValueError("graph must carry node features")
    if len(fanouts) != model.num_layers:
        raise ValueError("need one fanout per model layer")
    rng = rng or np.random.default_rng(0)
    adjacency = _AdjacencyList(graph)
    train_nodes = np.nonzero(train_mask)[0]
    optimizer = nn.Adam(model.parameters(), lr=lr)
    history: List[float] = []
    for _ in range(epochs):
        perm = rng.permutation(train_nodes)
        epoch_losses = []
        for start in range(0, len(perm), batch_size):
            seeds = perm[start:start + batch_size]
            operators, input_nodes = sample_neighborhood(
                adjacency, seeds, fanouts, rng
            )
            x_input = Tensor(graph.x[input_nodes])
            logits = model.forward_blocks(x_input, operators)
            loss = nn.cross_entropy(logits, labels[seeds])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        history.append(float(np.mean(epoch_losses)))
    model.eval()
    return history
