"""Sparse homogeneous graph convolutions: GCN, GraphSAGE, GIN, GatedGraph.

Each layer's ``forward`` takes the node-feature tensor plus the appropriate
precomputed sparse operator (see :class:`repro.graph.Graph` adjacency
methods), keeping layers stateless with respect to graph structure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.tensor import Tensor, ops
from repro.tensor import init as tinit


class GCNConv(nn.Module):
    """Kipf-Welling graph convolution: ``A_hat @ X @ W + b``.

    ``adjacency`` should be the symmetric-normalized operator from
    :meth:`repro.graph.Graph.gcn_adjacency`.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True) -> None:
        super().__init__()
        self.linear = nn.Linear(in_features, out_features, rng, bias=bias)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        return ops.spmm(adjacency, self.linear(x))


class SAGEConv(nn.Module):
    """GraphSAGE with mean aggregator: ``[X || mean_N(X)] @ W + b``.

    ``adjacency`` should be the row-normalized operator from
    :meth:`repro.graph.Graph.mean_adjacency` (without self loops — the self
    representation enters through the concatenation).
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.linear = nn.Linear(2 * in_features, out_features, rng)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        neighbor = ops.spmm(adjacency, x)
        return self.linear(ops.concat([x, neighbor], axis=1))


class GINConv(nn.Module):
    """Graph Isomorphism Network layer: ``MLP((1 + eps) * X + sum_N(X))``.

    ``adjacency`` should be the *unnormalized* adjacency (sum aggregation) —
    GIN's injectivity argument requires sums, not means.  ``eps`` is
    learnable as in the original paper.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 hidden_dim: Optional[int] = None) -> None:
        super().__init__()
        hidden = hidden_dim or out_features
        self.mlp = nn.MLP(in_features, (hidden,), out_features, rng)
        self.eps = nn.Parameter(np.zeros(1))

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        neighbor_sum = ops.spmm(adjacency, x)
        scaled_self = ops.mul(x, ops.add(Tensor(1.0), self.eps))
        return self.mlp(ops.add(scaled_self, neighbor_sum))


class GatedGraphConv(nn.Module):
    """Gated graph sequence layer (GGNN [82], used by Fi-GNN / Causal-GNN).

    Runs ``num_steps`` rounds of message passing where the node state is
    updated by a GRU cell: ``h <- GRU(A_mean @ (h W), h)``.  Input width
    must equal the state width.
    """

    def __init__(self, state_dim: int, rng: np.random.Generator, num_steps: int = 2) -> None:
        super().__init__()
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        self.num_steps = num_steps
        self.message = nn.Linear(state_dim, state_dim, rng)
        self.gru = nn.GRUCell(state_dim, state_dim, rng)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        h = x
        for _ in range(self.num_steps):
            messages = ops.spmm(adjacency, self.message(h))
            h = self.gru(messages, h)
        return h
