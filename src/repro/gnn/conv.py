"""Sparse homogeneous graph convolutions: GCN, GraphSAGE, GIN, GatedGraph.

Every layer speaks the edge-wise message-passing substrate: ``propagate``
takes the node-state tensor plus an :class:`~repro.graph.homogeneous.EdgeView`
of the appropriate flavor (declared by the layer's ``view_kind`` class
attribute and memoized on the :class:`~repro.graph.Graph`).  Because the
view is just "edges + optional coefficients", the same ``propagate`` runs
on the full training graph and on the tiny bipartite attach view the
serving engine builds per request — incremental inference needs no
per-layer special cases.

The legacy ``forward(x, adjacency)`` entry points (precomputed sparse
operator) are kept for direct users (autoencoder, TabGNN, sampled
training); on a full graph both paths compute identical numbers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.graph.homogeneous import EdgeView
from repro.tensor import Tensor, ops


class GCNConv(nn.Module):
    """Kipf-Welling graph convolution: ``A_hat @ X @ W + b``.

    Consumes the symmetric-normalized view/operator
    (:meth:`repro.graph.Graph.edge_view` with ``"gcn"`` /
    :meth:`repro.graph.Graph.gcn_adjacency`).
    """

    view_kind = "gcn"

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True) -> None:
        super().__init__()
        self.linear = nn.Linear(in_features, out_features, rng, bias=bias)

    def propagate(self, x: Tensor, view: EdgeView) -> Tensor:
        return view.aggregate(self.linear(x))

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        return ops.spmm(adjacency, self.linear(x))


class SAGEConv(nn.Module):
    """GraphSAGE with mean aggregator: ``[X || mean_N(X)] @ W + b``.

    Consumes the row-normalized view/operator (``"mean"`` — without self
    loops; the self representation enters through the concatenation).
    """

    view_kind = "mean"

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.linear = nn.Linear(2 * in_features, out_features, rng)

    def propagate(self, x: Tensor, view: EdgeView) -> Tensor:
        return self.linear(ops.concat([x, view.aggregate(x)], axis=1))

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        neighbor = ops.spmm(adjacency, x)
        return self.linear(ops.concat([x, neighbor], axis=1))


class GINConv(nn.Module):
    """Graph Isomorphism Network layer: ``MLP((1 + eps) * X + sum_N(X))``.

    Consumes the *unnormalized* view/operator (``"sum"``) — GIN's
    injectivity argument requires sums, not means.  ``eps`` is learnable
    as in the original paper.
    """

    view_kind = "sum"

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 hidden_dim: Optional[int] = None) -> None:
        super().__init__()
        hidden = hidden_dim or out_features
        self.mlp = nn.MLP(in_features, (hidden,), out_features, rng)
        self.eps = nn.Parameter(np.zeros(1))

    def _combine(self, x: Tensor, neighbor_sum: Tensor) -> Tensor:
        scaled_self = ops.mul(x, ops.add(Tensor(1.0), self.eps))
        return self.mlp(ops.add(scaled_self, neighbor_sum))

    def propagate(self, x: Tensor, view: EdgeView) -> Tensor:
        return self._combine(x, view.aggregate(x))

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        return self._combine(x, ops.spmm(adjacency, x))


class GatedGraphConv(nn.Module):
    """Gated graph sequence layer (GGNN [82], used by Fi-GNN / Causal-GNN).

    ``propagate`` is **one** message step — the node state updated by a GRU
    cell, ``h <- GRU(agg(h W), h)`` over the mean-with-self-loops view —
    so network plans can interleave per-step state caching; ``forward``
    runs all ``num_steps`` rounds on a precomputed operator.  Input width
    must equal the state width.
    """

    view_kind = "mean_loops"

    def __init__(self, state_dim: int, rng: np.random.Generator, num_steps: int = 2) -> None:
        super().__init__()
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        self.num_steps = num_steps
        self.message = nn.Linear(state_dim, state_dim, rng)
        self.gru = nn.GRUCell(state_dim, state_dim, rng)

    def propagate(self, x: Tensor, view: EdgeView) -> Tensor:
        return self.gru(view.aggregate(self.message(x)), x)

    def forward(self, x: Tensor, adjacency: sp.spmatrix) -> Tensor:
        h = x
        for _ in range(self.num_steps):
            messages = ops.spmm(adjacency, self.message(h))
            h = self.gru(messages, h)
        return h
