"""Hypergraph convolution (HGNN) and a two-stage node↔hyperedge network.

The tabular formulation (survey Sec. 4.1.3) has feature values as nodes and
rows as hyperedges, so *row classification is hyperedge classification*:
the two-stage network aggregates value-node states into hyperedge (row)
states, which feed the prediction head — the HCL/PET substrate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.graph.hypergraph import Hypergraph
from repro.tensor import Tensor, ops


class HypergraphConv(nn.Module):
    """HGNN layer: ``X' = Dv^-1/2 H We De^-1 H^T Dv^-1/2 X W`` (node → node)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.linear = nn.Linear(in_features, out_features, rng)

    def forward(self, x: Tensor, operator: sp.spmatrix) -> Tensor:
        return ops.spmm(operator, self.linear(x))


class HypergraphGNN(nn.Module):
    """Node-level HGNN stack + hyperedge readout for row classification.

    Value nodes start from learned embeddings (their one-hot identity —
    Table 2's "One-hot" initial feature — composed with a learned
    projection).  After ``num_layers`` HGNN convolutions, node states are
    mean-pooled into each hyperedge (row) and classified.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        num_layers: int = 2,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.hypergraph = hypergraph
        self.node_embedding = nn.Embedding(hypergraph.num_nodes, hidden_dim, rng)
        self.convs = nn.ModuleList(
            [HypergraphConv(hidden_dim, hidden_dim, rng) for _ in range(num_layers)]
        )
        # Per-layer self transform: the HGNN operator mixes aggressively on
        # dense tabular hypergraphs (every value node co-occurs with many
        # others), so a residual self path is needed to avoid over-smoothing
        # at depth ≥ 2 (the survey's Sec. 6 robustness concern).
        self.selfs = nn.ModuleList(
            [nn.Linear(hidden_dim, hidden_dim, rng) for _ in range(num_layers)]
        )
        self.head = nn.Linear(hidden_dim, out_dim, rng)
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None
        self._operator = hypergraph.hgnn_operator()
        self._node_to_edge = hypergraph.node_to_edge_operator()

    def node_states(self) -> Tensor:
        h = self.node_embedding(np.arange(self.hypergraph.num_nodes))
        for conv, self_linear in zip(self.convs, self.selfs):
            h = ops.relu(ops.add(conv(h, self._operator), self_linear(h)))
            if self.dropout is not None:
                h = self.dropout(h)
        return h

    def forward(self) -> Tensor:
        h = self.node_states()
        edge_states = ops.spmm(self._node_to_edge, h)
        return self.head(edge_states)

    def embed(self) -> Tensor:
        """Hyperedge (row) representations before the head."""
        return ops.spmm(self._node_to_edge, self.node_states())

    # ------------------------------------------------------------------
    # incremental serving: frozen node states + query-hyperedge attach
    # ------------------------------------------------------------------
    def pool_node_states(self) -> np.ndarray:
        """The frozen value-node states incremental serving caches once.

        A query row attaches as a *new hyperedge*, and the readout is a
        node→edge mean over the states leaving the last conv layer — unlike
        query-node formulations there is no per-layer replay to run, so this
        single ``(num_nodes, hidden)`` matrix is the entire pool-side state.
        Call in eval mode (dropout off), as :class:`repro.serving`'s
        ``ModelArtifact.build_model`` does.
        """
        return self.node_states().data

    def propagate_queries(
        self, attach_view, node_states: np.ndarray
    ) -> np.ndarray:
        """Logits for query hyperedges attached over frozen node states.

        ``attach_view`` is :meth:`repro.graph.Hypergraph.attach_view`'s
        directed node→query-hyperedge view; aggregation runs through the
        same :class:`~repro.graph.homogeneous.EdgeView` gather/segment
        substrate every conv layer's ``propagate`` uses, so the cost is
        O(B·members·d) — independent of how many rows the training
        hypergraph holds.
        """
        edge_states = attach_view.aggregate(Tensor(node_states))
        return self.head(edge_states).data
