"""Graph neural network layers and stacks (survey Sec. 4.3, Table 5).

Homogeneous convolutions (GCN, GraphSAGE, GAT, GIN, GatedGraph), the dense
variant used with learned adjacencies, heterogeneous convolutions (RGCN,
HeteroConv), hypergraph convolution (HGNN), a graph autoencoder, and
permutation-invariant readouts.
"""

from repro.gnn.conv import GCNConv, SAGEConv, GINConv, GatedGraphConv
from repro.gnn.attention import GATConv
from repro.gnn.dense import DenseGCNConv, DenseGNN
from repro.gnn.hetero import RGCNConv, HeteroConv, HeteroGNN
from repro.gnn.hyper import HypergraphConv, HypergraphGNN
from repro.gnn.autoencoder import GraphAutoencoder
from repro.gnn.readout import (
    AttentionReadout,
    max_readout,
    mean_readout,
    sum_readout,
)
from repro.gnn.networks import GCN, GAT, GIN, GraphSAGE, GatedGNN, build_network
from repro.gnn.sampling import SampledSAGE, sample_neighborhood, train_sampled

__all__ = [
    "GCNConv",
    "SAGEConv",
    "GINConv",
    "GatedGraphConv",
    "GATConv",
    "DenseGCNConv",
    "DenseGNN",
    "RGCNConv",
    "HeteroConv",
    "HeteroGNN",
    "HypergraphConv",
    "HypergraphGNN",
    "GraphAutoencoder",
    "AttentionReadout",
    "max_readout",
    "mean_readout",
    "sum_readout",
    "GCN",
    "GAT",
    "GIN",
    "GraphSAGE",
    "GatedGNN",
    "build_network",
    "SampledSAGE",
    "sample_neighborhood",
    "train_sampled",
]
