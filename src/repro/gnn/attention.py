"""Graph attention convolution (GAT [126]) with optional edge features.

The edge-feature pathway implements the survey's "Distance Preservation"
design (Table 6, LUNAR [44]): per-edge scalars (e.g. neighbor distances)
enter the attention logits through a learned projection, so the learned
representation preserves distance information.

Like the operator convs, GAT speaks the edge-wise substrate: ``propagate``
consumes an :class:`~repro.graph.homogeneous.EdgeView` (flavor
``"attention"`` — raw edges with self loops baked in at view-construction
time, so frozen-graph training loops stop rebuilding the self-loop block
every call).  ``forward(x, edge_index)`` is the compat path that derives a
one-shot view from a raw edge index.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.graph.homogeneous import EdgeView
from repro.tensor import Tensor, ops
from repro.tensor import init as tinit


class GATConv(nn.Module):
    """Multi-head graph attention.

    Parameters
    ----------
    in_features, out_features:
        Per-head output width is ``out_features``; heads are averaged when
        ``concat_heads=False`` (final layers) else concatenated.
    edge_dim:
        If given, per-edge feature vectors of this width modulate attention.
    add_self_loops:
        Append one self loop per node (with zero edge features) so every
        node attends at least to itself.  Only consulted by ``forward``;
        ``propagate`` expects any loops to be baked into the view already.
    """

    view_kind = "attention"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        num_heads: int = 4,
        concat_heads: bool = False,
        edge_dim: Optional[int] = None,
        negative_slope: float = 0.2,
        add_self_loops: bool = True,
    ) -> None:
        super().__init__()
        self.num_heads = num_heads
        self.out_features = out_features
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        self.add_self_loops = add_self_loops
        self.weight = nn.Parameter(
            tinit.glorot_uniform((in_features, num_heads * out_features), rng)
        )
        self.att_src = nn.Parameter(tinit.glorot_uniform((num_heads, out_features), rng))
        self.att_dst = nn.Parameter(tinit.glorot_uniform((num_heads, out_features), rng))
        self.bias = nn.Parameter(
            np.zeros(num_heads * out_features if concat_heads else out_features)
        )
        if edge_dim is not None:
            self.edge_proj = nn.Linear(edge_dim, num_heads, rng)
        else:
            self.edge_proj = None

    @property
    def output_dim(self) -> int:
        return self.out_features * (self.num_heads if self.concat_heads else 1)

    def propagate(
        self,
        x: Tensor,
        view: EdgeView,
        edge_features: Optional[Tensor] = None,
    ) -> Tensor:
        """Attention message passing over ``view`` (loops pre-baked).

        Scores are normalized per destination with ``segment_softmax``, so
        on a bipartite attach view each query's attention is a softmax over
        exactly its k retrieved neighbors plus its self loop — the same
        computation the full graph would produce for that node.
        """
        num_nodes = x.shape[0]
        src, dst = view.src, view.dst

        h = ops.matmul(x, self.weight).reshape(num_nodes, self.num_heads, self.out_features)
        h_flat = h.reshape(num_nodes, self.num_heads * self.out_features)
        h_src = ops.gather_rows(h_flat, src).reshape(len(src), self.num_heads, self.out_features)
        h_dst = ops.gather_rows(h_flat, dst).reshape(len(dst), self.num_heads, self.out_features)

        # Attention logits per edge and head.
        score_src = ops.sum(ops.mul(h_src, self.att_src), axis=-1)  # (E, heads)
        score_dst = ops.sum(ops.mul(h_dst, self.att_dst), axis=-1)
        scores = ops.add(score_src, score_dst)
        if self.edge_proj is not None:
            if edge_features is None:
                raise ValueError("layer was built with edge_dim but no edge features given")
            scores = ops.add(scores, self.edge_proj(edge_features))
        scores = ops.leaky_relu(scores, self.negative_slope)

        alpha = ops.segment_softmax(scores, dst, view.num_nodes)  # (E, heads)
        weighted = ops.mul(h_src, alpha.reshape(len(src), self.num_heads, 1))
        aggregated = ops.segment_sum(weighted, dst, view.num_nodes)  # (n, heads, out)

        if self.concat_heads:
            out = aggregated.reshape(view.num_nodes, self.num_heads * self.out_features)
        else:
            out = ops.mean(aggregated, axis=1)
        return ops.add(out, self.bias)

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_features: Optional[Tensor] = None,
    ) -> Tensor:
        num_nodes = x.shape[0]
        view = EdgeView.from_edge_index(
            edge_index, num_nodes, add_self_loops=self.add_self_loops
        )
        if self.add_self_loops and edge_features is not None:
            zeros = Tensor(np.zeros((num_nodes, edge_features.shape[1])))
            edge_features = ops.concat([edge_features, zeros], axis=0)
        return self.propagate(x, view, edge_features)
