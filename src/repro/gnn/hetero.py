"""Heterogeneous and multi-relational convolutions (survey Sec. 4.3.2).

* :class:`RGCNConv` — relational GCN [115]: one weight matrix per relation
  over a shared node set (the multiplex/multi-relational case, TabGNN-style
  substrate).
* :class:`HeteroConv` / :class:`HeteroGNN` — typed message passing over a
  :class:`repro.graph.HeteroGraph` with per-edge-type transforms and a
  per-node-type self transform (RGCN generalized to typed node sets, the
  GCT/HSGNN/GraphFC substrate).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.graph.heterogeneous import EdgeType, HeteroGraph
from repro.tensor import Tensor, ops


class RGCNConv(nn.Module):
    """Relational GCN over a shared node set: ``sum_r A_r X W_r + X W_self + b``."""

    def __init__(self, in_features: int, out_features: int, num_relations: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        if num_relations < 1:
            raise ValueError("need at least one relation")
        self.num_relations = num_relations
        self.relation_linears = nn.ModuleList(
            [nn.Linear(in_features, out_features, rng, bias=False) for _ in range(num_relations)]
        )
        self.self_linear = nn.Linear(in_features, out_features, rng)

    def forward(self, x: Tensor, operators: Sequence[sp.spmatrix]) -> Tensor:
        if len(operators) != self.num_relations:
            raise ValueError(
                f"expected {self.num_relations} relation operators, got {len(operators)}"
            )
        out = self.self_linear(x)
        for linear, op in zip(self.relation_linears, operators):
            out = ops.add(out, ops.spmm(op, linear(x)))
        return out


class HeteroConv(nn.Module):
    """One round of typed message passing on a :class:`HeteroGraph`.

    For each destination type: mean-aggregate transformed messages over all
    incoming edge types, add the transformed self state.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        in_dims: Dict[str, int],
        out_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.edge_types: List[EdgeType] = list(graph.edge_types)
        self._edge_linears = nn.ModuleList()
        self._edge_key_order: List[EdgeType] = []
        for edge_type in self.edge_types:
            src_type = edge_type[0]
            self._edge_linears.append(nn.Linear(in_dims[src_type], out_dim, rng, bias=False))
            self._edge_key_order.append(edge_type)
        self._self_linears = nn.ModuleList()
        self._node_types = list(graph.node_types)
        for node_type in self._node_types:
            self._self_linears.append(nn.Linear(in_dims[node_type], out_dim, rng))
        # Precompute normalized operators once; structure is fixed.
        self._operators = {et: graph.mean_operator(et) for et in self.edge_types}

    def forward(self, features: Dict[str, Tensor]) -> Dict[str, Tensor]:
        out: Dict[str, Tensor] = {}
        for node_type, linear in zip(self._node_types, self._self_linears):
            out[node_type] = linear(features[node_type])
        for edge_type, linear in zip(self._edge_key_order, self._edge_linears):
            src_type, _, dst_type = edge_type
            message = ops.spmm(self._operators[edge_type], linear(features[src_type]))
            out[dst_type] = ops.add(out[dst_type], message)
        return out

    def query_update(
        self,
        h_q: np.ndarray,
        value_ids: Dict[str, np.ndarray],
        states: Dict[str, np.ndarray],
        target: str,
    ) -> np.ndarray:
        """One layer update for B query rows of ``target`` type (eval only).

        ``value_ids[src_type]`` holds each query's value-node id in that
        type (``-1`` = no edge — missing or out-of-vocabulary value);
        ``states`` are the frozen pool-side inputs to this layer.  A query
        has at most one edge per incoming edge type, so the mean operator
        degenerates to a plain lookup — exactly the row a training
        instance occupies in :meth:`forward`'s per-type operators.
        """
        out = self._self_linears[self._node_types.index(target)](Tensor(h_q)).data
        for edge_type, linear in zip(self._edge_key_order, self._edge_linears):
            src_type, _, dst_type = edge_type
            if dst_type != target:
                continue
            if src_type == target:
                raise ValueError(
                    f"edge type {edge_type} flows {target}→{target}; query "
                    f"propagation supports value→{target} messages only"
                )
            if src_type not in value_ids:
                raise ValueError(f"no value lookup provided for {src_type!r}")
            ids = value_ids[src_type]
            gathered = states[src_type][np.clip(ids, 0, None)]
            message = linear(Tensor(gathered)).data  # bias-free transform
            out = out + np.where((ids >= 0)[:, None], message, 0.0)
        return out


class HeteroGNN(nn.Module):
    """Stacked HeteroConv network producing logits for the target node type.

    Node types without features are given learned type embeddings
    (broadcast via an Embedding over node ids), matching the survey's
    "Random" / "One-hot" initial-feature entries in Table 2.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        num_layers: int = 2,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.graph = graph
        self.target_type = graph.target_type or "instance"
        self._featureless_embeddings = {}
        in_dims: Dict[str, int] = {}
        emb_list = nn.ModuleList()
        self._emb_types: List[str] = []
        for node_type, count in graph.node_counts.items():
            if node_type in graph.node_features:
                in_dims[node_type] = graph.node_features[node_type].shape[1]
            else:
                emb_list.append(nn.Embedding(count, hidden_dim, rng))
                self._emb_types.append(node_type)
                in_dims[node_type] = hidden_dim
        self._embeddings = emb_list
        layers = []
        dims = in_dims
        for layer_idx in range(num_layers):
            width = out_dim if layer_idx == num_layers - 1 else hidden_dim
            layers.append(HeteroConv(graph, dims, width, rng))
            dims = {t: width for t in graph.node_counts}
        self.layers = nn.ModuleList(layers)
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None

    def node_features(self) -> Dict[str, Tensor]:
        feats: Dict[str, Tensor] = {}
        emb_iter = iter(self._embeddings)
        emb_map = dict(zip(self._emb_types, emb_iter))
        for node_type, count in self.graph.node_counts.items():
            if node_type in self.graph.node_features:
                feats[node_type] = Tensor(self.graph.node_features[node_type])
            else:
                feats[node_type] = emb_map[node_type](np.arange(count))
        return feats

    def forward(self) -> Tensor:
        feats = self.node_features()
        for i, layer in enumerate(self.layers):
            feats = layer(feats)
            if i < len(self.layers) - 1:
                feats = {t: ops.relu(h) for t, h in feats.items()}
                if self.dropout is not None:
                    feats = {t: self.dropout(h) for t, h in feats.items()}
        return feats[self.target_type]

    # -- incremental query scoring (serving) ---------------------------
    def pool_states(self) -> List[Dict[str, np.ndarray]]:
        """Per layer: the node states (all types) entering it, eval mode.

        Value-node states never depend on query rows (queries receive
        messages but are not part of the frozen graph), so one pool-only
        forward caches everything :meth:`propagate_queries` needs.
        """
        states: List[Dict[str, np.ndarray]] = []
        feats = self.node_features()
        for i, layer in enumerate(self.layers):
            states.append({t: h.data for t, h in feats.items()})
            feats = layer(feats)
            if i < len(self.layers) - 1:
                feats = {t: ops.relu(h) for t, h in feats.items()}
        return states

    def propagate_queries(
        self,
        features: np.ndarray,
        value_ids: Dict[str, np.ndarray],
        pool_states: List[Dict[str, np.ndarray]],
    ) -> np.ndarray:
        """Logits ``(B, out_dim)`` for query instances attached by value lookup.

        Because instances receive messages *only* from value-node types and
        the value-node states are pool-frozen, a training-table row served
        through this path reproduces its transductive logits exactly.
        """
        features = np.asarray(features, dtype=np.float64)
        if len(pool_states) != len(self.layers):
            raise ValueError(
                f"pool_states has {len(pool_states)} entries, "
                f"network has {len(self.layers)} layers"
            )
        h = features
        for i, (layer, states) in enumerate(zip(self.layers, pool_states)):
            h = layer.query_update(h, value_ids, states, self.target_type)
            if i < len(self.layers) - 1:
                h = np.maximum(h, 0.0)
        return h

    def embed(self) -> Tensor:
        """Target-type representations from the penultimate layer pass."""
        feats = self.node_features()
        for i, layer in enumerate(self.layers[:-1]):
            feats = layer(feats)
            feats = {t: ops.relu(h) for t, h in feats.items()}
        return feats[self.target_type]
