"""Dense-adjacency graph convolution for *learned* graph structures.

When the adjacency is itself a differentiable Tensor (output of a
:mod:`repro.construction.learned` structure learner), aggregation must be a
dense matmul so gradients reach the learner — this is the representation-
learning half of IDGL/SLAPS/LDS-style joint structure-and-GNN training.

Also supports *batched* adjacencies/features ``(batch, n, n) × (batch, n, d)``,
which is how per-instance feature graphs (Fi-GNN/T2G-Former style) are
processed: every table row owns a small graph over its d feature fields.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro import nn
from repro.tensor import Tensor, ops


class DenseGCNConv(nn.Module):
    """GCN layer over a dense (possibly batched) normalized adjacency Tensor."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.linear = nn.Linear(in_features, out_features, rng)

    def forward(self, x: Tensor, adjacency: Tensor) -> Tensor:
        return ops.matmul(adjacency, self.linear(x))


class DenseGNN(nn.Module):
    """Multi-layer dense GCN with ReLU and dropout, for learned adjacencies."""

    def __init__(
        self,
        in_features: int,
        hidden_dims: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        widths = [in_features, *hidden_dims, out_features]
        self.convs = nn.ModuleList(
            [DenseGCNConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor, adjacency: Tensor) -> Tensor:
        h = x
        for i, conv in enumerate(self.convs):
            h = conv(h, adjacency)
            if i < len(self.convs) - 1:
                h = ops.relu(h)
                if self.dropout is not None:
                    h = self.dropout(h)
        return h
