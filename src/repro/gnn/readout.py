"""Permutation-invariant readouts (survey Sec. 2.3, graph-level tasks).

Feature-graph methods (Fi-GNN, T2G-Former, Table2Graph) classify each table
row from the states of its *feature nodes* — a graph-level prediction per
row.  Node states arrive batched as ``(rows, nodes, dim)`` and readouts
reduce over the node axis.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.tensor import Tensor, ops


def _check_batched(h: Tensor) -> None:
    if h.ndim != 3:
        raise ValueError(f"readout expects (batch, nodes, dim), got shape {h.shape}")


def sum_readout(h: Tensor) -> Tensor:
    _check_batched(h)
    return ops.sum(h, axis=1)


def mean_readout(h: Tensor) -> Tensor:
    _check_batched(h)
    return ops.mean(h, axis=1)


def max_readout(h: Tensor) -> Tensor:
    _check_batched(h)
    return ops.max(h, axis=1)


class AttentionReadout(nn.Module):
    """Gated attention pooling: softmax-scored weighted sum over nodes.

    The scoring network sees each node state; scores are normalized over
    the node axis.  Permutation invariance holds because both scoring and
    the weighted sum are per-node followed by a symmetric reduction.
    """

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.score = nn.Linear(dim, 1, rng)

    def forward(self, h: Tensor) -> Tensor:
        _check_batched(h)
        batch, nodes, dim = h.shape
        flat = h.reshape(batch * nodes, dim)
        scores = self.score(flat).reshape(batch, nodes)
        alpha = ops.softmax(scores, axis=1).reshape(batch, nodes, 1)
        return ops.sum(ops.mul(h, alpha), axis=1)
