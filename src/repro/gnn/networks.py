"""Ready-made node-classification GNN stacks (the Table 5 "model zoo").

Each network takes a :class:`repro.graph.Graph`, precomputes the operator
its convolution family needs, and produces node logits/embeddings.  The
uniform interface lets benchmarks sweep architectures (Table 5) with one
loop: ``build_network(name, graph, ...)``.

``forward(x=None)`` accepts an optional replacement feature tensor so the
training plans in :mod:`repro.training.tasks` can push *corrupted or
augmented views* of the features through the same network (denoising
autoencoder and contrastive auxiliary tasks).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.gnn.attention import GATConv
from repro.gnn.conv import GCNConv, GINConv, GatedGraphConv, SAGEConv
from repro.graph.homogeneous import Graph
from repro.tensor import Tensor, ops


class _NodeNetwork(nn.Module):
    """Shared plumbing: feature tensor, dropout, view overrides."""

    #: Whether the stack supports :meth:`propagate_queries` — scoring query
    #: rows attached to the construction graph by directed pool→query edges
    #: without re-running the pool.  Overridden by the operator-based stacks.
    supports_incremental = False

    def __init__(self, graph: Graph, rng: np.random.Generator, dropout: float) -> None:
        super().__init__()
        if graph.x is None:
            raise ValueError("graph must carry node features")
        self.graph = graph
        self.x = Tensor(graph.x)
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None

    def _input(self, x: Optional[Tensor]) -> Tensor:
        return self.x if x is None else x

    def _maybe_dropout(self, h: Tensor) -> Tensor:
        return self.dropout(h) if self.dropout is not None else h

    @property
    def in_features(self) -> int:
        return int(self.x.shape[1])


class _ConvStack(_NodeNetwork):
    """Common forward/embed loop for operator-based conv stacks."""

    activation = staticmethod(ops.relu)
    supports_incremental = True

    def forward(self, x: Optional[Tensor] = None) -> Tensor:
        h = self._input(x)
        for i, conv in enumerate(self.convs):
            h = conv(h, self._adj)
            if i < len(self.convs) - 1:
                h = self._maybe_dropout(self.activation(h))
        return h

    def embed(self, x: Optional[Tensor] = None) -> Tensor:
        h = self._input(x)
        for conv in self.convs[:-1]:
            h = self.activation(conv(h, self._adj))
        return h

    @property
    def embed_dim(self) -> int:
        return int(self._embed_dim)

    # -- incremental query propagation ---------------------------------
    #
    # The serving engine attaches B query rows to the *frozen* construction
    # graph ("the pool") with directed pool→query edges only.  Under that
    # topology no message ever flows query→pool, so every pool node's
    # activation at every layer is exactly what a pool-only forward
    # produces — request-invariant and cacheable.  A query's in-edges are
    # its k retrieved neighbors (plus, for GCN, the implicit self loop),
    # with closed-form normalization, so the query rows of each layer can
    # be computed from the cached pool activations in O(B·k·d) — no spmm,
    # no (pool + B)-sized anything.

    def pool_hidden_states(self) -> list[np.ndarray]:
        """Per-layer conv *inputs* on the construction graph, eval-mode.

        ``hiddens[i]`` is the ``(N, d_i)`` input :attr:`convs`\\ ``[i]``
        sees when :meth:`forward` runs on the frozen pool (dropout
        inactive).  Compute once at serving init, pass to every
        :meth:`propagate_queries` call.
        """
        hiddens = [self.x.data]
        h = self.x
        for conv in self.convs[:-1]:
            h = self.activation(conv(h, self._adj))
            hiddens.append(h.data)
        return hiddens

    def propagate_queries(
        self,
        features: np.ndarray,
        neighbor_idx: np.ndarray,
        pool_hiddens: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Logits ``(B, out_dim)`` for query rows attached to the pool.

        ``features`` is the ``(B, d_0)`` query feature block, ``neighbor_idx``
        the ``(B, k)`` indices of each query's retrieved pool neighbors, and
        ``pool_hiddens`` the cache from :meth:`pool_hidden_states`.  Matches
        a full forward over the (pool + queries) graph with directed
        pool→query attach edges to floating-point round-off.
        """
        features = np.asarray(features, dtype=np.float64)
        neighbor_idx = np.asarray(neighbor_idx, dtype=np.int64)
        n_pool = self.graph.num_nodes
        if features.ndim != 2 or features.shape[1] != self.x.shape[1]:
            raise ValueError(
                f"features must be (B, {self.x.shape[1]}), got {features.shape}"
            )
        if (
            neighbor_idx.ndim != 2
            or neighbor_idx.shape[0] != features.shape[0]
            or neighbor_idx.size == 0
        ):
            raise ValueError("neighbor_idx must be a non-empty (B, k) array")
        if neighbor_idx.min() < 0 or neighbor_idx.max() >= n_pool:
            raise ValueError(f"neighbor indices must be in [0, {n_pool})")
        if len(pool_hiddens) != len(self.convs):
            raise ValueError(
                f"pool_hiddens has {len(pool_hiddens)} layers, "
                f"stack has {len(self.convs)}"
            )
        h = features
        for i, conv in enumerate(self.convs):
            h = self._query_layer(conv, h, neighbor_idx, pool_hiddens[i])
            if i < len(self.convs) - 1:
                h = self.activation(Tensor(h)).data
        return h

    def _query_layer(
        self,
        conv: nn.Module,
        h: np.ndarray,
        neighbor_idx: np.ndarray,
        pool_h: np.ndarray,
    ) -> np.ndarray:
        raise NotImplementedError


class GCN(_ConvStack):
    """Multi-layer GCN [77] on the symmetric-normalized adjacency."""

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._adj = graph.gcn_adjacency()
        widths = [graph.num_features, *hidden_dims, out_dim]
        self.convs = nn.ModuleList(
            [GCNConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self._embed_dim = widths[-2]
        self._inv_sqrt_deg: Optional[np.ndarray] = None

    def _query_layer(self, conv, h, neighbor_idx, pool_h):
        # Query row of D^-1/2 (A+I) D^-1/2 @ (X W + b): the query's degree
        # is exactly k+1 (k attach edges + self loop) and pool degrees are
        # untouched by the directed attach edges, so the row is
        #   (1/(k+1)) z_q  +  (k+1)^-1/2 · Σ_p d_p^-1/2 z_p.
        # Aggregating features before the affine map turns that into one
        # (B, d_in) @ W matmul plus a per-row bias coefficient.
        if self._inv_sqrt_deg is None:
            degrees = (
                np.asarray(self.graph.adjacency().sum(axis=1)).reshape(-1) + 1.0
            )
            self._inv_sqrt_deg = 1.0 / np.sqrt(degrees)
        k = neighbor_idx.shape[1]
        inv_dq = 1.0 / (k + 1.0)
        neighbor_w = self._inv_sqrt_deg[neighbor_idx]  # (B, k)
        agg = (pool_h[neighbor_idx] * neighbor_w[..., None]).sum(axis=1)
        x_mix = inv_dq * h + np.sqrt(inv_dq) * agg
        out = x_mix @ conv.linear.weight.data
        if conv.linear.bias is not None:
            bias_coeff = inv_dq + np.sqrt(inv_dq) * neighbor_w.sum(axis=1)
            out = out + bias_coeff[:, None] * conv.linear.bias.data
        return out


class GraphSAGE(_ConvStack):
    """Multi-layer GraphSAGE [52] with mean aggregation."""

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._adj = graph.mean_adjacency()
        widths = [graph.num_features, *hidden_dims, out_dim]
        self.convs = nn.ModuleList(
            [SAGEConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self._embed_dim = widths[-2]

    def _query_layer(self, conv, h, neighbor_idx, pool_h):
        # Query row of D^-1 A is a plain mean over the k retrieved
        # neighbors (no self loop — self enters via the concatenation).
        neighbor_mean = pool_h[neighbor_idx].mean(axis=1)
        return conv.linear(Tensor(np.concatenate([h, neighbor_mean], axis=1))).data


class GIN(_ConvStack):
    """Multi-layer GIN [151] with sum aggregation."""

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._adj = graph.adjacency()
        widths = [graph.num_features, *hidden_dims, out_dim]
        self.convs = nn.ModuleList(
            [GINConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self._embed_dim = widths[-2]

    def _query_layer(self, conv, h, neighbor_idx, pool_h):
        # GIN sums (unnormalized adjacency); the query's incoming messages
        # are exactly its k retrieved neighbors.
        neighbor_sum = pool_h[neighbor_idx].sum(axis=1)
        pre = (1.0 + conv.eps.data) * h + neighbor_sum
        return conv.mlp(Tensor(pre)).data


class GAT(_NodeNetwork):
    """Multi-layer GAT [126]; hidden layers concatenate heads, output averages."""

    activation = staticmethod(ops.elu)

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        num_heads: int = 4,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._edge_index = graph.edge_index
        convs = []
        prev = graph.num_features
        for width in hidden_dims:
            conv = GATConv(prev, width, rng, num_heads=num_heads, concat_heads=True)
            convs.append(conv)
            prev = conv.output_dim
        convs.append(GATConv(prev, out_dim, rng, num_heads=num_heads, concat_heads=False))
        self.convs = nn.ModuleList(convs)
        self._embed_dim = prev

    def forward(self, x: Optional[Tensor] = None) -> Tensor:
        h = self._input(x)
        for i, conv in enumerate(self.convs):
            h = conv(h, self._edge_index)
            if i < len(self.convs) - 1:
                h = self._maybe_dropout(ops.elu(h))
        return h

    def embed(self, x: Optional[Tensor] = None) -> Tensor:
        h = self._input(x)
        for conv in self.convs[:-1]:
            h = ops.elu(conv(h, self._edge_index))
        return h

    @property
    def embed_dim(self) -> int:
        return int(self._embed_dim)


class GatedGNN(_NodeNetwork):
    """Projection + GatedGraphConv (GGNN [82]) + linear head."""

    def __init__(
        self,
        graph: Graph,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        num_steps: int = 3,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._adj = graph.mean_adjacency(add_self_loops=True)
        self.proj = nn.Linear(graph.num_features, hidden_dim, rng)
        self.gated = GatedGraphConv(hidden_dim, rng, num_steps=num_steps)
        self.head = nn.Linear(hidden_dim, out_dim, rng)
        self._embed_dim = hidden_dim

    def forward(self, x: Optional[Tensor] = None) -> Tensor:
        return self.head(self._maybe_dropout(self.embed(x)))

    def embed(self, x: Optional[Tensor] = None) -> Tensor:
        h = ops.relu(self.proj(self._input(x)))
        return self.gated(h, self._adj)

    @property
    def embed_dim(self) -> int:
        return int(self._embed_dim)


NETWORKS = {
    "gcn": GCN,
    "sage": GraphSAGE,
    "gat": GAT,
    "gin": GIN,
    "gated": GatedGNN,
}


def build_network(
    name: str,
    graph: Graph,
    hidden_dim: int,
    out_dim: int,
    rng: np.random.Generator,
    num_layers: int = 2,
    dropout: float = 0.0,
) -> nn.Module:
    """Instantiate a Table 5 architecture by name with uniform arguments."""
    if name not in NETWORKS:
        raise ValueError(f"unknown network {name!r}; choose from {sorted(NETWORKS)}")
    if name == "gated":
        return GatedGNN(graph, hidden_dim, out_dim, rng, dropout=dropout)
    hidden_dims = [hidden_dim] * max(0, num_layers - 1)
    return NETWORKS[name](graph, hidden_dims, out_dim, rng, dropout=dropout)
