"""Ready-made node-classification GNN stacks (the Table 5 "model zoo").

Each network takes a :class:`repro.graph.Graph`, precomputes the operator
its convolution family needs, and produces node logits/embeddings.  The
uniform interface lets benchmarks sweep architectures (Table 5) with one
loop: ``build_network(name, graph, ...)``.

``forward(x=None)`` accepts an optional replacement feature tensor so the
training plans in :mod:`repro.training.tasks` can push *corrupted or
augmented views* of the features through the same network (denoising
autoencoder and contrastive auxiliary tasks).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.gnn.attention import GATConv
from repro.gnn.conv import GCNConv, GINConv, GatedGraphConv, SAGEConv
from repro.graph.homogeneous import Graph
from repro.tensor import Tensor, ops


class _NodeNetwork(nn.Module):
    """Shared plumbing: feature tensor, dropout, view overrides."""

    def __init__(self, graph: Graph, rng: np.random.Generator, dropout: float) -> None:
        super().__init__()
        if graph.x is None:
            raise ValueError("graph must carry node features")
        self.graph = graph
        self.x = Tensor(graph.x)
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None

    def _input(self, x: Optional[Tensor]) -> Tensor:
        return self.x if x is None else x

    def _maybe_dropout(self, h: Tensor) -> Tensor:
        return self.dropout(h) if self.dropout is not None else h

    @property
    def in_features(self) -> int:
        return int(self.x.shape[1])


class _ConvStack(_NodeNetwork):
    """Common forward/embed loop for operator-based conv stacks."""

    activation = staticmethod(ops.relu)

    def forward(self, x: Optional[Tensor] = None) -> Tensor:
        h = self._input(x)
        for i, conv in enumerate(self.convs):
            h = conv(h, self._adj)
            if i < len(self.convs) - 1:
                h = self._maybe_dropout(self.activation(h))
        return h

    def embed(self, x: Optional[Tensor] = None) -> Tensor:
        h = self._input(x)
        for conv in self.convs[:-1]:
            h = self.activation(conv(h, self._adj))
        return h

    @property
    def embed_dim(self) -> int:
        return int(self._embed_dim)


class GCN(_ConvStack):
    """Multi-layer GCN [77] on the symmetric-normalized adjacency."""

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._adj = graph.gcn_adjacency()
        widths = [graph.num_features, *hidden_dims, out_dim]
        self.convs = nn.ModuleList(
            [GCNConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self._embed_dim = widths[-2]


class GraphSAGE(_ConvStack):
    """Multi-layer GraphSAGE [52] with mean aggregation."""

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._adj = graph.mean_adjacency()
        widths = [graph.num_features, *hidden_dims, out_dim]
        self.convs = nn.ModuleList(
            [SAGEConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self._embed_dim = widths[-2]


class GIN(_ConvStack):
    """Multi-layer GIN [151] with sum aggregation."""

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._adj = graph.adjacency()
        widths = [graph.num_features, *hidden_dims, out_dim]
        self.convs = nn.ModuleList(
            [GINConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self._embed_dim = widths[-2]


class GAT(_NodeNetwork):
    """Multi-layer GAT [126]; hidden layers concatenate heads, output averages."""

    activation = staticmethod(ops.elu)

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        num_heads: int = 4,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._edge_index = graph.edge_index
        convs = []
        prev = graph.num_features
        for width in hidden_dims:
            conv = GATConv(prev, width, rng, num_heads=num_heads, concat_heads=True)
            convs.append(conv)
            prev = conv.output_dim
        convs.append(GATConv(prev, out_dim, rng, num_heads=num_heads, concat_heads=False))
        self.convs = nn.ModuleList(convs)
        self._embed_dim = prev

    def forward(self, x: Optional[Tensor] = None) -> Tensor:
        h = self._input(x)
        for i, conv in enumerate(self.convs):
            h = conv(h, self._edge_index)
            if i < len(self.convs) - 1:
                h = self._maybe_dropout(ops.elu(h))
        return h

    def embed(self, x: Optional[Tensor] = None) -> Tensor:
        h = self._input(x)
        for conv in self.convs[:-1]:
            h = ops.elu(conv(h, self._edge_index))
        return h

    @property
    def embed_dim(self) -> int:
        return int(self._embed_dim)


class GatedGNN(_NodeNetwork):
    """Projection + GatedGraphConv (GGNN [82]) + linear head."""

    def __init__(
        self,
        graph: Graph,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        num_steps: int = 3,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self._adj = graph.mean_adjacency(add_self_loops=True)
        self.proj = nn.Linear(graph.num_features, hidden_dim, rng)
        self.gated = GatedGraphConv(hidden_dim, rng, num_steps=num_steps)
        self.head = nn.Linear(hidden_dim, out_dim, rng)
        self._embed_dim = hidden_dim

    def forward(self, x: Optional[Tensor] = None) -> Tensor:
        return self.head(self._maybe_dropout(self.embed(x)))

    def embed(self, x: Optional[Tensor] = None) -> Tensor:
        h = ops.relu(self.proj(self._input(x)))
        return self.gated(h, self._adj)

    @property
    def embed_dim(self) -> int:
        return int(self._embed_dim)


NETWORKS = {
    "gcn": GCN,
    "sage": GraphSAGE,
    "gat": GAT,
    "gin": GIN,
    "gated": GatedGNN,
}


def build_network(
    name: str,
    graph: Graph,
    hidden_dim: int,
    out_dim: int,
    rng: np.random.Generator,
    num_layers: int = 2,
    dropout: float = 0.0,
) -> nn.Module:
    """Instantiate a Table 5 architecture by name with uniform arguments."""
    if name not in NETWORKS:
        raise ValueError(f"unknown network {name!r}; choose from {sorted(NETWORKS)}")
    if name == "gated":
        return GatedGNN(graph, hidden_dim, out_dim, rng, dropout=dropout)
    hidden_dims = [hidden_dim] * max(0, num_layers - 1)
    return NETWORKS[name](graph, hidden_dims, out_dim, rng, dropout=dropout)
