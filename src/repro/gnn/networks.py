"""Ready-made node-classification GNN stacks (the Table 5 "model zoo").

Each network takes a :class:`repro.graph.Graph` and produces node
logits/embeddings.  The uniform interface lets benchmarks sweep
architectures (Table 5) with one loop: ``build_network(name, graph, ...)``.

``forward(x=None)`` accepts an optional replacement feature tensor so the
training plans in :mod:`repro.training.tasks` can push *corrupted or
augmented views* of the features through the same network (denoising
autoencoder and contrastive auxiliary tasks).

Every stack is one :class:`_NodeNetwork` over the edge-wise
message-passing substrate: a network is a *plan* — a flat sequence of
row-local steps (projections, activations, dropout) and propagate steps
(a conv layer plus the :class:`~repro.graph.EdgeView` flavor it consumes).
``forward``/``embed``/``pool_hidden_states``/``propagate_queries`` are
implemented here once, generically, so the serving engine's incremental
fast path is network-agnostic — attention and gated stacks included.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro import nn
from repro.gnn.attention import GATConv
from repro.gnn.conv import GCNConv, GINConv, GatedGraphConv, SAGEConv
from repro.graph.homogeneous import Graph
from repro.tensor import Tensor, ops


class _Local(object):
    """Plan step applying row-wise (no graph): activation, dropout, linear.

    ``train_only`` marks steps (dropout) that exist only for regularized
    training forwards — ``embed``, ``pool_hidden_states`` and
    ``propagate_queries`` skip them.
    """

    __slots__ = ("fn", "train_only")

    def __init__(self, fn: Callable[[Tensor], Tensor], train_only: bool = False) -> None:
        self.fn = fn
        self.train_only = train_only


class _Propagate(object):
    """Plan step running one conv layer over an edge view of its flavor."""

    __slots__ = ("module",)

    def __init__(self, module: nn.Module) -> None:
        self.module = module

    @property
    def view_kind(self) -> str:
        return self.module.view_kind


_Step = Union[_Local, _Propagate]


class _NodeNetwork(nn.Module):
    """Single substrate for every Table 5 stack.

    Subclasses build their layer modules, then register a plan with
    :meth:`_set_plan`; everything else — full-graph forward, embeddings,
    and the serving engine's incremental query path — is generic.

    Incremental query propagation
    -----------------------------
    The serving engine attaches B query rows to the *frozen* construction
    graph ("the pool") with directed pool→query edges only.  Under that
    topology no message ever flows query→pool, so the pool-side node state
    entering every propagate step is exactly what a pool-only forward
    produces — request-invariant and cacheable
    (:meth:`pool_hidden_states`).  Per request,
    :meth:`propagate_queries` replays the plan on the query rows alone:
    row-local steps touch only the (B, d) query block, and each propagate
    step runs the layer's own ``propagate`` on a tiny bipartite attach
    view (:meth:`~repro.graph.Graph.attach_view`) over a local node table
    of the k gathered neighbor states plus the query states — O(B·k·d),
    independent of pool size, for every conv family.  GAT's per-query
    softmax over its k+1 attach edges and the gated GRU updates over the
    cached per-step pool states fall out of the same loop.
    """

    activation = staticmethod(ops.relu)

    def __init__(self, graph: Graph, rng: np.random.Generator, dropout: float) -> None:
        super().__init__()
        if graph.x is None:
            raise ValueError("graph must carry node features")
        self.graph = graph
        self.x = Tensor(graph.x)
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None

    # -- plan assembly --------------------------------------------------
    def _set_plan(self, steps: Sequence[_Step], embed_end: int) -> None:
        """Register the step sequence; ``steps[:embed_end]`` computes ``embed``."""
        self._steps = list(steps)
        self._embed_end = int(embed_end)

    def _conv_plan(self) -> None:
        """Standard conv-stack plan: conv / activation / dropout interleave,
        embeddings being everything up to the final conv."""
        steps: list[_Step] = []
        for i, conv in enumerate(self.convs):
            steps.append(_Propagate(conv))
            if i < len(self.convs) - 1:
                steps.append(_Local(self.activation))
                if self.dropout is not None:
                    steps.append(_Local(self.dropout, train_only=True))
        self._set_plan(steps, len(steps) - 1)

    @property
    def num_message_steps(self) -> int:
        return sum(1 for step in self._steps if isinstance(step, _Propagate))

    # -- generic forward/embed ------------------------------------------
    def _input(self, x: Optional[Tensor]) -> Tensor:
        return self.x if x is None else x

    def _run(self, h: Tensor, steps: Sequence[_Step], training: bool) -> Tensor:
        for step in steps:
            if isinstance(step, _Propagate):
                h = step.module.propagate(h, self.graph.edge_view(step.view_kind))
            elif training or not step.train_only:
                h = step.fn(h)
        return h

    def forward(self, x: Optional[Tensor] = None) -> Tensor:
        return self._run(self._input(x), self._steps, self.training)

    def embed(self, x: Optional[Tensor] = None) -> Tensor:
        return self._run(self._input(x), self._steps[: self._embed_end], False)

    @property
    def in_features(self) -> int:
        return int(self.x.shape[1])

    @property
    def embed_dim(self) -> int:
        return int(self._embed_dim)

    # -- incremental query propagation ----------------------------------
    def pool_hidden_states(self) -> list[np.ndarray]:
        """Node states entering each propagate step on the pool, eval-mode.

        ``hiddens[i]`` is the ``(N, d_i)`` state the i-th propagate step of
        the plan sees when :meth:`forward` runs on the frozen pool
        (dropout inactive).  Compute once at serving init, pass to every
        :meth:`propagate_queries` call.
        """
        hiddens = []
        h = self.x
        for step in self._steps:
            if isinstance(step, _Propagate):
                hiddens.append(h.data)
                h = step.module.propagate(h, self.graph.edge_view(step.view_kind))
            elif not step.train_only:
                h = step.fn(h)
        return hiddens

    def propagate_queries(
        self,
        features: np.ndarray,
        neighbor_idx: np.ndarray,
        pool_hiddens: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Logits ``(B, out_dim)`` for query rows attached to the pool.

        ``features`` is the ``(B, d_0)`` query feature block, ``neighbor_idx``
        the ``(B, k)`` indices of each query's retrieved pool neighbors, and
        ``pool_hiddens`` the cache from :meth:`pool_hidden_states`.  Matches
        a full forward over the (pool + queries) graph with directed
        pool→query attach edges to floating-point round-off.
        """
        features = np.asarray(features, dtype=np.float64)
        neighbor_idx = np.asarray(neighbor_idx, dtype=np.int64)
        n_pool = self.graph.num_nodes
        if features.ndim != 2 or features.shape[1] != self.x.shape[1]:
            raise ValueError(
                f"features must be (B, {self.x.shape[1]}), got {features.shape}"
            )
        if (
            neighbor_idx.ndim != 2
            or neighbor_idx.shape[0] != features.shape[0]
            or neighbor_idx.size == 0
        ):
            raise ValueError("neighbor_idx must be a non-empty (B, k) array")
        if neighbor_idx.min() < 0 or neighbor_idx.max() >= n_pool:
            raise ValueError(f"neighbor indices must be in [0, {n_pool})")
        if len(pool_hiddens) != self.num_message_steps:
            raise ValueError(
                f"pool_hiddens has {len(pool_hiddens)} entries, "
                f"plan has {self.num_message_steps} propagation steps"
            )
        batch = features.shape[0]
        flat_neighbors = neighbor_idx.reshape(-1)
        views: dict[str, object] = {}
        h = Tensor(features)
        step_idx = 0
        for step in self._steps:
            if isinstance(step, _Propagate):
                kind = step.view_kind
                if kind not in views:
                    views[kind] = self.graph.attach_view(kind, neighbor_idx)
                # Local node table per the attach-view convention: the
                # gathered neighbor states (B·k rows, one per attach edge)
                # followed by the B query states; only the query rows of
                # the propagate output are live.
                table = Tensor(
                    np.concatenate(
                        [pool_hiddens[step_idx][flat_neighbors], h.data], axis=0
                    )
                )
                h = Tensor(step.module.propagate(table, views[kind]).data[-batch:])
                step_idx += 1
            elif not step.train_only:
                h = step.fn(h)
        return h.data

    def serve_plan(self) -> list:
        """The eval-time step sequence, training-only steps stripped.

        The serve-path plan compiler
        (:mod:`repro.serving.compiled`) walks this sequence to lower
        :meth:`propagate_queries` into a flat kernel plan; the entries are
        the same :class:`_Local` / :class:`_Propagate` records the
        interpreted path replays, in the same order.
        """
        return [
            step
            for step in self._steps
            if isinstance(step, _Propagate) or not step.train_only
        ]


class GCN(_NodeNetwork):
    """Multi-layer GCN [77] on the symmetric-normalized adjacency."""

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        widths = [graph.num_features, *hidden_dims, out_dim]
        self.convs = nn.ModuleList(
            [GCNConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self._embed_dim = widths[-2]
        self._conv_plan()


class GraphSAGE(_NodeNetwork):
    """Multi-layer GraphSAGE [52] with mean aggregation."""

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        widths = [graph.num_features, *hidden_dims, out_dim]
        self.convs = nn.ModuleList(
            [SAGEConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self._embed_dim = widths[-2]
        self._conv_plan()


class GIN(_NodeNetwork):
    """Multi-layer GIN [151] with sum aggregation."""

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        widths = [graph.num_features, *hidden_dims, out_dim]
        self.convs = nn.ModuleList(
            [GINConv(widths[i], widths[i + 1], rng) for i in range(len(widths) - 1)]
        )
        self._embed_dim = widths[-2]
        self._conv_plan()


class GAT(_NodeNetwork):
    """Multi-layer GAT [126]; hidden layers concatenate heads, output averages."""

    activation = staticmethod(ops.elu)

    def __init__(
        self,
        graph: Graph,
        hidden_dims: Sequence[int],
        out_dim: int,
        rng: np.random.Generator,
        num_heads: int = 4,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        convs = []
        prev = graph.num_features
        for width in hidden_dims:
            conv = GATConv(prev, width, rng, num_heads=num_heads, concat_heads=True)
            convs.append(conv)
            prev = conv.output_dim
        convs.append(GATConv(prev, out_dim, rng, num_heads=num_heads, concat_heads=False))
        self.convs = nn.ModuleList(convs)
        self._embed_dim = prev
        self._conv_plan()


class GatedGNN(_NodeNetwork):
    """Projection + GatedGraphConv (GGNN [82]) + linear head.

    The plan expands the gated conv into ``num_steps`` propagate steps over
    the same module, so the serving engine caches the pool's GRU state at
    every step boundary.
    """

    def __init__(
        self,
        graph: Graph,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        num_steps: int = 3,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(graph, rng, dropout)
        self.proj = nn.Linear(graph.num_features, hidden_dim, rng)
        self.gated = GatedGraphConv(hidden_dim, rng, num_steps=num_steps)
        self.head = nn.Linear(hidden_dim, out_dim, rng)
        self._embed_dim = hidden_dim
        steps: list[_Step] = [_Local(self.proj), _Local(ops.relu)]
        steps.extend(_Propagate(self.gated) for _ in range(num_steps))
        embed_end = len(steps)
        if self.dropout is not None:
            steps.append(_Local(self.dropout, train_only=True))
        steps.append(_Local(self.head))
        self._set_plan(steps, embed_end)


NETWORKS = {
    "gcn": GCN,
    "sage": GraphSAGE,
    "gat": GAT,
    "gin": GIN,
    "gated": GatedGNN,
}


def build_network(
    name: str,
    graph: Graph,
    hidden_dim: int,
    out_dim: int,
    rng: np.random.Generator,
    num_layers: int = 2,
    dropout: float = 0.0,
) -> nn.Module:
    """Instantiate a Table 5 architecture by name with uniform arguments."""
    if name not in NETWORKS:
        raise ValueError(f"unknown network {name!r}; choose from {sorted(NETWORKS)}")
    if name == "gated":
        return GatedGNN(graph, hidden_dim, out_dim, rng, dropout=dropout)
    hidden_dims = [hidden_dim] * max(0, num_layers - 1)
    return NETWORKS[name](graph, hidden_dims, out_dim, rng, dropout=dropout)
