"""The survey taxonomy (Figure 2) as an executable registry.

Every leaf of the taxonomy maps to the library object implementing it, so
benchmarks can *verify* coverage (Table 1 / Figure 2 reproduction) instead
of merely claiming it: each leaf is instantiable and runnable.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List


@dataclasses.dataclass(frozen=True)
class TaxonomyLeaf:
    """One leaf of the Figure 2 taxonomy."""

    name: str
    phase: str
    category: str
    implementation: str  # dotted path inside the repro package
    survey_examples: str


def _leaf(name, phase, category, implementation, examples) -> TaxonomyLeaf:
    return TaxonomyLeaf(name, phase, category, implementation, examples)


TAXONOMY: List[TaxonomyLeaf] = [
    # ----- Phase 1: Graph Formulation -------------------------------------
    # Pipeline-dispatched formulations point at their registered
    # repro.formulations classes (the Formulation protocol); the remaining
    # leaves point at their intrinsic graph builders.
    _leaf("instance graph", "formulation", "homogeneous",
          "repro.formulations.instance.InstanceFormulation",
          "LUNAR, SLAPS, IDGL, TabGSL"),
    _leaf("feature graph", "formulation", "homogeneous",
          "repro.formulations.feature.FeatureFormulation",
          "FI-GNN, T2G-Former, Table2Graph"),
    _leaf("bipartite graph", "formulation", "heterogeneous",
          "repro.construction.intrinsic.bipartite_from_dataset",
          "GRAPE, FATE, IGRM, PET"),
    _leaf("general heterogeneous graph", "formulation", "heterogeneous",
          "repro.formulations.hetero.HeteroFormulation",
          "GCT, HSGNN, xFraud, GraphFC"),
    _leaf("multiplex / multi-relational graph", "formulation", "heterogeneous",
          "repro.formulations.multiplex.MultiplexFormulation",
          "TabGNN, AMG, GCondNet"),
    _leaf("knowledge graph", "formulation", "heterogeneous",
          "repro.construction.intrinsic.feature_graph_from_knowledge", "PLATO, JenTab"),
    _leaf("hypergraph", "formulation", "hypergraph",
          "repro.formulations.hypergraph.HypergraphFormulation",
          "HCL, HyTrel, PET"),
    # ----- Phase 2: Graph Construction ------------------------------------
    _leaf("intrinsic structure", "construction", "intrinsic",
          "repro.construction.intrinsic.bipartite_from_dataset",
          "GRAPE, MedGraph, FATE, RelBench"),
    _leaf("k-nearest neighbors", "construction", "rule-based",
          "repro.construction.rules.knn_graph", "LUNAR, GNN4MV, LSTM-GNN, CCNS"),
    _leaf("thresholding", "construction", "rule-based",
          "repro.construction.rules.threshold_graph", "GINN, GAEOD, GEDI"),
    _leaf("fully-connected", "construction", "rule-based",
          "repro.construction.rules.fully_connected_graph",
          "Fi-GNN, SGANM, IAGNN, FinGAT"),
    _leaf("same feature value", "construction", "rule-based",
          "repro.construction.rules.same_value_graph", "TabGNN, WPN"),
    _leaf("metric-based learning", "construction", "learning-based",
          "repro.construction.learned.MetricGraphLearner",
          "IDGL, DGM, EGG-GAE, HES-GSL"),
    _leaf("neural learning", "construction", "learning-based",
          "repro.construction.learned.NeuralGraphLearner",
          "SLAPS, SUBLIME, TabGSL, T2G-Former"),
    _leaf("direct learning", "construction", "learning-based",
          "repro.construction.learned.DirectGraphLearner",
          "LDS, ALLG, Table2Graph, Causal-GNN"),
    _leaf("retrieval-based", "construction", "other",
          "repro.construction.retrieval.retrieval_augmented_graph", "PET, FIVES"),
    _leaf("knowledge-based", "construction", "other",
          "repro.construction.intrinsic.feature_graph_from_knowledge",
          "PLATO, TabularNet"),
    # ----- Phase 3: Representation Learning --------------------------------
    _leaf("GCN", "representation", "homogeneous GNNs",
          "repro.gnn.networks.GCN", "GINN, IDGL, SLAPS, SUBLIME, TabGSL"),
    _leaf("GraphSAGE", "representation", "homogeneous GNNs",
          "repro.gnn.networks.GraphSAGE", "LSTM-GNN, GRAPE, GNNDP, IGRM"),
    _leaf("GAT", "representation", "homogeneous GNNs",
          "repro.gnn.networks.GAT", "GATE, WPN, FinGAT, FT-GAT"),
    _leaf("GIN", "representation", "homogeneous GNNs",
          "repro.gnn.networks.GIN", "DRSA-Net"),
    _leaf("gated GNN", "representation", "homogeneous GNNs",
          "repro.gnn.networks.GatedGNN", "Fi-GNN, Causal-GNN"),
    _leaf("graph autoencoder", "representation", "homogeneous GNNs",
          "repro.gnn.autoencoder.GraphAutoencoder", "MST-GRA, GAEOD"),
    _leaf("dense GCN (learned structure)", "representation", "homogeneous GNNs",
          "repro.gnn.dense.DenseGNN", "IDGL, SLAPS, LDS"),
    _leaf("RGCN", "representation", "heterogeneous GNNs",
          "repro.gnn.hetero.RGCNConv", "TabGNN substrate, AMG-DP"),
    _leaf("typed hetero GNN", "representation", "heterogeneous GNNs",
          "repro.gnn.hetero.HeteroGNN", "HSGNN (HAN), xFraud (HGT), GraphFC"),
    _leaf("hypergraph GNN", "representation", "hypergraph GNNs",
          "repro.gnn.hyper.HypergraphGNN", "HCL, HyTrel, PET"),
    _leaf("specialized: multiplex fusion", "representation", "specialized GNNs",
          "repro.models.tabgnn.TabGNN", "TabGNN"),
    _leaf("specialized: bipartite value messages", "representation", "specialized GNNs",
          "repro.models.grape.GRAPE", "GRAPE, IGRM"),
    _leaf("specialized: distance preservation", "representation", "specialized GNNs",
          "repro.models.lunar.LUNAR", "LUNAR"),
    _leaf("specialized: feature interaction", "representation", "specialized GNNs",
          "repro.models.fignn.FiGNN", "Fi-GNN"),
    _leaf("specialized: feature selection graph", "representation", "specialized GNNs",
          "repro.models.feature_graph.FeatureGraphClassifier", "T2G-Former, GRC"),
    _leaf("specialized: permutation invariance", "representation", "specialized GNNs",
          "repro.models.fate.FATE", "FATE"),
    _leaf("specialized: neighbor sampling", "representation", "specialized GNNs",
          "repro.models.care.CAREGNN", "CARE-GNN, RioGNN, PC-GNN, C-FATH"),
    _leaf("specialized: label adjustment", "representation", "specialized GNNs",
          "repro.models.pet.PET", "PET, SGANM"),
    _leaf("scalable mini-batch sampling", "representation", "homogeneous GNNs",
          "repro.gnn.sampling.SampledSAGE", "GraphSAGE, GraphSAINT (Sec. 6 scaling)"),
    # ----- Phase 4: Training Plans -----------------------------------------
    _leaf("feature reconstruction", "training", "learning tasks",
          "repro.training.tasks.FeatureReconstructionTask",
          "GINN, GEDI, EGG-GAE, GRAPE"),
    _leaf("denoising autoencoder", "training", "learning tasks",
          "repro.training.tasks.DenoisingAutoencoderTask", "SLAPS, HES-GSL"),
    _leaf("contrastive learning", "training", "learning tasks",
          "repro.training.tasks.ContrastiveTask", "SUBLIME, TabGSL, SSGNet"),
    _leaf("graph regularization", "training", "learning tasks",
          "repro.training.tasks.smoothness_regularizer",
          "IDGL, MST-GRA, GraphFC, ALLG"),
    _leaf("sparsity regularization", "training", "learning tasks",
          "repro.training.tasks.sparsity_regularizer", "Table2Graph"),
    _leaf("graph completion SSL", "training", "learning tasks",
          "repro.training.ssl.GraphCompletionTask", "Sec. 6 proposal (c)"),
    _leaf("neighborhood prediction SSL", "training", "learning tasks",
          "repro.training.ssl.NeighborhoodPredictionTask", "Sec. 6 proposal (d)"),
    _leaf("graph clustering SSL", "training", "learning tasks",
          "repro.training.ssl.GraphClusteringTask", "Sec. 6 proposal (b)"),
    _leaf("explanation preservation", "training", "learning tasks",
          "repro.explain.GNNExplainer", "xFraud (GNNExplainer)"),
    _leaf("end-to-end", "training", "strategies",
          "repro.training.strategies.train_end_to_end",
          "TabGSL, T2G-Former, LUNAR, TabGNN, PET, DGM, Fi-GNN"),
    _leaf("two-stage", "training", "strategies",
          "repro.training.strategies.train_two_stage",
          "SUBLIME, GRAPE, GINN, MedGraph"),
    _leaf("pretrain-finetune", "training", "strategies",
          "repro.training.strategies.train_pretrain_finetune", "ALLG, GraphFC"),
    _leaf("alternating", "training", "strategies",
          "repro.training.strategies.train_alternating", "GEDI"),
    _leaf("adversarial", "training", "strategies",
          "repro.training.strategies.train_adversarial_reconstruction", "GINN"),
    _leaf("bi-level", "training", "strategies",
          "repro.training.strategies.train_bilevel", "LDS, FIVES, FATE"),
]

# Table 1 scope axes claimed by the survey for itself.
SCOPE_AXES = {
    "TDP": "tabular data prediction — repro.models, repro.pipeline",
    "GRL": "graph representation learning — repro.gnn",
    "GSL": "graph structure learning — repro.construction.learned",
    "SSL": "self-supervised learning — repro.training.tasks",
    "TS": "training strategies — repro.training.strategies",
    "AT": "auxiliary tasks — repro.training.tasks",
    "App": "applications — repro.applications, examples/",
}


def resolve(dotted: str):
    """Import and return the object at a dotted path like 'repro.gnn.GCN'."""
    import importlib

    module_path, _, attr = dotted.rpartition(".")
    module = importlib.import_module(module_path)
    return getattr(module, attr)


def phases() -> List[str]:
    seen: List[str] = []
    for leaf in TAXONOMY:
        if leaf.phase not in seen:
            seen.append(leaf.phase)
    return seen


def leaves_by_phase() -> Dict[str, List[TaxonomyLeaf]]:
    grouped: Dict[str, List[TaxonomyLeaf]] = {}
    for leaf in TAXONOMY:
        grouped.setdefault(leaf.phase, []).append(leaf)
    return grouped


def taxonomy_tree() -> str:
    """Render the Figure 2 taxonomy as an ASCII tree."""
    lines = ["GNN4TDL"]
    for phase, leaves in leaves_by_phase().items():
        lines.append(f"├── {phase}")
        categories: Dict[str, List[TaxonomyLeaf]] = {}
        for leaf in leaves:
            categories.setdefault(leaf.category, []).append(leaf)
        for category, members in categories.items():
            lines.append(f"│   ├── {category}")
            for member in members:
                lines.append(f"│   │   ├── {member.name}  [{member.survey_examples}]")
    return "\n".join(lines)


def verify_all_leaves() -> Dict[str, bool]:
    """Check that every taxonomy leaf resolves to a real library object."""
    return {leaf.name: resolve(leaf.implementation) is not None for leaf in TAXONOMY}
