"""Auxiliary learning tasks (survey Sec. 4.4.1, Table 7).

Each task is a module producing an extra differentiable loss term that is
*added* to the main supervised loss:

* :class:`FeatureReconstructionTask` — decode embeddings back to the input
  features (GINN / GRAPE / ALLG family; "Representation Enhancement").
* :class:`DenoisingAutoencoderTask` — corrupt features, reconstruct the
  corrupted entries from the graph-encoded representation (SLAPS / HES-GSL).
* :class:`ContrastiveTask` — NT-Xent over two stochastically corrupted
  views (SUBLIME / TabGSL / SSGNet).
* Regularizers — Dirichlet smoothness, degree/connectivity and sparsity
  penalties on (learned) graph structures (IDGL / Table2Graph / ALLG).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor, ops


class FeatureReconstructionTask(nn.Module):
    """Reconstruct input features from embeddings via a linear decoder.

    ``loss(embeddings)`` returns the MSE between decoded features and the
    (observed entries of the) original features.
    """

    def __init__(
        self,
        embed_dim: int,
        num_features: int,
        rng: np.random.Generator,
        target: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.decoder = nn.Linear(embed_dim, num_features, rng)
        self.target = None if target is None else np.asarray(target, dtype=np.float64)

    def loss(self, embeddings: Tensor, target: Optional[np.ndarray] = None) -> Tensor:
        y = target if target is not None else self.target
        if y is None:
            raise ValueError("no reconstruction target provided")
        observed = ~np.isnan(y)
        decoded = self.decoder(embeddings)
        diff = ops.sub(decoded, Tensor(np.nan_to_num(y, nan=0.0)))
        masked = ops.mul(diff, Tensor(observed.astype(np.float64)))
        return ops.div(
            ops.sum(ops.mul(masked, masked)), Tensor(float(max(1, observed.sum())))
        )

    def forward(self, embeddings: Tensor) -> Tensor:
        return self.decoder(embeddings)


class DenoisingAutoencoderTask(nn.Module):
    """SLAPS-style denoising: zero a random subset of feature cells, push the
    corrupted view through the encoder, and reconstruct the *corrupted*
    entries only.

    ``encoder_embed`` must accept a replacement feature tensor (all Table 5
    networks do via ``embed(x=...)``).
    """

    def __init__(
        self,
        embed_dim: int,
        features: np.ndarray,
        rng: np.random.Generator,
        mask_rate: float = 0.2,
    ) -> None:
        super().__init__()
        if not 0.0 < mask_rate < 1.0:
            raise ValueError("mask_rate must be in (0, 1)")
        self.features = np.asarray(features, dtype=np.float64)
        self.decoder = nn.Linear(embed_dim, self.features.shape[1], rng)
        self.mask_rate = mask_rate
        self._rng = rng

    def loss(self, encoder_embed: Callable[[Tensor], Tensor]) -> Tensor:
        corrupt = self._rng.random(self.features.shape) < self.mask_rate
        corrupted = np.where(corrupt, 0.0, self.features)
        z = encoder_embed(Tensor(corrupted))
        decoded = self.decoder(z)
        diff = ops.sub(decoded, Tensor(self.features))
        masked = ops.mul(diff, Tensor(corrupt.astype(np.float64)))
        return ops.div(
            ops.sum(ops.mul(masked, masked)), Tensor(float(max(1, corrupt.sum())))
        )


class ContrastiveTask(nn.Module):
    """Two-view NT-Xent contrastive auxiliary (SUBLIME/TabGSL style).

    Views are created by independent random feature masking (SCARF-style
    corruption); both views pass through the same graph encoder, then a
    projection head, and matching rows are pulled together.
    """

    def __init__(
        self,
        embed_dim: int,
        features: np.ndarray,
        rng: np.random.Generator,
        mask_rate: float = 0.2,
        projection_dim: int = 32,
        temperature: float = 0.5,
    ) -> None:
        super().__init__()
        self.features = np.asarray(features, dtype=np.float64)
        self.projection = nn.MLP(embed_dim, (projection_dim,), projection_dim, rng)
        self.mask_rate = mask_rate
        self.temperature = temperature
        self._rng = rng

    def _view(self) -> Tensor:
        mask = self._rng.random(self.features.shape) < self.mask_rate
        return Tensor(np.where(mask, 0.0, self.features))

    def loss(self, encoder_embed: Callable[[Tensor], Tensor]) -> Tensor:
        z1 = self.projection(encoder_embed(self._view()))
        z2 = self.projection(encoder_embed(self._view()))
        return nn.nt_xent_loss(z1, z2, temperature=self.temperature)


# ----------------------------------------------------------------------
# graph regularizers (Table 7: "Graph Regularization" / "Sparsity")
# ----------------------------------------------------------------------
def smoothness_regularizer(embeddings: Tensor, edge_index: np.ndarray,
                           edge_weight: Optional[np.ndarray] = None) -> Tensor:
    """Dirichlet energy: mean squared embedding difference across edges.

    Penalizing it encourages adjacent nodes to have similar embeddings —
    the "reducing adjacent nodes' embeddings" regularizer of IDGL/GraphFC.
    """
    if edge_index.size == 0:
        return Tensor(0.0)
    zi = ops.gather_rows(embeddings, edge_index[0])
    zj = ops.gather_rows(embeddings, edge_index[1])
    diff = ops.sub(zi, zj)
    sq = ops.sum(ops.mul(diff, diff), axis=1)
    if edge_weight is not None:
        sq = ops.mul(sq, Tensor(np.asarray(edge_weight, dtype=np.float64)))
    return ops.mean(sq)


def degree_regularizer(dense_adjacency: Tensor, eps: float = 1e-8) -> Tensor:
    """Connectivity penalty ``-mean(log(degree))`` for learned dense graphs.

    Prevents the degenerate all-zero adjacency that pure sparsity pressure
    produces (IDGL's log-barrier on node degrees).
    """
    degrees = ops.sum(dense_adjacency, axis=1)
    return ops.neg(ops.mean(ops.log(ops.add(degrees, Tensor(eps)))))


def sparsity_regularizer(dense_adjacency: Tensor) -> Tensor:
    """L1 sparsity: mean absolute edge weight (Table2Graph)."""
    return ops.mean(ops.absolute(dense_adjacency))
