"""Graph-based self-supervised tasks from the survey's Sec. 6 proposals.

The survey sketches six SSL tasks for tabular graphs ("Graph-based SSL for
Tabular Data"); this module implements the structural ones that complement
the feature-space tasks in :mod:`repro.training.tasks`:

* :class:`GraphCompletionTask` — predict held-out edges from embeddings
  (the "Graph Completion" proposal; link-prediction auxiliary);
* :class:`NeighborhoodPredictionTask` — classify whether two nodes are
  neighbors from their embeddings (the "Neighborhood Prediction" proposal);
* :class:`GraphClusteringTask` — pull same-cluster embeddings together
  around learnable centroids (the "Graph Clustering" proposal, DEC-style).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor, ops


def _sample_negative_pairs(
    num_nodes: int, count: int, existing: set, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``count`` node pairs that are not in ``existing``."""
    pairs = []
    attempts = 0
    while len(pairs) < count and attempts < 50 * count:
        i = int(rng.integers(0, num_nodes))
        j = int(rng.integers(0, num_nodes))
        attempts += 1
        if i == j or (i, j) in existing:
            continue
        pairs.append((i, j))
    if not pairs:
        raise RuntimeError("could not sample negative pairs; graph too dense")
    return np.array(pairs, dtype=np.int64).T


class GraphCompletionTask(nn.Module):
    """Link-prediction auxiliary: score held-out positive edges above negatives.

    Each call holds out a random subset of edges, scores pairs with a
    bilinear product of embeddings, and applies logistic loss against
    sampled non-edges.
    """

    def __init__(
        self,
        embed_dim: int,
        edge_index: np.ndarray,
        rng: np.random.Generator,
        holdout: float = 0.3,
    ) -> None:
        super().__init__()
        if not 0.0 < holdout <= 1.0:
            raise ValueError("holdout must be in (0, 1]")
        self.edge_index = np.asarray(edge_index, dtype=np.int64)
        if self.edge_index.shape[1] == 0:
            raise ValueError("graph has no edges to complete")
        self.holdout = holdout
        self.bilinear = nn.Linear(embed_dim, embed_dim, rng, bias=False)
        self._rng = rng
        self._edge_set = set(map(tuple, self.edge_index.T))

    def loss(self, embeddings: Tensor) -> Tensor:
        num_edges = self.edge_index.shape[1]
        take = max(1, int(num_edges * self.holdout))
        pick = self._rng.choice(num_edges, size=take, replace=False)
        positives = self.edge_index[:, pick]
        negatives = _sample_negative_pairs(
            embeddings.shape[0], take, self._edge_set, self._rng
        )
        pairs = np.concatenate([positives, negatives], axis=1)
        labels = np.concatenate([np.ones(positives.shape[1]),
                                 np.zeros(negatives.shape[1])])
        zi = ops.gather_rows(embeddings, pairs[0])
        zj = ops.gather_rows(embeddings, pairs[1])
        logits = ops.sum(ops.mul(self.bilinear(zi), zj), axis=1)
        return nn.binary_cross_entropy_with_logits(logits, labels)


class NeighborhoodPredictionTask(nn.Module):
    """Classify (node, candidate) pairs as neighbor / non-neighbor.

    Unlike :class:`GraphCompletionTask` the pair representation is a
    concatenation through an MLP, letting the auxiliary learn asymmetric
    neighborhood structure.
    """

    def __init__(
        self,
        embed_dim: int,
        edge_index: np.ndarray,
        rng: np.random.Generator,
        samples_per_call: int = 256,
    ) -> None:
        super().__init__()
        self.edge_index = np.asarray(edge_index, dtype=np.int64)
        if self.edge_index.shape[1] == 0:
            raise ValueError("graph has no edges")
        self.samples_per_call = samples_per_call
        self.scorer = nn.MLP(2 * embed_dim, (embed_dim,), 1, rng)
        self._rng = rng
        self._edge_set = set(map(tuple, self.edge_index.T))

    def loss(self, embeddings: Tensor) -> Tensor:
        take = min(self.samples_per_call, self.edge_index.shape[1])
        pick = self._rng.choice(self.edge_index.shape[1], size=take, replace=False)
        positives = self.edge_index[:, pick]
        negatives = _sample_negative_pairs(
            embeddings.shape[0], take, self._edge_set, self._rng
        )
        pairs = np.concatenate([positives, negatives], axis=1)
        labels = np.concatenate([np.ones(take), np.zeros(negatives.shape[1])])
        zi = ops.gather_rows(embeddings, pairs[0])
        zj = ops.gather_rows(embeddings, pairs[1])
        logits = self.scorer(ops.concat([zi, zj], axis=1)).reshape(-1)
        return nn.binary_cross_entropy_with_logits(logits, labels)


class GraphClusteringTask(nn.Module):
    """DEC-style clustering auxiliary: sharpen soft assignments to centroids.

    Maintains ``num_clusters`` learnable centroids; the loss is the KL
    divergence between the soft assignment of embeddings to centroids and
    its sharpened (squared-and-renormalized) target distribution, pulling
    embeddings toward well-separated clusters.
    """

    def __init__(
        self,
        embed_dim: int,
        num_clusters: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if num_clusters < 2:
            raise ValueError("need at least two clusters")
        self.centroids = nn.Parameter(rng.normal(0.0, 0.5, size=(num_clusters, embed_dim)))
        self.num_clusters = num_clusters

    def soft_assignments(self, embeddings: Tensor) -> Tensor:
        """Student-t soft assignment q_ik (rows sum to 1)."""
        n = embeddings.shape[0]
        z = embeddings.reshape(n, 1, embeddings.shape[1])
        c = self.centroids.reshape(1, self.num_clusters, self.centroids.shape[1])
        diff = ops.sub(z, c)
        sq = ops.sum(ops.mul(diff, diff), axis=2)  # (n, k)
        kernel = ops.power(ops.add(Tensor(1.0), sq), -1.0)
        total = ops.sum(kernel, axis=1, keepdims=True)
        return ops.div(kernel, total)

    def loss(self, embeddings: Tensor) -> Tensor:
        q = self.soft_assignments(embeddings)
        # Sharpened target: p ∝ q^2 / cluster mass, treated as a constant.
        q_data = q.data
        weight = q_data**2 / np.maximum(q_data.sum(axis=0, keepdims=True), 1e-12)
        p = weight / np.maximum(weight.sum(axis=1, keepdims=True), 1e-12)
        log_q = ops.log(ops.add(q, Tensor(1e-12)))
        # KL(p || q) up to the constant entropy of p.
        return ops.neg(ops.mean(ops.sum(ops.mul(Tensor(p), log_q), axis=1)))
