"""Training plans (survey Sec. 4.4): learning tasks and training strategies.

* :mod:`repro.training.trainer` — full-batch semi-supervised trainer with
  early stopping.
* :mod:`repro.training.tasks` — auxiliary learning tasks (Table 7): feature
  reconstruction, denoising autoencoder, contrastive learning, graph
  smoothness / degree / sparsity regularizers.
* :mod:`repro.training.strategies` — training strategies (Table 8):
  end-to-end, two-stage, pretrain-finetune, alternating aux-weight
  adaptation, adversarial reconstruction, bi-level alternation.
"""

from repro.training.trainer import Trainer, TrainResult
from repro.training.tasks import (
    ContrastiveTask,
    DenoisingAutoencoderTask,
    FeatureReconstructionTask,
    degree_regularizer,
    smoothness_regularizer,
    sparsity_regularizer,
)
from repro.training.ssl import (
    GraphClusteringTask,
    GraphCompletionTask,
    NeighborhoodPredictionTask,
)
from repro.training.strategies import (
    train_alternating,
    train_adversarial_reconstruction,
    train_bilevel,
    train_end_to_end,
    train_pretrain_finetune,
    train_two_stage,
)

__all__ = [
    "Trainer",
    "TrainResult",
    "ContrastiveTask",
    "DenoisingAutoencoderTask",
    "FeatureReconstructionTask",
    "degree_regularizer",
    "smoothness_regularizer",
    "sparsity_regularizer",
    "GraphClusteringTask",
    "GraphCompletionTask",
    "NeighborhoodPredictionTask",
    "train_alternating",
    "train_adversarial_reconstruction",
    "train_bilevel",
    "train_end_to_end",
    "train_pretrain_finetune",
    "train_two_stage",
]
