"""Training strategies (survey Sec. 4.4.2, Table 8).

Six orchestration patterns over :class:`repro.training.Trainer`:
end-to-end, two-stage, pretrain→finetune, alternating aux-weight
adaptation (GEDI), adversarial feature reconstruction (GINN), and
bi-level alternation between structure and GNN parameters (LDS/FATE).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.tensor import Tensor, ops
from repro.training.trainer import Trainer, TrainResult


def train_end_to_end(
    model: nn.Module,
    loss_fn: Callable[[], Tensor],
    val_score_fn: Optional[Callable[[], float]] = None,
    lr: float = 0.01,
    max_epochs: int = 200,
    patience: Optional[int] = 30,
    weight_decay: float = 0.0,
) -> TrainResult:
    """The default strategy: jointly optimize everything against one loss."""
    optimizer = nn.Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    trainer = Trainer(model, optimizer, max_epochs=max_epochs, patience=patience)
    return trainer.fit(loss_fn, val_score_fn)


def train_two_stage(
    stage1: Callable[[], object],
    stage2: Callable[[object], TrainResult],
) -> Tuple[object, TrainResult]:
    """Sequential learning (SUBLIME/GRAPE/MedGraph pattern).

    ``stage1`` learns a structure or representation (returning any artifact:
    a graph, embeddings, an imputed table); ``stage2`` consumes it and
    trains the downstream predictor.
    """
    artifact = stage1()
    result = stage2(artifact)
    return artifact, result


def train_pretrain_finetune(
    model: nn.Module,
    pretrain_loss_fn: Callable[[], Tensor],
    finetune_loss_fn: Callable[[], Tensor],
    val_score_fn: Optional[Callable[[], float]] = None,
    pretrain_epochs: int = 100,
    finetune_epochs: int = 200,
    pretrain_lr: float = 0.01,
    finetune_lr: float = 0.005,
    patience: Optional[int] = 30,
) -> Tuple[TrainResult, TrainResult]:
    """Self-supervised pretraining then supervised finetuning (GraphFC/ALLG)."""
    pre_opt = nn.Adam(model.parameters(), lr=pretrain_lr)
    pre_trainer = Trainer(
        model, pre_opt, max_epochs=pretrain_epochs, patience=None, restore_best=False
    )
    pre_result = pre_trainer.fit(pretrain_loss_fn)
    fine_opt = nn.Adam(model.parameters(), lr=finetune_lr)
    fine_trainer = Trainer(model, fine_opt, max_epochs=finetune_epochs, patience=patience)
    fine_result = fine_trainer.fit(finetune_loss_fn, val_score_fn)
    return pre_result, fine_result


def train_alternating(
    model: nn.Module,
    main_loss_fn: Callable[[], Tensor],
    aux_loss_fn: Callable[[], Tensor],
    val_score_fn: Callable[[], float],
    lr: float = 0.01,
    max_epochs: int = 200,
    aux_weight: float = 1.0,
    adapt_every: int = 10,
    adapt_factor: float = 0.5,
    patience: Optional[int] = 30,
) -> Tuple[TrainResult, float]:
    """GEDI-style adaptive weighting of the auxiliary reconstruction task.

    Every ``adapt_every`` epochs the validation score is compared against
    the previous window; if it worsened, the auxiliary weight is multiplied
    by ``adapt_factor`` (guarding against negative transfer), otherwise it
    is kept.  Returns the result and the final auxiliary weight.
    """
    optimizer = nn.Adam(model.parameters(), lr=lr)
    trainer = Trainer(model, optimizer, max_epochs=adapt_every, patience=None,
                      restore_best=False)
    weight = aux_weight
    best_score = -np.inf
    history_loss: list[float] = []
    history_val: list[float] = []
    best_state = None
    rounds = max(1, max_epochs // adapt_every)
    bad_rounds = 0
    round_patience = None if patience is None else max(1, patience // adapt_every)
    last_window_score = -np.inf
    for _ in range(rounds):
        current_weight = weight

        def combined() -> Tensor:
            return ops.add(main_loss_fn(), ops.mul(Tensor(current_weight), aux_loss_fn()))

        result = trainer.fit(combined, val_score_fn)
        history_loss.extend(result.history["loss"])
        history_val.extend(result.history["val_score"])
        window_score = float(np.mean(result.history["val_score"]))
        if window_score < last_window_score:
            weight *= adapt_factor
        last_window_score = window_score
        if result.best_val_score > best_score:
            best_score = result.best_val_score
            best_state = model.state_dict()
            bad_rounds = 0
        else:
            bad_rounds += 1
            if round_patience is not None and bad_rounds > round_patience:
                break
    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    final = TrainResult(
        epochs_run=len(history_loss),
        best_epoch=int(np.argmax(history_val)) + 1 if history_val else 0,
        best_val_score=best_score,
        history={"loss": history_loss, "val_score": history_val},
    )
    return final, weight


def train_adversarial_reconstruction(
    generator: nn.Module,
    discriminator: nn.Module,
    real_rows_fn: Callable[[], np.ndarray],
    fake_rows_fn: Callable[[], Tensor],
    recon_loss_fn: Callable[[], Tensor],
    epochs: int = 100,
    gen_lr: float = 0.01,
    disc_lr: float = 0.01,
    adv_weight: float = 0.1,
) -> dict:
    """GINN-style adversarial training of a feature reconstructor.

    The discriminator learns to tell real feature rows from reconstructed
    ones; the generator minimizes reconstruction error *plus* the
    adversarial term that makes its outputs look real.
    """
    gen_opt = nn.Adam(generator.parameters(), lr=gen_lr)
    disc_opt = nn.Adam(discriminator.parameters(), lr=disc_lr)
    history = {"gen_loss": [], "disc_loss": []}
    for _ in range(epochs):
        generator.train()
        discriminator.train()
        # --- discriminator step ---
        real = real_rows_fn()
        fake = fake_rows_fn().detach()
        logits_real = discriminator(Tensor(real))
        logits_fake = discriminator(fake)
        disc_loss = ops.add(
            nn.binary_cross_entropy_with_logits(logits_real, np.ones(real.shape[0])),
            nn.binary_cross_entropy_with_logits(logits_fake, np.zeros(fake.shape[0])),
        )
        disc_opt.zero_grad()
        disc_loss.backward()
        disc_opt.step()
        # --- generator step ---
        fake = fake_rows_fn()
        logits_fake = discriminator(fake)
        adv_term = nn.binary_cross_entropy_with_logits(
            logits_fake, np.ones(fake.shape[0])
        )
        gen_loss = ops.add(recon_loss_fn(), ops.mul(Tensor(adv_weight), adv_term))
        gen_opt.zero_grad()
        gen_loss.backward()
        gen_opt.step()
        history["gen_loss"].append(float(gen_loss.item()))
        history["disc_loss"].append(float(disc_loss.item()))
    generator.eval()
    discriminator.eval()
    return history


def train_bilevel(
    structure_params: Sequence[nn.Parameter],
    gnn_params: Sequence[nn.Parameter],
    loss_fn: Callable[[], Tensor],
    val_loss_fn: Callable[[], Tensor],
    outer_steps: int = 30,
    inner_steps: int = 5,
    structure_lr: float = 0.05,
    gnn_lr: float = 0.01,
) -> dict:
    """Bi-level-style alternation (LDS/FIVES/FATE pattern).

    Inner loop: train GNN parameters on the training loss with the structure
    frozen.  Outer loop: take one step on the *structure* parameters against
    the validation loss (the first-order/alternating approximation of true
    bi-level optimization used in practice).
    """
    structure_opt = nn.Adam(list(structure_params), lr=structure_lr)
    gnn_opt = nn.Adam(list(gnn_params), lr=gnn_lr)
    history = {"train_loss": [], "val_loss": []}
    for _ in range(outer_steps):
        for _ in range(inner_steps):
            loss = loss_fn()
            gnn_opt.zero_grad()
            structure_opt.zero_grad()
            loss.backward()
            gnn_opt.step()
        history["train_loss"].append(float(loss.item()))
        val_loss = val_loss_fn()
        structure_opt.zero_grad()
        gnn_opt.zero_grad()
        val_loss.backward()
        structure_opt.step()
        history["val_loss"].append(float(val_loss.item()))
    return history
