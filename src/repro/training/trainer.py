"""Full-batch trainer with early stopping for semi-supervised TDL.

The trainer is deliberately closure-based: the caller supplies a loss
closure (which runs the forward pass, including any auxiliary tasks) and an
optional validation-score closure.  This keeps one trainer serving every
model family in the library — sparse GNNs, dense structure learners,
bipartite imputers and plain MLPs alike.

When a :class:`~repro.obs.MetricsRegistry` is supplied, :meth:`Trainer.fit`
reports per-epoch progress into it — epoch counter, epoch-duration
histogram, and live loss / val-score / best-score gauges — so a pipeline
run scraped mid-training shows where the optimizer stands.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import nn
from repro.obs import MetricsRegistry
from repro.tensor import Tensor


@dataclasses.dataclass
class TrainResult:
    """Outcome of a training run."""

    epochs_run: int
    best_epoch: int
    best_val_score: float
    history: Dict[str, List[float]]

    def final_loss(self) -> float:
        return self.history["loss"][-1]


class Trainer:
    """Train a model by repeatedly minimizing a loss closure.

    Parameters
    ----------
    model:
        The module whose parameters are optimized (used for train/eval mode
        switching and best-state checkpointing).
    optimizer:
        Any :class:`repro.nn.optim.Optimizer` over the model's parameters.
    max_epochs:
        Upper bound on epochs.
    patience:
        Early-stopping patience measured in epochs without val improvement;
        ``None`` disables early stopping.
    grad_clip:
        Optional global gradient-norm clip.
    registry:
        Optional metrics registry; when set, :meth:`fit` records per-epoch
        loss/val-score gauges, an epoch counter, and an epoch-duration
        histogram under the ``repro_train_*`` prefix.
    """

    def __init__(
        self,
        model: nn.Module,
        optimizer: nn.optim.Optimizer,
        max_epochs: int = 200,
        patience: Optional[int] = 30,
        grad_clip: Optional[float] = None,
        restore_best: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.max_epochs = max_epochs
        self.patience = patience
        self.grad_clip = grad_clip
        self.restore_best = restore_best
        self.registry = registry

    def fit(
        self,
        loss_fn: Callable[[], Tensor],
        val_score_fn: Optional[Callable[[], float]] = None,
        scheduler: Optional[nn.optim._Scheduler] = None,
    ) -> TrainResult:
        """Run the optimization loop.

        ``val_score_fn`` returns a *higher-is-better* score computed in eval
        mode; when omitted, the negative training loss is used so early
        stopping still has a signal.
        """
        history: Dict[str, List[float]] = {"loss": [], "val_score": []}
        best_score = -np.inf
        best_epoch = -1
        best_state: Optional[Dict[str, np.ndarray]] = None
        bad_epochs = 0
        epoch = 0

        epochs_total = loss_gauge = score_gauge = best_gauge = None
        epoch_seconds = None
        if self.registry is not None:
            epochs_total = self.registry.counter(
                "repro_train_epochs_total", "Optimizer epochs completed."
            )
            epoch_seconds = self.registry.histogram(
                "repro_train_epoch_duration_seconds",
                "Wall-clock seconds per training epoch.",
            )
            loss_gauge = self.registry.gauge(
                "repro_train_loss", "Training loss of the most recent epoch."
            )
            score_gauge = self.registry.gauge(
                "repro_train_val_score",
                "Validation score (higher is better) of the most recent epoch.",
            )
            best_gauge = self.registry.gauge(
                "repro_train_best_val_score",
                "Best validation score observed so far.",
            )

        for epoch in range(1, self.max_epochs + 1):
            epoch_started = time.perf_counter()
            self.model.train()
            loss = loss_fn()
            self.optimizer.zero_grad()
            loss.backward()
            if self.grad_clip is not None:
                self.optimizer.clip_grad_norm(self.grad_clip)
            self.optimizer.step()
            if scheduler is not None:
                scheduler.step()
            loss_value = float(loss.item())
            history["loss"].append(loss_value)

            if val_score_fn is not None:
                self.model.eval()
                score = float(val_score_fn())
            else:
                score = -loss_value
            history["val_score"].append(score)

            if epochs_total is not None:
                epochs_total.inc()
                epoch_seconds.observe(time.perf_counter() - epoch_started)
                loss_gauge.set(loss_value)
                score_gauge.set(score)
                best_gauge.set(max(best_score, score))

            if score > best_score:
                best_score = score
                best_epoch = epoch
                bad_epochs = 0
                if self.restore_best:
                    best_state = self.model.state_dict()
            else:
                bad_epochs += 1
                if self.patience is not None and bad_epochs > self.patience:
                    break

        if self.restore_best and best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return TrainResult(
            epochs_run=epoch,
            best_epoch=best_epoch,
            best_val_score=best_score,
            history=history,
        )
