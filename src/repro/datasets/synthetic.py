"""Synthetic tabular data generators.

Each generator plants a specific, controllable structure so that the
survey's qualitative claims become testable: a method that models the
planted structure should beat one that ignores it, and the advantage should
vanish when the structure is absent (e.g. ``cluster_strength=0``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.tabular import TabularDataset


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def make_classification(
    n: int = 400,
    num_features: int = 12,
    num_informative: int = 6,
    num_classes: int = 2,
    class_sep: float = 1.5,
    flip_y: float = 0.02,
    seed=0,
) -> TabularDataset:
    """Generic linear-ish classification data (sklearn-like).

    Class centroids are drawn on informative dimensions; the remaining
    features are pure noise.  Serves as the "typical tabular data" control
    where tree/linear baselines are competitive.
    """
    rng = _rng(seed)
    if num_informative > num_features:
        raise ValueError("num_informative cannot exceed num_features")
    centroids = rng.normal(0.0, class_sep, size=(num_classes, num_informative))
    y = rng.integers(0, num_classes, size=n)
    x = rng.normal(size=(n, num_features))
    x[:, :num_informative] += centroids[y]
    flip = rng.random(n) < flip_y
    y[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
    task = "binary" if num_classes == 2 else "multiclass"
    return TabularDataset(x, None, y, task)


def make_regression(
    n: int = 400,
    num_features: int = 10,
    num_informative: int = 5,
    noise: float = 0.1,
    seed=0,
) -> TabularDataset:
    """Linear regression data with Gaussian noise."""
    rng = _rng(seed)
    x = rng.normal(size=(n, num_features))
    coef = np.zeros(num_features)
    coef[:num_informative] = rng.normal(0.0, 1.0, size=num_informative)
    y = x @ coef + rng.normal(0.0, noise, size=n)
    return TabularDataset(x, None, y, "regression")


def make_correlated_instances(
    n: int = 400,
    num_features: int = 16,
    num_classes: int = 3,
    clusters_per_class: int = 2,
    cluster_strength: float = 1.0,
    noise_features: int = 6,
    flip_y: float = 0.0,
    seed=0,
) -> TabularDataset:
    """Instance-correlated data (survey Sec. 2.5a).

    Instances within a cluster share a class label and a feature prototype;
    ``cluster_strength`` interpolates between pure noise (0) and tight,
    label-aligned clusters (→ large).  kNN instance graphs built on this
    data are homophilic, which is exactly the condition under which the
    survey argues instance-graph GNNs pay off.
    """
    rng = _rng(seed)
    informative = num_features - noise_features
    if informative <= 0:
        raise ValueError("need at least one informative feature")
    num_clusters = num_classes * clusters_per_class
    prototypes = rng.normal(0.0, 1.0, size=(num_clusters, informative))
    cluster = rng.integers(0, num_clusters, size=n)
    y = cluster % num_classes
    x = rng.normal(size=(n, num_features))
    x[:, :informative] += cluster_strength * prototypes[cluster]
    if flip_y > 0:
        flip = rng.random(n) < flip_y
        y = y.copy()
        y[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
    task = "binary" if num_classes == 2 else "multiclass"
    return TabularDataset(x, None, y, task)


def make_feature_interaction(
    n: int = 600,
    num_pairs: int = 2,
    noise_features: int = 4,
    noise: float = 0.1,
    seed=0,
) -> TabularDataset:
    """Labels depend only on XOR-style *products* of feature pairs (Sec. 2.5b).

    ``y = 1`` iff the product of each designated pair is positive for a
    majority of pairs.  No single feature is marginally informative, so
    models unable to represent feature interactions (logistic regression)
    sit at chance while interaction-aware models (feature-graph GNNs, trees)
    succeed.
    """
    rng = _rng(seed)
    num_features = 2 * num_pairs + noise_features
    x = rng.normal(size=(n, num_features))
    votes = np.zeros(n)
    for p in range(num_pairs):
        votes += np.sign(x[:, 2 * p] * x[:, 2 * p + 1])
    y = (votes + rng.normal(0.0, noise, size=n) > 0).astype(np.int64)
    return TabularDataset(x, None, y, "binary")


def make_ctr(
    n: int = 3000,
    num_users: int = 30,
    num_items: int = 20,
    num_context: int = 8,
    latent_dim: int = 4,
    interaction_scale: float = 2.5,
    seed=0,
) -> TabularDataset:
    """Click-through-rate data: categorical (user, item, context) fields.

    Click probability is a logistic latent-factor model
    ``sigma(<u_f, i_f> + bias)`` so the signal lives in the *interaction*
    between the user and item fields — the structure Fi-GNN-style feature
    graphs are designed to capture (Sec. 5.2).  Field cardinalities are kept
    small relative to ``n`` so every user/item is observed often enough for
    embedding models to recover the latent factors.
    """
    rng = _rng(seed)
    user_factors = rng.normal(0.0, 1.0, size=(num_users, latent_dim))
    item_factors = rng.normal(0.0, 1.0, size=(num_items, latent_dim))
    context_bias = rng.normal(0.0, 0.3, size=num_context)
    users = rng.integers(0, num_users, size=n)
    items = rng.integers(0, num_items, size=n)
    contexts = rng.integers(0, num_context, size=n)
    logits = (
        (user_factors[users] * item_factors[items]).sum(axis=1) * interaction_scale
        + context_bias[contexts]
    )
    prob = 1.0 / (1.0 + np.exp(-logits))
    y = (rng.random(n) < prob).astype(np.int64)
    categorical = np.stack([users, items, contexts], axis=1)
    return TabularDataset(
        np.zeros((n, 0)),
        categorical,
        y,
        "binary",
        cardinalities=[num_users, num_items, num_context],
        categorical_names=["user", "item", "context"],
    )


def make_ehr(
    n: int = 500,
    num_codes: int = 50,
    codes_per_patient: Tuple[int, int] = (3, 8),
    num_diseases: int = 3,
    comorbidity: float = 0.8,
    seed=0,
) -> TabularDataset:
    """Electronic-health-record-like data (Sec. 5.3).

    Diagnosis codes cluster into disease groups; each patient draws codes
    mostly from their disease's group (rate ``comorbidity``) plus random
    others.  The label is the disease.  Code co-occurrence forms the
    patient-code heterogeneous graph (GCT/HSGNN style).

    The record is returned as ``num_codes`` binary numerical columns
    (multi-hot) plus one categorical "primary code" column.
    """
    rng = _rng(seed)
    code_group = rng.integers(0, num_diseases, size=num_codes)
    y = rng.integers(0, num_diseases, size=n)
    multi_hot = np.zeros((n, num_codes))
    primary = np.zeros(n, dtype=np.int64)
    group_members = [np.nonzero(code_group == d)[0] for d in range(num_diseases)]
    lo, hi = codes_per_patient
    for i in range(n):
        k = int(rng.integers(lo, hi + 1))
        own = group_members[y[i]]
        picks = []
        for _ in range(k):
            if own.size and rng.random() < comorbidity:
                picks.append(int(rng.choice(own)))
            else:
                picks.append(int(rng.integers(0, num_codes)))
        multi_hot[i, picks] = 1.0
        primary[i] = picks[0]
    return TabularDataset(
        multi_hot,
        primary.reshape(-1, 1),
        y,
        "binary" if num_diseases == 2 else "multiclass",
        cardinalities=[num_codes],
        numerical_names=[f"code_{c}" for c in range(num_codes)],
        categorical_names=["primary_code"],
    )


def make_anomaly(
    n_inliers: int = 450,
    n_outliers: int = 50,
    num_features: int = 8,
    num_clusters: int = 3,
    outlier_scale: float = 4.0,
    local_fraction: float = 0.6,
    seed=0,
) -> TabularDataset:
    """Anomaly-detection data (Sec. 5.1): clustered inliers, two outlier kinds.

    ``y = 1`` marks outliers.  A ``local_fraction`` of the outliers are
    *local*: offset a few cluster widths from a cluster center, so they look
    unremarkable marginally (defeating per-feature z-scores) but sit in
    low-density neighborhoods (caught by LUNAR-style local methods).  The
    rest are *global* uniform-box outliers that any detector should find.
    """
    rng = _rng(seed)
    if not 0.0 <= local_fraction <= 1.0:
        raise ValueError("local_fraction must be in [0, 1]")
    centers = rng.normal(0.0, 2.0, size=(num_clusters, num_features))
    assign = rng.integers(0, num_clusters, size=n_inliers)
    inliers = centers[assign] + rng.normal(0.0, 0.35, size=(n_inliers, num_features))
    n_local = int(round(n_outliers * local_fraction))
    n_global = n_outliers - n_local
    local_assign = rng.integers(0, num_clusters, size=n_local)
    offsets = rng.normal(0.0, 1.0, size=(n_local, num_features))
    offsets /= np.linalg.norm(offsets, axis=1, keepdims=True) + 1e-12
    radii = rng.uniform(1.2, 2.0, size=(n_local, 1))
    local = centers[local_assign] + offsets * radii
    global_out = rng.uniform(
        -outlier_scale, outlier_scale, size=(n_global, num_features)
    )
    x = np.concatenate([inliers, local, global_out], axis=0)
    y = np.concatenate([np.zeros(n_inliers), np.ones(n_outliers)]).astype(np.int64)
    perm = rng.permutation(len(y))
    return TabularDataset(x[perm], None, y[perm], "binary")


def make_fraud(
    n: int = 600,
    fraud_rate: float = 0.08,
    num_rings: int = 6,
    num_features: int = 10,
    num_devices: int = 300,
    num_merchants: int = 150,
    camouflage: float = 0.15,
    feature_signal: float = 0.15,
    seed=0,
) -> TabularDataset:
    """Imbalanced fraud data with relational structure (Sec. 5.1 & 5.5).

    Fraudsters organize into rings that share devices and merchants
    (categorical columns), the intrinsic relations used by multi-relational
    fraud detectors (CARE-GNN/TabGNN style).  ``camouflage`` is the rate at
    which fraudsters use benign devices to hide — raising it weakens
    relation homophily.  ``feature_signal`` controls how separable fraud is
    from the flat features alone; device/merchant cardinalities are large so
    benign same-value collisions are rare and the relational signal is
    genuinely concentrated in the rings.
    """
    rng = _rng(seed)
    y = (rng.random(n) < fraud_rate).astype(np.int64)
    ring = np.where(y == 1, rng.integers(0, num_rings, size=n), -1)
    # Reserve a small pool of devices/merchants per ring.
    ring_devices = rng.integers(0, num_devices, size=(num_rings, 3))
    ring_merchants = rng.integers(0, num_merchants, size=(num_rings, 2))
    devices = rng.integers(0, num_devices, size=n)
    merchants = rng.integers(0, num_merchants, size=n)
    for i in np.nonzero(y == 1)[0]:
        if rng.random() > camouflage:
            devices[i] = rng.choice(ring_devices[ring[i]])
            merchants[i] = rng.choice(ring_merchants[ring[i]])
    x = rng.normal(size=(n, num_features))
    x[y == 1] += rng.normal(feature_signal, 0.1, size=(int(y.sum()), num_features))
    categorical = np.stack([devices, merchants], axis=1)
    return TabularDataset(
        x,
        categorical,
        y,
        "binary",
        cardinalities=[num_devices, num_merchants],
        categorical_names=["device", "merchant"],
    )
