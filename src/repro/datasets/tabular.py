"""The :class:`TabularDataset` container (survey Sec. 2.1).

A dataset ``D = {(x_i, y_i)}`` where each ``x_i`` splits into numerical and
categorical parts, with a task in {binary, multiclass, regression} and
train/val/test masks for the semi-supervised full-batch setting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

TASKS = ("binary", "multiclass", "regression")


class TabularDataset:
    """Immutable-ish container for one tabular learning problem.

    Parameters
    ----------
    numerical:
        ``(n, d_num)`` float matrix (may be empty with shape ``(n, 0)``).
        May contain NaN for missing cells.
    categorical:
        ``(n, d_cat)`` integer matrix of category codes (may be empty).
        ``-1`` encodes a missing cell.
    y:
        ``(n,)`` labels.
    task:
        One of ``binary``, ``multiclass``, ``regression``.
    cardinalities:
        Number of categories per categorical column (inferred if omitted).
    numerical_names / categorical_names:
        Optional column names.
    """

    def __init__(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray],
        y: np.ndarray,
        task: str,
        cardinalities: Optional[Sequence[int]] = None,
        numerical_names: Optional[Sequence[str]] = None,
        categorical_names: Optional[Sequence[str]] = None,
    ) -> None:
        if task not in TASKS:
            raise ValueError(f"task must be one of {TASKS}, got {task!r}")
        self.task = task
        self.numerical = np.asarray(numerical, dtype=np.float64)
        if self.numerical.ndim != 2:
            raise ValueError("numerical must be 2-D (use shape (n, 0) when empty)")
        n = self.numerical.shape[0]
        if categorical is None:
            categorical = np.zeros((n, 0), dtype=np.int64)
        self.categorical = np.asarray(categorical, dtype=np.int64)
        if self.categorical.ndim != 2 or self.categorical.shape[0] != n:
            raise ValueError("categorical must be 2-D with one row per instance")
        self.y = np.asarray(y)
        if self.y.shape[0] != n:
            raise ValueError("y must have one entry per instance")
        if task in ("binary", "multiclass"):
            self.y = self.y.astype(np.int64)
        else:
            self.y = self.y.astype(np.float64)
        if cardinalities is None:
            cardinalities = [
                int(self.categorical[:, j].max()) + 1 if n else 0
                for j in range(self.categorical.shape[1])
            ]
        self.cardinalities: List[int] = [int(c) for c in cardinalities]
        if len(self.cardinalities) != self.categorical.shape[1]:
            raise ValueError("cardinalities must match number of categorical columns")
        for j, card in enumerate(self.cardinalities):
            col = self.categorical[:, j]
            valid = col[col >= 0]
            if valid.size and valid.max() >= card:
                raise ValueError(f"categorical column {j} exceeds cardinality {card}")
        self.numerical_names = list(
            numerical_names
            or [f"num_{j}" for j in range(self.numerical.shape[1])]
        )
        self.categorical_names = list(
            categorical_names
            or [f"cat_{j}" for j in range(self.categorical.shape[1])]
        )

    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        return int(self.numerical.shape[0])

    @property
    def num_numerical(self) -> int:
        return int(self.numerical.shape[1])

    @property
    def num_categorical(self) -> int:
        return int(self.categorical.shape[1])

    @property
    def num_features(self) -> int:
        return self.num_numerical + self.num_categorical

    @property
    def num_classes(self) -> int:
        if self.task == "regression":
            raise ValueError("regression task has no classes")
        return int(self.y.max()) + 1 if self.y.size else 0

    @property
    def feature_names(self) -> List[str]:
        return self.numerical_names + self.categorical_names

    # ------------------------------------------------------------------
    def to_matrix(self, one_hot: bool = True, standardize: bool = True) -> np.ndarray:
        """Flatten into a single dense float matrix.

        Categorical columns are one-hot encoded (or left as raw codes when
        ``one_hot=False``); numerical columns are z-scored when
        ``standardize``.  Missing numericals become 0 after standardization;
        missing categoricals get an all-zero one-hot block.
        """
        blocks: List[np.ndarray] = []
        if self.num_numerical:
            num = self.numerical.copy()
            if standardize:
                mean = np.nanmean(num, axis=0)
                std = np.nanstd(num, axis=0)
                std = np.where(std > 0, std, 1.0)
                num = (num - mean) / std
            num = np.nan_to_num(num, nan=0.0)
            blocks.append(num)
        if self.num_categorical:
            if one_hot:
                for j, card in enumerate(self.cardinalities):
                    block = np.zeros((self.num_instances, card))
                    col = self.categorical[:, j]
                    observed = col >= 0
                    block[np.nonzero(observed)[0], col[observed]] = 1.0
                    blocks.append(block)
            else:
                blocks.append(self.categorical.astype(np.float64))
        if not blocks:
            return np.zeros((self.num_instances, 0))
        return np.concatenate(blocks, axis=1)

    def global_value_ids(self) -> np.ndarray:
        """Categorical codes shifted so ids are unique across columns.

        Used by hypergraph and hetero-graph builders where every distinct
        (column, value) pair is one node.  Missing cells stay ``-1``.
        """
        offsets = np.cumsum([0] + self.cardinalities[:-1])
        shifted = self.categorical + offsets[None, :]
        shifted[self.categorical < 0] = -1
        return shifted

    @property
    def num_category_values(self) -> int:
        return int(sum(self.cardinalities))

    # ------------------------------------------------------------------
    def subset(self, index: np.ndarray) -> "TabularDataset":
        index = np.asarray(index)
        return TabularDataset(
            self.numerical[index],
            self.categorical[index],
            self.y[index],
            self.task,
            cardinalities=self.cardinalities,
            numerical_names=self.numerical_names,
            categorical_names=self.categorical_names,
        )

    def summary(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "task": self.task,
            "instances": self.num_instances,
            "numerical": self.num_numerical,
            "categorical": self.num_categorical,
        }
        if self.task != "regression":
            counts = np.bincount(self.y, minlength=self.num_classes)
            info["classes"] = self.num_classes
            info["class_balance"] = (counts / max(1, counts.sum())).round(3).tolist()
        return info

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TabularDataset(n={self.num_instances}, num={self.num_numerical}, "
            f"cat={self.num_categorical}, task={self.task!r})"
        )
