"""Tabular datasets: container, synthetic generators, preprocessing, missingness.

The paper evaluates on public tabular datasets (UCI, CTR logs, EHRs,
customs/fraud records) that are unavailable offline.  Each generator here
plants exactly the causal structure the corresponding application exploits,
so every qualitative comparison in the survey can still be reproduced:

* :func:`make_correlated_instances` — cluster-structured labels → instance
  correlation (Sec. 2.5a);
* :func:`make_feature_interaction` — labels depend only on feature
  *combinations* → feature interaction (Sec. 2.5b);
* :func:`make_ctr` — sparse categorical user/item/context fields with
  latent-factor click-through rates (Sec. 5.2);
* :func:`make_ehr` — patient × diagnosis-code multi-hot records (Sec. 5.3);
* :func:`make_anomaly` — inliers on clusters + scattered outliers (Sec. 5.1);
* :func:`make_fraud` — imbalanced multi-relational fraud rings (Sec. 5.1/5.5);
* :func:`inject_missing` — MCAR/MAR/MNAR masks (Sec. 5.4).
"""

from repro.datasets.tabular import TabularDataset
from repro.datasets.synthetic import (
    make_anomaly,
    make_classification,
    make_correlated_instances,
    make_ctr,
    make_ehr,
    make_feature_interaction,
    make_fraud,
    make_regression,
)
from repro.datasets.missing import inject_missing
from repro.datasets import preprocessing
from repro.datasets.preprocessing import (
    KBinsDiscretizer,
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    StandardScaler,
    TabularPreprocessor,
    train_val_test_masks,
)

__all__ = [
    "TabularDataset",
    "make_anomaly",
    "make_classification",
    "make_correlated_instances",
    "make_ctr",
    "make_ehr",
    "make_feature_interaction",
    "make_fraud",
    "make_regression",
    "inject_missing",
    "preprocessing",
    "KBinsDiscretizer",
    "MinMaxScaler",
    "OneHotEncoder",
    "OrdinalEncoder",
    "StandardScaler",
    "TabularPreprocessor",
    "train_val_test_masks",
]
