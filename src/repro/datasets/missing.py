"""Missingness injection: MCAR, MAR and MNAR mechanisms (survey Sec. 5.4).

The survey's imputation application (GRAPE/GINN/IGRM) distinguishes
missingness mechanisms because GNN imputers are claimed to be robust to
*non-random* missingness that defeats mean/median imputation:

* **MCAR** — each cell is dropped independently with probability ``rate``.
* **MAR** — the probability a column is missing depends on the *observed*
  value of a pilot column (cells go missing where the pilot is large).
* **MNAR** — the probability a cell is missing depends on its *own* value
  (large values hide themselves).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.tabular import TabularDataset

MECHANISMS = ("mcar", "mar", "mnar")


def inject_missing(
    dataset: TabularDataset,
    rate: float,
    mechanism: str = "mcar",
    rng: Optional[np.random.Generator] = None,
) -> TabularDataset:
    """Return a copy of ``dataset`` with numerical cells masked to NaN.

    Parameters
    ----------
    rate:
        Target overall fraction of missing numerical cells, in [0, 1).
    mechanism:
        One of ``mcar``, ``mar``, ``mnar``.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError("rate must be in [0, 1)")
    if mechanism not in MECHANISMS:
        raise ValueError(f"mechanism must be one of {MECHANISMS}")
    rng = rng or np.random.default_rng(0)
    x = dataset.numerical.copy()
    n, d = x.shape
    if d == 0 or rate == 0.0:
        return _with_numerical(dataset, x)

    if mechanism == "mcar":
        mask = rng.random((n, d)) < rate
    elif mechanism == "mar":
        # Cells in column j go missing where the pilot column (j+1) % d has
        # large observed values; scaled to hit the target rate on average.
        mask = np.zeros((n, d), dtype=bool)
        for j in range(d):
            pilot = x[:, (j + 1) % d]
            ranks = np.argsort(np.argsort(pilot)) / max(1, n - 1)
            prob = np.clip(2.0 * rate * ranks, 0.0, 1.0)
            mask[:, j] = rng.random(n) < prob
    else:  # mnar
        mask = np.zeros((n, d), dtype=bool)
        for j in range(d):
            ranks = np.argsort(np.argsort(x[:, j])) / max(1, n - 1)
            prob = np.clip(2.0 * rate * ranks, 0.0, 1.0)
            mask[:, j] = rng.random(n) < prob

    # Never let a row lose every numerical value: keep one observed cell.
    all_missing = mask.all(axis=1)
    if all_missing.any():
        keep_col = rng.integers(0, d, size=int(all_missing.sum()))
        mask[np.nonzero(all_missing)[0], keep_col] = False

    x[mask] = np.nan
    return _with_numerical(dataset, x)


def missing_rate(dataset: TabularDataset) -> float:
    """Observed fraction of NaN cells among numerical columns."""
    if dataset.num_numerical == 0:
        return 0.0
    return float(np.isnan(dataset.numerical).mean())


def _with_numerical(dataset: TabularDataset, numerical: np.ndarray) -> TabularDataset:
    return TabularDataset(
        numerical,
        dataset.categorical,
        dataset.y,
        dataset.task,
        cardinalities=dataset.cardinalities,
        numerical_names=dataset.numerical_names,
        categorical_names=dataset.categorical_names,
    )
