"""Preprocessing: scalers, encoders, discretizer, split utilities.

Fit/transform objects mirror the sklearn API surface we need, implemented
on numpy so the library stays dependency-light.  All handle NaN (missing)
inputs gracefully: statistics are computed over observed entries only.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np


class StandardScaler:
    """Z-score columns using statistics over observed (non-NaN) entries."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        self.mean_ = np.nanmean(x, axis=0)
        std = np.nanstd(x, axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fit before transform")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fit before inverse_transform")
        return np.asarray(x, dtype=np.float64) * self.std_ + self.mean_


class MinMaxScaler:
    """Scale columns into [0, 1] using observed minima/maxima."""

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(x, dtype=np.float64)
        self.min_ = np.nanmin(x, axis=0)
        rng = np.nanmax(x, axis=0) - self.min_
        self.range_ = np.where(rng > 0, rng, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler must be fit before transform")
        return (np.asarray(x, dtype=np.float64) - self.min_) / self.range_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler must be fit before inverse_transform")
        return np.asarray(x, dtype=np.float64) * self.range_ + self.min_


class OneHotEncoder:
    """One-hot encode integer category codes; ``-1`` (missing) → all-zero row."""

    def __init__(self) -> None:
        self.cardinalities_: Optional[list[int]] = None

    def fit(self, codes: np.ndarray) -> "OneHotEncoder":
        codes = np.asarray(codes, dtype=np.int64)
        self.cardinalities_ = [
            int(codes[:, j].max()) + 1 if (codes[:, j] >= 0).any() else 0
            for j in range(codes.shape[1])
        ]
        return self

    def transform(self, codes: np.ndarray) -> np.ndarray:
        if self.cardinalities_ is None:
            raise RuntimeError("encoder must be fit before transform")
        codes = np.asarray(codes, dtype=np.int64)
        blocks = []
        for j, card in enumerate(self.cardinalities_):
            block = np.zeros((codes.shape[0], card))
            col = codes[:, j]
            observed = (col >= 0) & (col < card)
            block[np.nonzero(observed)[0], col[observed]] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((codes.shape[0], 0))
        return np.concatenate(blocks, axis=1)

    def fit_transform(self, codes: np.ndarray) -> np.ndarray:
        return self.fit(codes).transform(codes)


class OrdinalEncoder:
    """Map arbitrary hashable column values to dense integer codes."""

    def __init__(self) -> None:
        self.mappings_: Optional[list[Dict[object, int]]] = None

    def fit(self, columns: np.ndarray) -> "OrdinalEncoder":
        columns = np.asarray(columns, dtype=object)
        self.mappings_ = []
        for j in range(columns.shape[1]):
            values = sorted(set(columns[:, j]), key=repr)
            self.mappings_.append({v: i for i, v in enumerate(values)})
        return self

    def transform(self, columns: np.ndarray) -> np.ndarray:
        if self.mappings_ is None:
            raise RuntimeError("encoder must be fit before transform")
        columns = np.asarray(columns, dtype=object)
        out = np.full(columns.shape, -1, dtype=np.int64)
        for j, mapping in enumerate(self.mappings_):
            for i in range(columns.shape[0]):
                out[i, j] = mapping.get(columns[i, j], -1)
        return out

    def fit_transform(self, columns: np.ndarray) -> np.ndarray:
        return self.fit(columns).transform(columns)


class KBinsDiscretizer:
    """Quantile-bin continuous columns into integer codes.

    Needed to apply the Same-Feature-Value construction rule (Sec. 4.2.2) to
    continuous features — the survey notes the rule "is not always effective
    for continuous features without discretization".
    """

    def __init__(self, n_bins: int = 5) -> None:
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = n_bins
        self.edges_: Optional[list[np.ndarray]] = None

    def fit(self, x: np.ndarray) -> "KBinsDiscretizer":
        x = np.asarray(x, dtype=np.float64)
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self.edges_ = [
            np.nanquantile(x[:, j], quantiles) for j in range(x.shape[1])
        ]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("discretizer must be fit before transform")
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros(x.shape, dtype=np.int64)
        for j, edges in enumerate(self.edges_):
            out[:, j] = np.searchsorted(edges, x[:, j], side="right")
            out[np.isnan(x[:, j]), j] = -1
        return out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


def train_val_test_masks(
    n: int,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
    stratify: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random (optionally stratified) boolean train/val/test masks.

    Stratified splitting keeps per-class proportions, important for the
    imbalanced fraud/anomaly applications.
    """
    if train_fraction <= 0 or val_fraction < 0 or train_fraction + val_fraction >= 1:
        raise ValueError("fractions must satisfy 0 < train, 0 <= val, train+val < 1")
    rng = rng or np.random.default_rng(0)
    train = np.zeros(n, dtype=bool)
    val = np.zeros(n, dtype=bool)
    test = np.zeros(n, dtype=bool)

    def assign(indices: np.ndarray) -> None:
        perm = rng.permutation(indices)
        n_train = int(round(len(perm) * train_fraction))
        n_val = int(round(len(perm) * val_fraction))
        train[perm[:n_train]] = True
        val[perm[n_train : n_train + n_val]] = True
        test[perm[n_train + n_val :]] = True

    if stratify is None:
        assign(np.arange(n))
    else:
        stratify = np.asarray(stratify)
        for label in np.unique(stratify):
            assign(np.nonzero(stratify == label)[0])
    return train, val, test
