"""Preprocessing: scalers, encoders, discretizer, split utilities.

Fit/transform objects mirror the sklearn API surface we need, implemented
on numpy so the library stays dependency-light.  All handle NaN (missing)
inputs gracefully: statistics are computed over observed entries only.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Tuple

import numpy as np


class StandardScaler:
    """Z-score columns using statistics over observed (non-NaN) entries."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        self.mean_ = np.nanmean(x, axis=0)
        std = np.nanstd(x, axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fit before transform")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fit before inverse_transform")
        return np.asarray(x, dtype=np.float64) * self.std_ + self.mean_


class MinMaxScaler:
    """Scale columns into [0, 1] using observed minima/maxima."""

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(x, dtype=np.float64)
        self.min_ = np.nanmin(x, axis=0)
        rng = np.nanmax(x, axis=0) - self.min_
        self.range_ = np.where(rng > 0, rng, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler must be fit before transform")
        return (np.asarray(x, dtype=np.float64) - self.min_) / self.range_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler must be fit before inverse_transform")
        return np.asarray(x, dtype=np.float64) * self.range_ + self.min_


class OneHotEncoder:
    """One-hot encode integer category codes; ``-1`` (missing) → all-zero row."""

    def __init__(self) -> None:
        self.cardinalities_: Optional[list[int]] = None

    def fit(self, codes: np.ndarray) -> "OneHotEncoder":
        codes = np.asarray(codes, dtype=np.int64)
        self.cardinalities_ = [
            int(codes[:, j].max()) + 1 if (codes[:, j] >= 0).any() else 0
            for j in range(codes.shape[1])
        ]
        return self

    def transform(self, codes: np.ndarray) -> np.ndarray:
        if self.cardinalities_ is None:
            raise RuntimeError("encoder must be fit before transform")
        codes = np.asarray(codes, dtype=np.int64)
        blocks = []
        for j, card in enumerate(self.cardinalities_):
            block = np.zeros((codes.shape[0], card))
            col = codes[:, j]
            observed = (col >= 0) & (col < card)
            block[np.nonzero(observed)[0], col[observed]] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((codes.shape[0], 0))
        return np.concatenate(blocks, axis=1)

    def fit_transform(self, codes: np.ndarray) -> np.ndarray:
        return self.fit(codes).transform(codes)


class OrdinalEncoder:
    """Map arbitrary hashable column values to dense integer codes."""

    def __init__(self) -> None:
        self.mappings_: Optional[list[Dict[object, int]]] = None

    def fit(self, columns: np.ndarray) -> "OrdinalEncoder":
        columns = np.asarray(columns, dtype=object)
        self.mappings_ = []
        for j in range(columns.shape[1]):
            values = sorted(set(columns[:, j]), key=repr)
            self.mappings_.append({v: i for i, v in enumerate(values)})
        return self

    def transform(self, columns: np.ndarray) -> np.ndarray:
        if self.mappings_ is None:
            raise RuntimeError("encoder must be fit before transform")
        columns = np.asarray(columns, dtype=object)
        out = np.full(columns.shape, -1, dtype=np.int64)
        for j, mapping in enumerate(self.mappings_):
            for i in range(columns.shape[0]):
                out[i, j] = mapping.get(columns[i, j], -1)
        return out

    def fit_transform(self, columns: np.ndarray) -> np.ndarray:
        return self.fit(columns).transform(columns)


class KBinsDiscretizer:
    """Quantile-bin continuous columns into integer codes.

    Needed to apply the Same-Feature-Value construction rule (Sec. 4.2.2) to
    continuous features — the survey notes the rule "is not always effective
    for continuous features without discretization".
    """

    def __init__(self, n_bins: int = 5) -> None:
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = n_bins
        self.edges_: Optional[list[np.ndarray]] = None

    def fit(self, x: np.ndarray) -> "KBinsDiscretizer":
        x = np.asarray(x, dtype=np.float64)
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self.edges_ = [
            np.nanquantile(x[:, j], quantiles) for j in range(x.shape[1])
        ]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("discretizer must be fit before transform")
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros(x.shape, dtype=np.int64)
        for j, edges in enumerate(self.edges_):
            out[:, j] = bin_codes(x[:, j], edges)
        return out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


def bin_codes(column: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Quantile-bin one column against frozen edges; NaN → ``-1`` (missing).

    The single definition of the binning semantics (``searchsorted`` with
    right-closed intervals): :class:`KBinsDiscretizer` applies it per
    fitted column, and serving artifacts apply it to query rows with the
    persisted training-time edges so train and serve always agree.
    """
    column = np.asarray(column, dtype=np.float64)
    codes = np.searchsorted(edges, column, side="right").astype(np.int64)
    codes[np.isnan(column)] = -1
    return codes


class TabularPreprocessor:
    """Fit-once / transform-many featurization with train/serve parity.

    The transductive pipeline historically standardized with statistics of
    whatever matrix it was handed (``TabularDataset.to_matrix`` or the
    pipeline's ``_field_matrix``), refitting on every call.  That is fine
    in-process but creates train/serve skew the moment rows arrive that the
    training run never saw.  This class separates the two concerns:

    * :meth:`fit` computes NaN-aware statistics once (optionally restricted
      to the training rows via ``row_mask``) and freezes the categorical
      cardinalities;
    * :meth:`transform` maps *raw* ``(numerical, categorical)`` row arrays —
      from the training table or from a serving request — into the exact
      feature space the model was trained in.

    Two output modes cover the two row-wise formulations:

    * ``"onehot"`` — z-scored numericals + one-hot categoricals, the
      instance-graph feature space (``TabularDataset.to_matrix``);
    * ``"fields"`` — one standardized column per original field (numerical
      + ordinal codes), the feature-graph tokenizer input
      (``pipeline._field_matrix``).

    The fitted state round-trips through :meth:`state` /
    :meth:`from_state` so a :class:`repro.serving.ModelArtifact` can persist
    it next to the model weights.
    """

    MODES = ("onehot", "fields")

    def __init__(self, mode: str = "onehot") -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.mode = mode
        self.num_mean_: Optional[np.ndarray] = None
        self.num_std_: Optional[np.ndarray] = None
        self.cat_mean_: Optional[np.ndarray] = None
        self.cat_std_: Optional[np.ndarray] = None
        self.cardinalities_: Optional[list[int]] = None

    # -- fitting ---------------------------------------------------------
    def fit(self, dataset, row_mask: Optional[np.ndarray] = None) -> "TabularPreprocessor":
        """Fit on a :class:`~repro.datasets.TabularDataset` (or its rows)."""
        numerical = dataset.numerical
        categorical = dataset.categorical
        if row_mask is not None:
            row_mask = np.asarray(row_mask, dtype=bool)
            numerical = numerical[row_mask]
            categorical = categorical[row_mask]
        self.cardinalities_ = list(dataset.cardinalities)
        self.num_mean_, self.num_std_ = self._nan_stats(numerical)
        codes = categorical.astype(np.float64)
        codes[codes < 0] = np.nan
        self.cat_mean_, self.cat_std_ = self._nan_stats(codes)
        return self

    @staticmethod
    def _nan_stats(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """:class:`StandardScaler` statistics plus empty/all-NaN guards."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1] == 0 or x.shape[0] == 0:
            return np.zeros(x.shape[1]), np.ones(x.shape[1])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN columns
            scaler = StandardScaler().fit(x)
        mean = np.nan_to_num(scaler.mean_, nan=0.0)
        std = np.where(np.isfinite(scaler.std_) & (scaler.std_ > 0), scaler.std_, 1.0)
        return mean, std

    def _check_fitted(self) -> None:
        if self.cardinalities_ is None:
            raise RuntimeError("preprocessor must be fit before transform")

    # -- transforming ----------------------------------------------------
    @property
    def num_numerical_features(self) -> int:
        self._check_fitted()
        return int(self.num_mean_.shape[0])

    @property
    def num_categorical_features(self) -> int:
        self._check_fitted()
        return len(self.cardinalities_)

    def normalize_rows(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Coerce raw rows to validated 2-D ``(numerical, categorical)``.

        The single place the serving stack's row conventions live: widths
        are checked against the fitted schema, and omitted categoricals
        become the library-wide ``-1`` "missing" code (all-zero one-hot
        block in onehot mode / mean-imputed after scaling in fields mode)
        rather than silently asserting category 0.
        """
        self._check_fitted()
        numerical = np.asarray(numerical, dtype=np.float64)
        if numerical.ndim == 1:
            numerical = numerical.reshape(1, -1)
        n = numerical.shape[0]
        if numerical.shape[1] != self.num_numerical_features:
            raise ValueError(
                f"expected {self.num_numerical_features} numerical columns, "
                f"got {numerical.shape[1]}"
            )
        if categorical is None:
            categorical = np.full(
                (n, self.num_categorical_features), -1, dtype=np.int64
            )
        categorical = np.asarray(categorical, dtype=np.int64)
        if categorical.ndim == 1:
            categorical = categorical.reshape(1, -1)
        if categorical.shape != (n, self.num_categorical_features):
            raise ValueError(
                f"expected categorical shape ({n}, {self.num_categorical_features}), "
                f"got {categorical.shape}"
            )
        return numerical, categorical

    def transform(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Featurize raw rows using the *frozen* training statistics."""
        numerical, categorical = self.normalize_rows(numerical, categorical)
        n = numerical.shape[0]
        blocks: list[np.ndarray] = []
        if numerical.shape[1]:
            scaled = (numerical - self.num_mean_) / self.num_std_
            blocks.append(np.nan_to_num(scaled, nan=0.0))
        if categorical.shape[1]:
            if self.mode == "onehot":
                for j, card in enumerate(self.cardinalities_):
                    block = np.zeros((n, card))
                    col = categorical[:, j]
                    observed = (col >= 0) & (col < card)
                    block[np.nonzero(observed)[0], col[observed]] = 1.0
                    blocks.append(block)
            else:
                codes = categorical.astype(np.float64)
                codes[codes < 0] = np.nan
                scaled = (codes - self.cat_mean_) / self.cat_std_
                blocks.append(np.nan_to_num(scaled, nan=0.0))
        if not blocks:
            return np.zeros((n, 0))
        return np.concatenate(blocks, axis=1)

    def transform_dataset(self, dataset) -> np.ndarray:
        return self.transform(dataset.numerical, dataset.categorical)

    def fit_transform(self, dataset, row_mask: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(dataset, row_mask).transform_dataset(dataset)

    @property
    def num_output_features(self) -> int:
        self._check_fitted()
        num = self.num_mean_.shape[0]
        if self.mode == "onehot":
            return int(num + sum(self.cardinalities_))
        return int(num + len(self.cardinalities_))

    # -- persistence -----------------------------------------------------
    def state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """(arrays, json-safe meta) pair for artifact serialization."""
        self._check_fitted()
        arrays = {
            "num_mean": self.num_mean_,
            "num_std": self.num_std_,
            "cat_mean": self.cat_mean_,
            "cat_std": self.cat_std_,
        }
        meta = {"mode": self.mode, "cardinalities": [int(c) for c in self.cardinalities_]}
        return arrays, meta

    @classmethod
    def from_state(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> "TabularPreprocessor":
        prep = cls(mode=str(meta["mode"]))
        prep.cardinalities_ = [int(c) for c in meta["cardinalities"]]
        prep.num_mean_ = np.asarray(arrays["num_mean"], dtype=np.float64)
        prep.num_std_ = np.asarray(arrays["num_std"], dtype=np.float64)
        prep.cat_mean_ = np.asarray(arrays["cat_mean"], dtype=np.float64)
        prep.cat_std_ = np.asarray(arrays["cat_std"], dtype=np.float64)
        return prep


def train_val_test_masks(
    n: int,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
    stratify: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random (optionally stratified) boolean train/val/test masks.

    Stratified splitting keeps per-class proportions, important for the
    imbalanced fraud/anomaly applications.
    """
    if train_fraction <= 0 or val_fraction < 0 or train_fraction + val_fraction >= 1:
        raise ValueError("fractions must satisfy 0 < train, 0 <= val, train+val < 1")
    rng = rng or np.random.default_rng(0)
    train = np.zeros(n, dtype=bool)
    val = np.zeros(n, dtype=bool)
    test = np.zeros(n, dtype=bool)

    def assign(indices: np.ndarray) -> None:
        perm = rng.permutation(indices)
        n_train = int(round(len(perm) * train_fraction))
        n_val = int(round(len(perm) * val_fraction))
        train[perm[:n_train]] = True
        val[perm[n_train : n_train + n_val]] = True
        test[perm[n_train + n_val :]] = True

    if stratify is None:
        assign(np.arange(n))
    else:
        stratify = np.asarray(stratify)
        for label in np.unique(stratify):
            assign(np.nonzero(stratify == label)[0])
    return train, val, test
