"""GNN4TDL — Graph Neural Networks for Tabular Data Learning.

A complete, from-scratch reproduction of the ICDE 2023 survey "Graph Neural
Networks for Tabular Data Learning" (extended version arXiv:2401.02143):
every graph formulation, construction rule, GNN family, auxiliary task and
training strategy in the survey's taxonomy, implemented on numpy/scipy with
an in-house autograd engine.

Quickstart::

    from repro.datasets import make_correlated_instances
    from repro.pipeline import run_pipeline

    dataset = make_correlated_instances(n=400, seed=0)
    result = run_pipeline(dataset, formulation="instance", network="gcn")
    print(result.as_row())

Serving quickstart — train, export, serve, predict::

    from repro.serving import InferenceEngine, ModelArtifact

    result.export_artifact().save("model")      # → model.npz + model.json

    # Same process: score rows the training graph never saw.  Unseen rows
    # link into the frozen training pool by retrieval (survey Sec. 4.2.4).
    engine = InferenceEngine(ModelArtifact.load("model.npz"))
    probs = engine.predict([0.3] * dataset.num_numerical)

    # Fresh process: micro-batched JSON-over-HTTP, stdlib only.
    #   $ python -m repro.serving --artifact model.npz --port 8000
    #   $ curl -d '{"numerical": [0.3, ...]}' localhost:8000/predict
    #   $ curl localhost:8000/healthz

Subpackages
-----------
``repro.tensor``        autograd engine (the PyTorch substitute)
``repro.nn``            layers, losses, optimizers
``repro.graph``         graph data structures (Phase 1)
``repro.formulations``  the Phase 1 formulation axis as a registry
``repro.construction``  graph construction (Phase 2)
``repro.gnn``           GNN layers & stacks (Phase 3)
``repro.training``      training plans (Phase 4)
``repro.models``        specialized GNN4TDL methods
``repro.datasets``      data container + synthetic generators
``repro.baselines``     structure-blind reference models
``repro.applications``  Sec. 5 application pipelines
``repro.serving``       model artifacts, inductive inference, HTTP serving
"""

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "graph",
    "formulations",
    "construction",
    "gnn",
    "training",
    "models",
    "datasets",
    "baselines",
    "metrics",
    "registry",
    "pipeline",
    "applications",
    "serving",
]
