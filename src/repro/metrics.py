"""Evaluation metrics for classification, regression and anomaly ranking."""

from __future__ import annotations

from typing import Dict

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between labels and predictions")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy on empty arrays")
    return float(np.mean(y_true == y_pred))


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Ties in scores receive the average rank, matching sklearn's behaviour.
    """
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    n_pos = int(y_true.sum())
    n_neg = int((~y_true).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc requires both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    pos_rank_sum = ranks[y_true].sum()
    u = pos_rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def average_precision(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (step-wise interpolation)."""
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    n_pos = int(y_true.sum())
    if n_pos == 0:
        raise ValueError("average_precision requires at least one positive")
    order = np.argsort(-scores, kind="mergesort")
    hits = y_true[order].astype(np.float64)
    cum_hits = np.cumsum(hits)
    precision = cum_hits / np.arange(1, len(hits) + 1)
    return float((precision * hits).sum() / n_pos)


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1
) -> Dict[str, float]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = float(np.sum((y_pred == positive) & (y_true == positive)))
    fp = float(np.sum((y_pred == positive) & (y_true != positive)))
    fn = float(np.sum((y_pred != positive) & (y_true == positive)))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    classes = np.unique(y_true)
    return float(
        np.mean([precision_recall_f1(y_true, y_pred, positive=c)["f1"] for c in classes])
    )


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> np.ndarray:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def log_loss(y_true: np.ndarray, probs: np.ndarray, eps: float = 1e-12) -> float:
    """Cross-entropy of predicted probabilities; probs is (n,) binary or (n, C)."""
    y_true = np.asarray(y_true, dtype=np.int64)
    probs = np.asarray(probs, dtype=np.float64)
    probs = np.clip(probs, eps, 1 - eps)
    if probs.ndim == 1:
        picked = np.where(y_true == 1, probs, 1.0 - probs)
    else:
        picked = probs[np.arange(len(y_true)), y_true]
    return float(-np.mean(np.log(picked)))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0:
        return 0.0
    return 1.0 - ss_res / ss_tot


def precision_at_k(y_true: np.ndarray, scores: np.ndarray, k: int) -> float:
    """Fraction of true positives among the k highest-scored items (anomaly ranking)."""
    y_true = np.asarray(y_true).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if not 1 <= k <= len(scores):
        raise ValueError("k must be in [1, n]")
    top = np.argsort(-scores, kind="mergesort")[:k]
    return float(y_true[top].mean())
