"""Micro-batching: coalesce single-row requests into vectorized batches.

Per-row inference pays the full fixed cost of a forward pass — for the
instance formulation that includes retrieval against the pool and building
the induced (pool + queries) graph — for every single row.  Numpy
vectorization makes the *marginal* row nearly free, so throughput under
concurrent single-row traffic is won by coalescing: the
:class:`MicroBatcher` queues incoming rows and flushes one engine call per
batch, bounded by ``max_batch_size`` rows or ``max_delay_ms`` of waiting,
whichever comes first.

The batcher owns one consumer thread; producers (HTTP handler threads,
benchmark workers) block in :meth:`submit` until their row's probabilities
arrive.  ``bench_serving_throughput.py`` measures the resulting speedup.

Observability: when the engine carries a metrics registry (or one is
passed explicitly) the batcher reports queue-wait and batch-size
histograms plus live queue-depth / in-flight gauges — the numbers that
tell an operator whether latency is spent *waiting to batch* or
*scoring*.  :meth:`flush` drains all in-flight rows, the hook a future
artifact hot-swap needs before switching engines.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Dict, Optional

import numpy as np

from repro.obs import SIZE_BUCKETS, CounterBank, MetricsRegistry
from repro.serving.engine import InferenceEngine


@dataclasses.dataclass
class _Request:
    numerical: np.ndarray
    categorical: np.ndarray
    submitted: float = 0.0
    done: threading.Event = dataclasses.field(default_factory=threading.Event)
    result: Optional[np.ndarray] = None
    error: Optional[BaseException] = None


class MicroBatcher:
    """Coalesce concurrent single-row requests into engine batch calls.

    Parameters
    ----------
    engine:
        The :class:`~repro.serving.InferenceEngine` that scores batches.
    max_batch_size:
        Flush as soon as this many rows are queued.
    max_delay_ms:
        Flush a partial batch after the *first* queued row has waited this
        long — bounds the latency cost a row pays for batching.
    registry:
        Metrics registry to report into; defaults to the engine's own
        (pass ``None`` on an observability-disabled engine for the legacy
        plain-dict behavior).
    """

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_size: int = 32,
        max_delay_ms: float = 2.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay_ms / 1000.0
        self.registry = registry if registry is not None else engine.registry
        if self.registry is not None:
            self.stats = CounterBank(
                self.registry, "repro_batcher",
                gauges=("largest_batch",),
                help_map={
                    "batches": "Coalesced batches flushed to the engine.",
                    "rows": "Rows scored through the batcher.",
                    "largest_batch": "Largest batch coalesced so far.",
                },
            )
            self._queue_wait = self.registry.histogram(
                "repro_batcher_queue_wait_seconds",
                "Time a row waits between submit and its batch flushing.",
            )
            self._batch_sizes = self.registry.histogram(
                "repro_batcher_batch_size",
                "Rows per coalesced engine call.",
                buckets=SIZE_BUCKETS,
            )
            self.registry.gauge(
                "repro_batcher_queue_depth",
                "Rows currently queued awaiting a batch.",
            ).set_function(self._qsize)
            self.registry.gauge(
                "repro_batcher_in_flight",
                "Rows submitted but not yet answered.",
            ).set_function(lambda: self._pending)
        else:
            self.stats = {}
            self._queue_wait = None
            self._batch_sizes = None
        for key in ("batches", "rows", "largest_batch"):
            self.stats.setdefault(key, 0)
        self._queue: "queue.Queue[Optional[_Request]]" = queue.Queue()
        self._closed = False
        self._submit_lock = threading.Lock()
        #: rows submitted whose response has not been delivered yet;
        #: guarded by ``_drained`` so :meth:`flush` can wait on it.
        self._pending = 0
        self._drained = threading.Condition()
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    def _qsize(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    def submit(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Block until this row's ``(C,)`` probabilities are available.

        Rows are validated *here*, in the caller's thread, so a malformed
        row fails its own caller instead of poisoning the coalesced batch
        it would have joined.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        num, cat = self.engine.artifact.preprocessor.normalize_rows(
            numerical, categorical
        )
        request = _Request(
            numerical=num[0], categorical=cat[0], submitted=time.perf_counter()
        )
        # The lock orders this put against close()'s sentinel: once close
        # has marked the batcher closed, no request can slip in behind the
        # sentinel and block its producer forever.
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            with self._drained:
                self._pending += 1
            self._queue.put(request)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every row submitted so far has been answered.

        The drain hook a graceful engine/artifact hot-swap needs: stop
        admitting traffic upstream, ``flush()``, then switch.  Returns
        ``True`` once in-flight count reaches zero, ``False`` on timeout.
        """
        with self._drained:
            return self._drained.wait_for(
                lambda: self._pending == 0, timeout=timeout
            )

    def snapshot(self) -> Dict[str, float]:
        """Consistent copy of the batcher counters (all keys read under
        one registry lock when registry-backed)."""
        if isinstance(self.stats, CounterBank):
            return self.stats.snapshot()
        return dict(self.stats)

    def close(self) -> None:
        """Drain outstanding requests and stop the consumer thread."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is None:
                return
            batch = [first]
            deadline = time.monotonic() + self.max_delay
            while len(batch) < self.max_batch_size:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    break
                try:
                    item = self._queue.get(timeout=timeout)
                except queue.Empty:
                    break
                if item is None:
                    self._flush(batch)
                    return
                batch.append(item)
            self._flush(batch)

    def _finish(self, batch) -> None:
        with self._drained:
            self._pending -= len(batch)
            if self._pending == 0:
                self._drained.notify_all()

    def _flush(self, batch) -> None:
        if self._queue_wait is not None:
            now = time.perf_counter()
            for request in batch:
                self._queue_wait.observe(now - request.submitted)
        try:
            # submit() already validated and normalized every row (missing
            # categoricals became -1 "missing" codes), so mixed requests
            # coalesce into one well-formed rectangular batch.
            numerical = np.stack([r.numerical for r in batch])
            categorical = np.stack([r.categorical for r in batch])
            probs = self.engine.predict_batch(numerical, categorical)
        except BaseException as exc:  # propagate to every waiting producer
            for request in batch:
                request.error = exc
                request.done.set()
            self._finish(batch)
            return
        self.stats["batches"] += 1
        self.stats["rows"] += len(batch)
        self.stats["largest_batch"] = max(self.stats["largest_batch"], len(batch))
        if self._batch_sizes is not None:
            self._batch_sizes.observe(len(batch))
        for i, request in enumerate(batch):
            request.result = probs[i]
            request.done.set()
        self._finish(batch)
