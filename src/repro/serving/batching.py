"""Micro-batching: coalesce single-row requests into vectorized batches.

Per-row inference pays the full fixed cost of a forward pass — for the
instance formulation that includes retrieval against the pool and building
the induced (pool + queries) graph — for every single row.  Numpy
vectorization makes the *marginal* row nearly free, so throughput under
concurrent single-row traffic is won by coalescing: the
:class:`MicroBatcher` queues incoming rows and flushes one engine call per
batch, bounded by ``max_batch_size`` rows or ``max_delay_ms`` of waiting,
whichever comes first.

The batcher owns one consumer thread; producers (HTTP handler threads,
benchmark workers) block in :meth:`submit` until their row's probabilities
arrive.  ``bench_serving_throughput.py`` measures the resulting speedup.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from typing import Dict, Optional

import numpy as np

from repro.serving.engine import InferenceEngine


@dataclasses.dataclass
class _Request:
    numerical: np.ndarray
    categorical: np.ndarray
    done: threading.Event = dataclasses.field(default_factory=threading.Event)
    result: Optional[np.ndarray] = None
    error: Optional[BaseException] = None


class MicroBatcher:
    """Coalesce concurrent single-row requests into engine batch calls.

    Parameters
    ----------
    engine:
        The :class:`~repro.serving.InferenceEngine` that scores batches.
    max_batch_size:
        Flush as soon as this many rows are queued.
    max_delay_ms:
        Flush a partial batch after the *first* queued row has waited this
        long — bounds the latency cost a row pays for batching.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_size: int = 32,
        max_delay_ms: float = 2.0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay_ms / 1000.0
        self.stats: Dict[str, int] = {"batches": 0, "rows": 0, "largest_batch": 0}
        self._queue: "queue.Queue[Optional[_Request]]" = queue.Queue()
        self._closed = False
        self._submit_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Block until this row's ``(C,)`` probabilities are available.

        Rows are validated *here*, in the caller's thread, so a malformed
        row fails its own caller instead of poisoning the coalesced batch
        it would have joined.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        num, cat = self.engine.artifact.preprocessor.normalize_rows(
            numerical, categorical
        )
        request = _Request(numerical=num[0], categorical=cat[0])
        # The lock orders this put against close()'s sentinel: once close
        # has marked the batcher closed, no request can slip in behind the
        # sentinel and block its producer forever.
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.put(request)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def close(self) -> None:
        """Drain outstanding requests and stop the consumer thread."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        import time

        while True:
            first = self._queue.get()
            if first is None:
                return
            batch = [first]
            deadline = time.monotonic() + self.max_delay
            while len(batch) < self.max_batch_size:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    break
                try:
                    item = self._queue.get(timeout=timeout)
                except queue.Empty:
                    break
                if item is None:
                    self._flush(batch)
                    return
                batch.append(item)
            self._flush(batch)

    def _flush(self, batch) -> None:
        try:
            # submit() already validated and normalized every row (missing
            # categoricals became -1 "missing" codes), so mixed requests
            # coalesce into one well-formed rectangular batch.
            numerical = np.stack([r.numerical for r in batch])
            categorical = np.stack([r.categorical for r in batch])
            probs = self.engine.predict_batch(numerical, categorical)
        except BaseException as exc:  # propagate to every waiting producer
            for request in batch:
                request.error = exc
                request.done.set()
            return
        self.stats["batches"] += 1
        self.stats["rows"] += len(batch)
        self.stats["largest_batch"] = max(self.stats["largest_batch"], len(batch))
        for i, request in enumerate(batch):
            request.result = probs[i]
            request.done.set()
