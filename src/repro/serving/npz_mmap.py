"""Memory-mapped loading of ``.npz`` archives — shared pages across workers.

``np.load(..., mmap_mode="r")`` silently ignores ``mmap_mode`` for ``.npz``
archives (it only maps bare ``.npy`` files), so a fleet of worker processes
each calling :meth:`ModelArtifact.load` would hold N private copies of the
frozen pool features, value-node states and retrieval representation —
state that is read-only by construction and therefore free to share.

This module does the mapping by hand.  ``np.savez`` writes an
*uncompressed* zip (``ZIP_STORED``), so every member is a verbatim ``.npy``
byte range inside the archive: parse the zip's local file header to find
each member's data offset, parse the ``.npy`` header at that offset
(format spec v1/v2/v3 — magic, version, header length, literal dict), and
hand the remaining byte range to :class:`numpy.memmap`.  The resulting
arrays are **read-only views over shared OS page-cache pages**: N workers
mapping the same artifact touch one physical copy, and a write attempt
raises instead of silently diverging a worker.

Anything unexpected — a compressed member, an object dtype, a zero-size
array (``mmap`` cannot map empty ranges) — falls back to an ordinary eager
read of *that member only*, so the loader never does worse than
``np.load``.
"""

from __future__ import annotations

import ast
import pathlib
import zipfile
from typing import Dict, Tuple, Union

import numpy as np

_NPY_MAGIC = b"\x93NUMPY"
_LOCAL_HEADER_SIGNATURE = b"PK\x03\x04"
_LOCAL_HEADER_SIZE = 30  # fixed part of a zip local file header


def _npy_header(
    buf: bytes,
) -> Tuple[np.dtype, bool, Tuple[int, ...], int]:
    """Parse a ``.npy`` header from ``buf`` → (dtype, fortran, shape, size).

    ``size`` is the total header length in bytes (magic + version + length
    field + header text), i.e. the offset of the raw array data relative to
    the start of the member.
    """
    if buf[:6] != _NPY_MAGIC:
        raise ValueError("not a .npy member (bad magic)")
    major = buf[6]
    if major == 1:
        header_len = int.from_bytes(buf[8:10], "little")
        data_offset = 10 + header_len
        header = buf[10:data_offset]
    else:  # format 2.0 / 3.0: 4-byte little-endian header length
        header_len = int.from_bytes(buf[8:12], "little")
        data_offset = 12 + header_len
        header = buf[12:data_offset]
    if len(header) < header_len:
        raise ValueError("truncated .npy header")
    info = ast.literal_eval(header.decode("latin1"))
    dtype = np.dtype(info["descr"])
    return dtype, bool(info["fortran_order"]), tuple(info["shape"]), data_offset


def _member_data_offset(raw, info: zipfile.ZipInfo) -> int:
    """Absolute offset of ``info``'s data inside the archive file.

    The local header's name/extra lengths can differ from the central
    directory's, so they must be read from the local header itself.
    """
    raw.seek(info.header_offset)
    header = raw.read(_LOCAL_HEADER_SIZE)
    if header[:4] != _LOCAL_HEADER_SIGNATURE:
        raise ValueError(f"bad zip local header for {info.filename!r}")
    name_len = int.from_bytes(header[26:28], "little")
    extra_len = int.from_bytes(header[28:30], "little")
    return info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len


def load_npz_mmap(path: Union[str, pathlib.Path]) -> Dict[str, np.ndarray]:
    """Load every array of an uncompressed ``.npz`` as a read-only memmap.

    Returns the same ``{name: array}`` mapping ``np.load`` would, but each
    eligible array is an ``np.memmap(mode="r")`` view into the archive —
    zero-copy across processes mapping the same file.  Ineligible members
    (compressed, object dtype, empty) are read eagerly and marked
    read-only, so callers see uniform immutability either way.
    """
    path = pathlib.Path(path)
    out: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        with open(path, "rb") as raw:
            for info in archive.infolist():
                name = info.filename
                key = name[:-4] if name.endswith(".npy") else name
                array = None
                if info.compress_type == zipfile.ZIP_STORED:
                    try:
                        data_start = _member_data_offset(raw, info)
                        raw.seek(data_start)
                        dtype, fortran, shape, npy_header_size = _npy_header(
                            raw.read(1 << 16)
                        )
                        if not dtype.hasobject and int(np.prod(shape)) > 0:
                            array = np.memmap(
                                path,
                                dtype=dtype,
                                mode="r",
                                offset=data_start + npy_header_size,
                                shape=shape,
                                order="F" if fortran else "C",
                            )
                    except (ValueError, OSError):
                        array = None  # fall back to the eager read below
                if array is None:
                    with archive.open(name) as member:
                        array = np.lib.format.read_array(
                            member, allow_pickle=False
                        )
                    array.flags.writeable = False
                out[key] = array
    return out
