"""Stdlib-only JSON-over-HTTP prediction server.

``python -m repro.serving --artifact model.npz`` (or the ``gnn4tdl-serve``
console script) loads a :class:`~repro.serving.ModelArtifact` and exposes:

* ``GET /healthz`` — liveness + artifact summary + engine/batcher stats;
* ``GET /metrics`` — Prometheus text exposition for the whole deployment
  (one shared :class:`~repro.obs.MetricsRegistry` covers HTTP, engine,
  batcher: request/stage latency histograms, cache/UNK/batch gauges);
* ``POST /predict`` — score rows.  The body is either one row::

      {"numerical": [0.1, 2.3], "categorical": [4, 0]}

  or a batch::

      {"rows": [{"numerical": [...], "categorical": [...]}, ...]}

  Single-row requests from concurrent clients are coalesced by the
  micro-batcher; explicit batches go straight to the engine (they are
  already vectorized).  The response carries per-row class probabilities
  and argmax predictions.

* ``POST /admin/reload`` — zero-downtime artifact hot swap: the new
  artifact is loaded and a fresh engine + micro-batcher built *while the
  old ones keep serving*, routing switches atomically, and the old unit
  drains (in-flight requests finish, the micro-batcher flushes) before it
  is closed.  No request is dropped; ``artifact_generation`` on
  ``/healthz`` (and the ``repro_engine_artifact_generation`` gauge) bumps
  so operators can verify the swap landed.

While the engine is still initializing (``lazy_init=True`` binds the
socket before the engine is built) or a shutdown drain is in progress,
``/predict`` answers **503** with a structured JSON body instead of
hanging or surfacing a closed-batcher 500.  Shutdown (SIGTERM /
KeyboardInterrupt / :meth:`PredictionServer.shutdown`) drains: new work is
refused with 503, in-flight requests complete through
:meth:`MicroBatcher.flush`, then the listener closes.

Every request can be access-logged as one structured JSON line (method,
path, status, latency_ms, rows) on the ``repro.serving.access`` logger —
enabled by ``access_log=True`` / the CLI's ``--log-level info``, and off
by default so embedded/test servers stay quiet.

Built on :class:`http.server.ThreadingHTTPServer` so each in-flight request
occupies one handler thread — exactly the producer model the
micro-batcher coalesces across.  ``--workers N`` on the CLI switches to
the multi-process scale-out deployment (:mod:`repro.serving.scaleout`):
an async front door dispatching to N worker processes that share one
memory-mapped copy of the artifact's pool state; ``--workers 0`` (the
default) stays on this single-process server, which remains the
correctness oracle.
"""

from __future__ import annotations

import argparse
import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from repro.obs import MetricsRegistry
from repro.serving.artifact import ModelArtifact
from repro.serving.batching import MicroBatcher
from repro.serving.engine import InferenceEngine

#: structured JSON access-log lines go here; the CLI attaches a stderr
#: handler, embedded users attach their own (or leave it unhandled).
access_logger = logging.getLogger("repro.serving.access")


class _BadRequest(ValueError):
    """Client error → HTTP 400 with an explanatory JSON body."""


class _ServiceUnavailable(RuntimeError):
    """Server cannot score right now → HTTP 503 with a structured body.

    Raised while the engine is still initializing (lazy start) or while a
    shutdown drain is in progress — the states in which a request would
    previously have hit a closed micro-batcher and surfaced as a 500 (or
    simply hung).  503 tells load balancers to retry elsewhere.
    """


class _ReloadInProgress(RuntimeError):
    """A hot swap is already running → HTTP 409 (retry when it lands)."""


#: How much of an oversized (already-rejected) body the handler drains
#: before closing the socket — enough for any realistic over-limit client
#: to have its 413 delivered cleanly, bounded so a hostile stream cannot
#: occupy the handler thread indefinitely.
_DRAIN_LIMIT = 1 << 25  # 32 MiB


def _parse_row(row: Dict[str, object]) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    if not isinstance(row, dict) or "numerical" not in row:
        raise _BadRequest('each row must be an object with a "numerical" list')
    try:
        numerical = np.asarray(row["numerical"], dtype=np.float64).reshape(-1)
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"bad numerical values: {exc}") from exc
    categorical = None
    if row.get("categorical") is not None:
        try:
            categorical = np.asarray(row["categorical"], dtype=np.int64).reshape(-1)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"bad categorical values: {exc}") from exc
    return numerical, categorical


def execute_predict(
    engine: InferenceEngine,
    payload: Dict[str, object],
    submit=None,
) -> Dict[str, object]:
    """Score a parsed ``/predict`` body against ``engine``.

    The single request-semantics implementation shared by every deployment
    shape: the in-process :class:`PredictionServer` passes its
    micro-batcher's ``submit`` so concurrent single-row requests coalesce;
    scale-out workers (:mod:`repro.serving.scaleout.worker`) pass
    ``submit=None`` and single rows score directly — either way the wire
    contract (validation errors, response shape, rounding) is identical,
    which is what keeps ``--workers 0`` the correctness oracle for the
    multi-process deployment.
    """
    if not isinstance(payload, dict):
        raise _BadRequest("request body must be a JSON object")
    if "rows" in payload:
        rows = payload["rows"]
        if not isinstance(rows, list) or not rows:
            raise _BadRequest('"rows" must be a non-empty list')
        try:
            # Rows may mix present/absent categoricals; normalize_rows
            # fills absent ones with the -1 "missing" code so no row's
            # data is dropped.
            preprocessor = engine.artifact.preprocessor
            parsed = [
                preprocessor.normalize_rows(*_parse_row(row)) for row in rows
            ]
            numerical = np.concatenate([num for num, _ in parsed])
            categorical = np.concatenate([cat for _, cat in parsed])
            probs = engine.predict_batch(numerical, categorical)
        except ValueError as exc:  # ragged rows / wrong column count
            raise _BadRequest(str(exc)) from exc
    else:
        numerical, categorical = _parse_row(payload)
        try:
            if submit is not None:
                probs = np.atleast_2d(submit(numerical, categorical))
            else:
                probs = np.atleast_2d(engine.predict(numerical, categorical))
        except ValueError as exc:  # wrong column count for the artifact
            raise _BadRequest(str(exc)) from exc
    return {
        "predictions": probs.argmax(axis=1).tolist(),
        "probabilities": probs.round(6).tolist(),
        "rows": int(probs.shape[0]),
    }


class _Service:
    """One hot-swappable serving unit: artifact + engine + micro-batcher.

    Tracks its in-flight users so a swap can retire the old unit without
    dropping a single request: :meth:`retire` refuses new acquisitions
    (callers re-read the server's current service and land on the
    replacement), :meth:`drain` then waits for current users to finish,
    flushes the micro-batcher and closes it.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        engine: InferenceEngine,
        batcher: MicroBatcher,
        generation: int,
    ) -> None:
        self.artifact = artifact
        self.engine = engine
        self.batcher = batcher
        self.generation = int(generation)
        self._cond = threading.Condition()
        self._users = 0
        self._retired = False

    def acquire(self) -> bool:
        with self._cond:
            if self._retired:
                return False
            self._users += 1
            return True

    def release(self) -> None:
        with self._cond:
            self._users -= 1
            if self._users == 0:
                self._cond.notify_all()

    def retire(self) -> None:
        with self._cond:
            self._retired = True

    def drain(self, timeout: float = 10.0) -> None:
        self.retire()
        deadline = time.monotonic() + timeout
        with self._cond:
            self._cond.wait_for(
                lambda: self._users == 0,
                timeout=max(0.0, deadline - time.monotonic()),
            )
        self.batcher.flush(timeout=max(0.01, deadline - time.monotonic()))
        self.batcher.close()


class PredictionServer:
    """An :class:`InferenceEngine` + :class:`MicroBatcher` behind HTTP.

    Pass ``port=0`` to bind an ephemeral port (tests); the bound port is
    available as :attr:`port` after construction.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        host: str = "127.0.0.1",
        port: int = 8000,
        max_batch_size: int = 32,
        max_delay_ms: float = 2.0,
        cache_size: int = 256,
        max_body_bytes: int = 1 << 20,
        access_log: bool = False,
        registry: Optional[MetricsRegistry] = None,
        index: Optional[str] = None,
        nprobe: Optional[int] = None,
        lazy_init: bool = False,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        self.artifact = artifact
        self.max_body_bytes = int(max_body_bytes)
        self.access_log = bool(access_log)
        #: one registry for the whole deployment: HTTP, engine and batcher
        #: metrics all land here, so ``GET /metrics`` is a single scrape.
        self.registry = registry if registry is not None else MetricsRegistry()
        # Engine/batcher construction options are kept so reload() can
        # build the replacement service identically.
        self._engine_options = dict(
            cache_size=cache_size, index=index, nprobe=nprobe
        )
        self._batcher_options = dict(
            max_batch_size=max_batch_size, max_delay_ms=max_delay_ms
        )
        self.engine: Optional[InferenceEngine] = None
        self.batcher: Optional[MicroBatcher] = None
        self._service: Optional[_Service] = None
        self._generation = 0
        self._draining = False
        self._init_error: Optional[str] = None
        self._swap_lock = threading.Lock()    # guards _service installs
        self._reload_lock = threading.Lock()  # serializes hot swaps
        self.registry.gauge(
            "repro_engine_artifact_generation",
            "Monotonic artifact generation serving predictions "
            "(bumps on each hot swap).",
        ).set_function(lambda: float(self._generation))
        self._http_requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests by method, route and status.",
            labelnames=("method", "path", "status"),
        )
        self._http_duration = self.registry.histogram(
            "repro_http_request_duration_seconds",
            "HTTP request handling latency by route.",
            labelnames=("path",),
        )
        self._rejected_oversize = self.registry.counter(
            "repro_http_rejected_oversize_total",
            "Requests refused with HTTP 413 (body over max_body_bytes).",
        )
        server = self  # captured by the handler class below

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):
                # BaseHTTPRequestHandler's stderr chatter is replaced by the
                # structured JSON access log emitted in _finish().
                pass

            def _send_json(
                self, status: int, payload: Dict[str, object]
            ) -> None:
                body = json.dumps(payload).encode()
                self._status = status
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_text(self, status: int, body: str, content_type: str) -> None:
                data = body.encode()
                self._status = status
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def _finish(self, method: str, started: float) -> None:
                server._record_request(
                    method,
                    self.path,
                    getattr(self, "_status", 0),
                    time.perf_counter() - started,
                    getattr(self, "_rows", 0),
                )

            def do_GET(self) -> None:
                started = time.perf_counter()
                try:
                    if self.path in ("/healthz", "/health"):
                        self._send_json(200, server.health())
                    elif self.path == "/metrics":
                        self._send_text(
                            200,
                            server.metrics_text(),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    else:
                        self._send_json(
                            404, {"error": f"unknown path {self.path}"}
                        )
                finally:
                    self._finish("GET", started)

            def do_POST(self) -> None:
                started = time.perf_counter()
                try:
                    self._do_post()
                finally:
                    self._finish("POST", started)

            def _do_post(self) -> None:
                if self.path == "/admin/reload":
                    self._do_reload()
                    return
                if self.path != "/predict":
                    self._send_json(404, {"error": f"unknown path {self.path}"})
                    return
                try:
                    try:
                        length = int(self.headers.get("Content-Length", 0))
                    except (TypeError, ValueError):
                        self._send_json(
                            400, {"error": "invalid Content-Length header"}
                        )
                        return
                    if length > server.max_body_bytes:
                        # Refuse before buffering: an oversized body must
                        # never be held in memory.  The connection is closed
                        # so the remainder cannot be misparsed as a follow-up
                        # request, but the body is first drained (in fixed
                        # chunks, up to a bound) — closing with unread data
                        # pending would RST the socket and destroy the 413
                        # response before the client could read it.
                        self.close_connection = True
                        self._send_json(413, {
                            "error": (
                                f"request body of {length} bytes exceeds the "
                                f"{server.max_body_bytes}-byte limit"
                            )
                        })
                        remaining = min(length, _DRAIN_LIMIT)
                        while remaining > 0:
                            chunk = self.rfile.read(min(remaining, 1 << 16))
                            if not chunk:
                                break
                            remaining -= len(chunk)
                        return
                    try:
                        payload = json.loads(self.rfile.read(length) or b"{}")
                    except json.JSONDecodeError as exc:
                        raise _BadRequest(f"invalid JSON body: {exc}") from exc
                    response = server.predict(payload)
                    self._rows = int(response.get("rows", 0))
                    self._send_json(200, response)
                except _BadRequest as exc:
                    self._send_json(400, {"error": str(exc)})
                except _ServiceUnavailable as exc:
                    self._send_json(503, {
                        "error": str(exc),
                        "status": "unavailable",
                        "retriable": True,
                    })
                except Exception as exc:  # pragma: no cover - defensive
                    self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

            def _do_reload(self) -> None:
                try:
                    try:
                        length = int(self.headers.get("Content-Length", 0))
                    except (TypeError, ValueError):
                        self._send_json(
                            400, {"error": "invalid Content-Length header"}
                        )
                        return
                    try:
                        payload = json.loads(
                            self.rfile.read(min(length, 1 << 20)) or b"{}"
                        )
                    except json.JSONDecodeError as exc:
                        raise _BadRequest(f"invalid JSON body: {exc}") from exc
                    if not isinstance(payload, dict):
                        raise _BadRequest("request body must be a JSON object")
                    response = server.reload(
                        path=payload.get("artifact"),
                        mmap_mode=payload.get("mmap_mode"),
                    )
                    self._send_json(200, response)
                except _BadRequest as exc:
                    self._send_json(400, {"error": str(exc)})
                except _ReloadInProgress as exc:
                    self._send_json(409, {"error": str(exc)})
                except _ServiceUnavailable as exc:
                    self._send_json(503, {
                        "error": str(exc),
                        "status": "unavailable",
                        "retriable": True,
                    })
                except (FileNotFoundError, ValueError) as exc:
                    self._send_json(400, {"error": str(exc)})
                except Exception as exc:  # pragma: no cover - defensive
                    self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._init_thread: Optional[threading.Thread] = None
        if lazy_init:
            # Bind-first startup: the socket above is already accepting, so
            # health checks and load balancers see the port immediately;
            # /predict answers 503 until the engine lands.
            self._init_thread = threading.Thread(
                target=self._build_initial,
                args=(artifact,),
                name="repro-serving-init",
                daemon=True,
            )
            self._init_thread.start()
        else:
            try:
                self._install(self._build_service(artifact))
            except BaseException:
                self._httpd.server_close()
                raise

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _build_service(self, artifact: ModelArtifact) -> _Service:
        engine = InferenceEngine(
            artifact, registry=self.registry, **self._engine_options
        )
        batcher = MicroBatcher(
            engine, registry=self.registry, **self._batcher_options
        )
        return _Service(artifact, engine, batcher, self._generation + 1)

    def _install(self, service: _Service) -> Optional[_Service]:
        """Atomically make ``service`` the serving unit; return the old one."""
        with self._swap_lock:
            old, self._service = self._service, service
            self._generation = service.generation
            self.artifact = service.artifact
            self.engine = service.engine
            self.batcher = service.batcher
        return old

    def _build_initial(self, artifact: ModelArtifact) -> None:
        try:
            self._install(self._build_service(artifact))
        except Exception as exc:  # surfaced via /healthz and predict 503s
            self._init_error = f"{type(exc).__name__}: {exc}"

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until the (possibly lazily built) engine is serving."""
        deadline = time.monotonic() + timeout
        while self._service is None and self._init_error is None:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)
        return self._service is not None

    def reload(
        self,
        artifact: Optional[ModelArtifact] = None,
        path: Optional[str] = None,
        mmap_mode: Optional[str] = None,
    ) -> Dict[str, object]:
        """Zero-downtime artifact hot swap.

        Builds a fresh engine + micro-batcher (from ``artifact``, ``path``,
        or — with neither — the current artifact's ``source_path``) while
        the old unit keeps serving, switches routing atomically, then
        drains and closes the old unit.  In-flight requests finish on the
        engine that accepted them; requests that race the swap land on the
        replacement.  Raises :class:`_ReloadInProgress` when a swap is
        already running (HTTP 409) and keeps the old service on any load
        or build failure.
        """
        if self._draining:
            raise _ServiceUnavailable("server is draining")
        if not self._reload_lock.acquire(blocking=False):
            raise _ReloadInProgress("a reload is already in progress")
        try:
            if artifact is None:
                source = path
                if source is None and self.artifact is not None:
                    source = self.artifact.source_path
                    if mmap_mode is None:
                        mmap_mode = self.artifact.mmap_mode
                if source is None:
                    raise ValueError(
                        "no artifact to reload: pass artifact=/path= or "
                        "serve an artifact that knows its source_path"
                    )
                artifact = ModelArtifact.load(source, mmap_mode=mmap_mode)
            service = self._build_service(artifact)
            old = self._install(service)
            if old is not None:
                old.drain(timeout=10.0)
            return {
                "status": "ok",
                "artifact_generation": service.generation,
                "artifact_sha": artifact.content_sha,
                "formulation": artifact.formulation,
                "network": artifact.network,
            }
        finally:
            self._reload_lock.release()

    # ------------------------------------------------------------------
    #: known routes; anything else is grouped to keep label cardinality
    #: bounded against URL-scanning traffic.
    _ROUTES = ("/predict", "/healthz", "/health", "/metrics", "/admin/reload")

    def _record_request(
        self, method: str, path: str, status: int, duration: float, rows: int
    ) -> None:
        route = path if path in self._ROUTES else "other"
        self._http_requests.labels(
            method=method, path=route, status=str(status)
        ).inc()
        self._http_duration.labels(path=route).observe(duration)
        if status == 413:
            self._rejected_oversize.inc()
        if self.access_log:
            access_logger.info(json.dumps({
                "method": method,
                "path": path,
                "status": int(status),
                "latency_ms": round(duration * 1000.0, 3),
                "rows": int(rows),
            }, sort_keys=True))

    def metrics_text(self) -> str:
        """The deployment's registry in Prometheus text exposition."""
        return self.registry.render_prometheus()

    def health(self) -> Dict[str, object]:
        """Liveness plus which inference path this deployment runs.

        ``formulation``/``network``/``schema_version``/``incremental``/
        ``compiled``/``index``/``pool_rows`` are surfaced at the top level
        so operators can verify what a deployment serves — which
        formulation and artifact schema, whether requests ride a
        cached-pool incremental path, whether the compiled plan (vs the
        interpreted autograd path) executes them, and which retrieval
        index backend attaches queries (``index``/``nprobe``/
        ``index_build_ms``; ``index`` is ``null`` for formulations that do
        not retrieve from a pool) — without digging through the artifact
        summary.  Engine and batcher stats are
        *locked snapshots* (consistent under concurrent predicts), not
        reads of the live dicts.

        ``artifact_generation`` (monotonic, bumps on hot swap) and
        ``artifact_sha`` (content hash of the served ``.npz``) identify
        *which* artifact is serving — the fields an operator checks after
        ``POST /admin/reload``.
        """
        service = self._service
        if service is None:
            status = "error" if self._init_error else "initializing"
            payload: Dict[str, object] = {
                "status": status,
                "artifact_generation": 0,
                "server": {
                    "rejected_oversize": self._rejected_oversize.value,
                },
            }
            if self._init_error:
                payload["error"] = self._init_error
            return payload
        artifact, engine = service.artifact, service.engine
        return {
            "status": "draining" if self._draining else "ok",
            "formulation": artifact.formulation,
            "network": artifact.network,
            "schema_version": int(artifact.schema_version),
            "incremental": bool(engine.incremental),
            "compiled": bool(engine.compiled),
            "compile_ms": float(engine.compile_ms),
            "index": engine.index,
            "nprobe": engine.nprobe,
            "index_build_ms": float(engine.index_build_ms),
            "pool_rows": artifact.pool_rows,
            "artifact_generation": int(service.generation),
            "artifact_sha": artifact.content_sha,
            "mmapped": artifact.mmap_mode == "r",
            "artifact": artifact.summary(),
            "engine": engine.snapshot(),
            "batcher": service.batcher.snapshot(),
            "server": {
                "rejected_oversize": self._rejected_oversize.value,
            },
        }

    def predict(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Score a parsed request body (shared by HTTP handler and tests).

        Pins the current serving unit for the duration of the request so a
        concurrent hot swap cannot close the micro-batcher underneath it;
        a request that loses the race to a swap simply re-reads and scores
        on the replacement.
        """
        while True:
            if self._draining:
                raise _ServiceUnavailable("server is draining")
            service = self._service
            if service is None:
                raise _ServiceUnavailable(
                    self._init_error or "engine is initializing"
                )
            if service.acquire():
                break
            if self._service is service:
                # Retired with no replacement installed: shutting down.
                raise _ServiceUnavailable("server is draining")
        try:
            return execute_predict(
                service.engine, payload, submit=service.batcher.submit
            )
        finally:
            service.release()

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (Ctrl-C safe)."""
        self._serving = True
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.shutdown()

    def start(self) -> "PredictionServer":
        """Serve on a background thread (tests / embedding)."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serving", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Graceful stop: refuse new work with 503, let in-flight requests
        finish (micro-batcher flush included), then tear the listener down."""
        self._draining = True
        service = self._service
        if service is not None:
            service.drain(timeout=10.0)
        # BaseServer.shutdown() blocks on an event that only serve_forever
        # sets — calling it on a never-started server would hang forever.
        if self._serving:
            self._serving = False
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def main(argv=None) -> int:
    """CLI entry point: ``gnn4tdl-serve`` / ``python -m repro.serving``."""
    parser = argparse.ArgumentParser(
        prog="gnn4tdl-serve",
        description="Serve a trained GNN4TDL model artifact over HTTP.",
    )
    parser.add_argument("--artifact", required=True,
                        help="path to the .npz saved by ModelArtifact.save")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--max-body-bytes", type=int, default=1 << 20,
                        help="reject request bodies larger than this (HTTP 413)")
    parser.add_argument("--index", choices=("exact", "ivf"), default=None,
                        help="retrieval index backend for pool-attach "
                             "formulations (default: artifact config, else "
                             "the exact scan)")
    parser.add_argument("--nprobe", type=int, default=None,
                        help="IVF cells probed per query (recall/latency "
                             "knob; only meaningful with --index ivf)")
    parser.add_argument("--log-level", choices=("info", "quiet"), default="info",
                        help="info: one structured JSON access-log line per "
                             "request on stderr; quiet: no request logging")
    parser.add_argument("--workers", type=int, default=0,
                        help="N>0: multi-process scale-out serving — an async "
                             "front door dispatching to N worker processes "
                             "that memory-map one shared read-only copy of "
                             "the artifact; 0 (default): the single-process "
                             "in-memory server (the correctness oracle)")
    parser.add_argument("--lazy-init", action="store_true",
                        help="bind the port before building the engine; "
                             "/predict answers 503 until the engine is ready "
                             "(single-process mode only)")
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be >= 0")

    access_log = args.log_level != "quiet"
    if access_log and not access_logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        access_logger.addHandler(handler)
        access_logger.setLevel(logging.INFO)
        access_logger.propagate = False

    # Graceful SIGTERM: fall into the KeyboardInterrupt path, which drains
    # in-flight requests before the process exits.
    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _on_sigterm)

    if args.workers > 0:
        from repro.serving.scaleout import ScaleOutServer

        try:
            server = ScaleOutServer(
                args.artifact,
                workers=args.workers,
                host=args.host,
                port=args.port,
                cache_size=args.cache_size,
                max_body_bytes=args.max_body_bytes,
                access_log=access_log,
                index=args.index,
                nprobe=args.nprobe,
            )
        except (FileNotFoundError, ValueError, RuntimeError) as exc:
            parser.error(str(exc))
        summary = ", ".join(
            f"{k}={v}" for k, v in server.artifact_summary().items()
        )
        print(f"serving {summary}")
        print(f"listening on {server.url}  "
              f"(POST /predict, GET /healthz, GET /metrics, "
              f"POST /admin/reload; workers={args.workers})")
        server.serve_forever()
        return 0

    try:
        artifact = ModelArtifact.load(args.artifact)
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
    try:
        server = PredictionServer(
            artifact,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_delay_ms=args.max_delay_ms,
            cache_size=args.cache_size,
            max_body_bytes=args.max_body_bytes,
            access_log=access_log,
            index=args.index,
            nprobe=args.nprobe,
            lazy_init=args.lazy_init,
        )
    except ValueError as exc:  # e.g. --index on a non-retrieval formulation
        parser.error(str(exc))
    summary = ", ".join(f"{k}={v}" for k, v in artifact.summary().items())
    print(f"serving {summary}")
    print(f"listening on {server.url}  "
          f"(POST /predict, GET /healthz, GET /metrics)")
    server.serve_forever()
    return 0
