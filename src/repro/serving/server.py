"""Stdlib-only JSON-over-HTTP prediction server.

``python -m repro.serving --artifact model.npz`` (or the ``gnn4tdl-serve``
console script) loads a :class:`~repro.serving.ModelArtifact` and exposes:

* ``GET /healthz`` — liveness + artifact summary + engine/batcher stats;
* ``GET /metrics`` — Prometheus text exposition for the whole deployment
  (one shared :class:`~repro.obs.MetricsRegistry` covers HTTP, engine,
  batcher: request/stage latency histograms, cache/UNK/batch gauges);
* ``POST /predict`` — score rows.  The body is either one row::

      {"numerical": [0.1, 2.3], "categorical": [4, 0]}

  or a batch::

      {"rows": [{"numerical": [...], "categorical": [...]}, ...]}

  Single-row requests from concurrent clients are coalesced by the
  micro-batcher; explicit batches go straight to the engine (they are
  already vectorized).  The response carries per-row class probabilities
  and argmax predictions.

Every request can be access-logged as one structured JSON line (method,
path, status, latency_ms, rows) on the ``repro.serving.access`` logger —
enabled by ``access_log=True`` / the CLI's ``--log-level info``, and off
by default so embedded/test servers stay quiet.

Built on :class:`http.server.ThreadingHTTPServer` so each in-flight request
occupies one handler thread — exactly the producer model the
micro-batcher coalesces across.
"""

from __future__ import annotations

import argparse
import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from repro.obs import MetricsRegistry
from repro.serving.artifact import ModelArtifact
from repro.serving.batching import MicroBatcher
from repro.serving.engine import InferenceEngine

#: structured JSON access-log lines go here; the CLI attaches a stderr
#: handler, embedded users attach their own (or leave it unhandled).
access_logger = logging.getLogger("repro.serving.access")


class _BadRequest(ValueError):
    """Client error → HTTP 400 with an explanatory JSON body."""


#: How much of an oversized (already-rejected) body the handler drains
#: before closing the socket — enough for any realistic over-limit client
#: to have its 413 delivered cleanly, bounded so a hostile stream cannot
#: occupy the handler thread indefinitely.
_DRAIN_LIMIT = 1 << 25  # 32 MiB


def _parse_row(row: Dict[str, object]) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    if not isinstance(row, dict) or "numerical" not in row:
        raise _BadRequest('each row must be an object with a "numerical" list')
    try:
        numerical = np.asarray(row["numerical"], dtype=np.float64).reshape(-1)
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"bad numerical values: {exc}") from exc
    categorical = None
    if row.get("categorical") is not None:
        try:
            categorical = np.asarray(row["categorical"], dtype=np.int64).reshape(-1)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"bad categorical values: {exc}") from exc
    return numerical, categorical


class PredictionServer:
    """An :class:`InferenceEngine` + :class:`MicroBatcher` behind HTTP.

    Pass ``port=0`` to bind an ephemeral port (tests); the bound port is
    available as :attr:`port` after construction.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        host: str = "127.0.0.1",
        port: int = 8000,
        max_batch_size: int = 32,
        max_delay_ms: float = 2.0,
        cache_size: int = 256,
        max_body_bytes: int = 1 << 20,
        access_log: bool = False,
        registry: Optional[MetricsRegistry] = None,
        index: Optional[str] = None,
        nprobe: Optional[int] = None,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        self.artifact = artifact
        self.max_body_bytes = int(max_body_bytes)
        self.access_log = bool(access_log)
        #: one registry for the whole deployment: HTTP, engine and batcher
        #: metrics all land here, so ``GET /metrics`` is a single scrape.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.engine = InferenceEngine(
            artifact, cache_size=cache_size, registry=self.registry,
            index=index, nprobe=nprobe,
        )
        self.batcher = MicroBatcher(
            self.engine, max_batch_size=max_batch_size, max_delay_ms=max_delay_ms,
            registry=self.registry,
        )
        self._http_requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests by method, route and status.",
            labelnames=("method", "path", "status"),
        )
        self._http_duration = self.registry.histogram(
            "repro_http_request_duration_seconds",
            "HTTP request handling latency by route.",
            labelnames=("path",),
        )
        self._rejected_oversize = self.registry.counter(
            "repro_http_rejected_oversize_total",
            "Requests refused with HTTP 413 (body over max_body_bytes).",
        )
        server = self  # captured by the handler class below

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):
                # BaseHTTPRequestHandler's stderr chatter is replaced by the
                # structured JSON access log emitted in _finish().
                pass

            def _send_json(
                self, status: int, payload: Dict[str, object]
            ) -> None:
                body = json.dumps(payload).encode()
                self._status = status
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_text(self, status: int, body: str, content_type: str) -> None:
                data = body.encode()
                self._status = status
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def _finish(self, method: str, started: float) -> None:
                server._record_request(
                    method,
                    self.path,
                    getattr(self, "_status", 0),
                    time.perf_counter() - started,
                    getattr(self, "_rows", 0),
                )

            def do_GET(self) -> None:
                started = time.perf_counter()
                try:
                    if self.path in ("/healthz", "/health"):
                        self._send_json(200, server.health())
                    elif self.path == "/metrics":
                        self._send_text(
                            200,
                            server.metrics_text(),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    else:
                        self._send_json(
                            404, {"error": f"unknown path {self.path}"}
                        )
                finally:
                    self._finish("GET", started)

            def do_POST(self) -> None:
                started = time.perf_counter()
                try:
                    self._do_post()
                finally:
                    self._finish("POST", started)

            def _do_post(self) -> None:
                if self.path != "/predict":
                    self._send_json(404, {"error": f"unknown path {self.path}"})
                    return
                try:
                    try:
                        length = int(self.headers.get("Content-Length", 0))
                    except (TypeError, ValueError):
                        self._send_json(
                            400, {"error": "invalid Content-Length header"}
                        )
                        return
                    if length > server.max_body_bytes:
                        # Refuse before buffering: an oversized body must
                        # never be held in memory.  The connection is closed
                        # so the remainder cannot be misparsed as a follow-up
                        # request, but the body is first drained (in fixed
                        # chunks, up to a bound) — closing with unread data
                        # pending would RST the socket and destroy the 413
                        # response before the client could read it.
                        self.close_connection = True
                        self._send_json(413, {
                            "error": (
                                f"request body of {length} bytes exceeds the "
                                f"{server.max_body_bytes}-byte limit"
                            )
                        })
                        remaining = min(length, _DRAIN_LIMIT)
                        while remaining > 0:
                            chunk = self.rfile.read(min(remaining, 1 << 16))
                            if not chunk:
                                break
                            remaining -= len(chunk)
                        return
                    try:
                        payload = json.loads(self.rfile.read(length) or b"{}")
                    except json.JSONDecodeError as exc:
                        raise _BadRequest(f"invalid JSON body: {exc}") from exc
                    response = server.predict(payload)
                    self._rows = int(response.get("rows", 0))
                    self._send_json(200, response)
                except _BadRequest as exc:
                    self._send_json(400, {"error": str(exc)})
                except Exception as exc:  # pragma: no cover - defensive
                    self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    #: known routes; anything else is grouped to keep label cardinality
    #: bounded against URL-scanning traffic.
    _ROUTES = ("/predict", "/healthz", "/health", "/metrics")

    def _record_request(
        self, method: str, path: str, status: int, duration: float, rows: int
    ) -> None:
        route = path if path in self._ROUTES else "other"
        self._http_requests.labels(
            method=method, path=route, status=str(status)
        ).inc()
        self._http_duration.labels(path=route).observe(duration)
        if status == 413:
            self._rejected_oversize.inc()
        if self.access_log:
            access_logger.info(json.dumps({
                "method": method,
                "path": path,
                "status": int(status),
                "latency_ms": round(duration * 1000.0, 3),
                "rows": int(rows),
            }, sort_keys=True))

    def metrics_text(self) -> str:
        """The deployment's registry in Prometheus text exposition."""
        return self.registry.render_prometheus()

    def health(self) -> Dict[str, object]:
        """Liveness plus which inference path this deployment runs.

        ``formulation``/``network``/``schema_version``/``incremental``/
        ``compiled``/``index``/``pool_rows`` are surfaced at the top level
        so operators can verify what a deployment serves — which
        formulation and artifact schema, whether requests ride a
        cached-pool incremental path, whether the compiled plan (vs the
        interpreted autograd path) executes them, and which retrieval
        index backend attaches queries (``index``/``nprobe``/
        ``index_build_ms``; ``index`` is ``null`` for formulations that do
        not retrieve from a pool) — without digging through the artifact
        summary.  Engine and batcher stats are
        *locked snapshots* (consistent under concurrent predicts), not
        reads of the live dicts.
        """
        return {
            "status": "ok",
            "formulation": self.artifact.formulation,
            "network": self.artifact.network,
            "schema_version": int(self.artifact.schema_version),
            "incremental": bool(self.engine.incremental),
            "compiled": bool(self.engine.compiled),
            "compile_ms": float(self.engine.compile_ms),
            "index": self.engine.index,
            "nprobe": self.engine.nprobe,
            "index_build_ms": float(self.engine.index_build_ms),
            "pool_rows": self.artifact.pool_rows,
            "artifact": self.artifact.summary(),
            "engine": self.engine.snapshot(),
            "batcher": self.batcher.snapshot(),
            "server": {
                "rejected_oversize": self._rejected_oversize.value,
            },
        }

    def predict(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Score a parsed request body (shared by HTTP handler and tests)."""
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        if "rows" in payload:
            rows = payload["rows"]
            if not isinstance(rows, list) or not rows:
                raise _BadRequest('"rows" must be a non-empty list')
            try:
                # Rows may mix present/absent categoricals; normalize_rows
                # fills absent ones with the -1 "missing" code so no row's
                # data is dropped.
                parsed = [
                    self.artifact.preprocessor.normalize_rows(*_parse_row(row))
                    for row in rows
                ]
                numerical = np.concatenate([num for num, _ in parsed])
                categorical = np.concatenate([cat for _, cat in parsed])
                probs = self.engine.predict_batch(numerical, categorical)
            except ValueError as exc:  # ragged rows / wrong column count
                raise _BadRequest(str(exc)) from exc
        else:
            numerical, categorical = _parse_row(payload)
            try:
                probs = np.atleast_2d(self.batcher.submit(numerical, categorical))
            except ValueError as exc:  # wrong column count for the artifact
                raise _BadRequest(str(exc)) from exc
        return {
            "predictions": probs.argmax(axis=1).tolist(),
            "probabilities": probs.round(6).tolist(),
            "rows": int(probs.shape[0]),
        }

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (Ctrl-C safe)."""
        self._serving = True
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.shutdown()

    def start(self) -> "PredictionServer":
        """Serve on a background thread (tests / embedding)."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serving", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        # BaseServer.shutdown() blocks on an event that only serve_forever
        # sets — calling it on a never-started server would hang forever.
        if self._serving:
            self._serving = False
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.batcher.close()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def main(argv=None) -> int:
    """CLI entry point: ``gnn4tdl-serve`` / ``python -m repro.serving``."""
    parser = argparse.ArgumentParser(
        prog="gnn4tdl-serve",
        description="Serve a trained GNN4TDL model artifact over HTTP.",
    )
    parser.add_argument("--artifact", required=True,
                        help="path to the .npz saved by ModelArtifact.save")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--max-body-bytes", type=int, default=1 << 20,
                        help="reject request bodies larger than this (HTTP 413)")
    parser.add_argument("--index", choices=("exact", "ivf"), default=None,
                        help="retrieval index backend for pool-attach "
                             "formulations (default: artifact config, else "
                             "the exact scan)")
    parser.add_argument("--nprobe", type=int, default=None,
                        help="IVF cells probed per query (recall/latency "
                             "knob; only meaningful with --index ivf)")
    parser.add_argument("--log-level", choices=("info", "quiet"), default="info",
                        help="info: one structured JSON access-log line per "
                             "request on stderr; quiet: no request logging")
    args = parser.parse_args(argv)

    try:
        artifact = ModelArtifact.load(args.artifact)
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
    access_log = args.log_level != "quiet"
    if access_log and not access_logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        access_logger.addHandler(handler)
        access_logger.setLevel(logging.INFO)
        access_logger.propagate = False
    try:
        server = PredictionServer(
            artifact,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_delay_ms=args.max_delay_ms,
            cache_size=args.cache_size,
            max_body_bytes=args.max_body_bytes,
            access_log=access_log,
            index=args.index,
            nprobe=args.nprobe,
        )
    except ValueError as exc:  # e.g. --index on a non-retrieval formulation
        parser.error(str(exc))
    summary = ", ".join(f"{k}={v}" for k, v in artifact.summary().items())
    print(f"serving {summary}")
    print(f"listening on {server.url}  "
          f"(POST /predict, GET /healthz, GET /metrics)")
    server.serve_forever()
    return 0
