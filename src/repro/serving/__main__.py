"""``python -m repro.serving`` — serve a model artifact over HTTP."""

from repro.serving.server import main

if __name__ == "__main__":
    raise SystemExit(main())
