"""The compiled-plan kernel vocabulary: pure-numpy, no autograd.

Every kernel is a plain function ``kernel(out, *arrays, **params)`` that
writes its result into the preallocated ``out`` buffer — no
:class:`repro.tensor.Tensor` wrappers, no backward-closure registration,
no per-op output allocation.  ``KERNELS`` maps the step-vocabulary names
an :class:`~repro.serving.compiled.InferencePlan` speaks to these
implementations; a swap-in backend (a torch executor, say) implements the
same names against its own buffer type and can execute any plan the
lowerings in this package emit.

Buffer discipline: step *outputs* always land in plan-owned preallocated
buffers (that is what makes execution allocation-stable across requests);
kernels may allocate small O(B·k·d) internal temporaries where an
``out=`` form does not exist — per-request garbage stays bounded by the
query-block size, never the pool size.

Numerical contract: each kernel reproduces the corresponding
``repro.tensor.ops`` formula exactly (same clipping, same max-shift
softmax), so compiled plans match the autograd path to floating-point
round-off — the 1e-8 parity the formulation matrix enforces.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np


# ---------------------------------------------------------------------------
# dense algebra
# ---------------------------------------------------------------------------
def linear(out: np.ndarray, x: np.ndarray, w: np.ndarray, b=None) -> None:
    """``out = x @ w (+ b)`` — the affine map of :class:`repro.nn.Linear`."""
    np.matmul(x, w, out=out)
    if b is not None:
        out += b


def add(out: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
    """``out = a + b`` (out may alias either operand)."""
    np.add(a, b, out=out)


def add_scaled(out: np.ndarray, a: np.ndarray, b: np.ndarray, *, alpha: float) -> None:
    """``out = a + alpha * b`` (out must not alias ``a`` or ``b``)."""
    np.multiply(b, alpha, out=out)
    out += a


def relu(out: np.ndarray, x: np.ndarray) -> None:
    np.maximum(x, 0.0, out=out)


def elu(out: np.ndarray, x: np.ndarray, *, alpha: float = 1.0) -> None:
    """Matches ``ops.elu``: ``where(x > 0, x, alpha * (exp(min(x, 0)) - 1))``."""
    out[...] = np.where(x > 0.0, x, alpha * (np.exp(np.minimum(x, 0.0)) - 1.0))


def leaky_relu(out: np.ndarray, x: np.ndarray, *, slope: float = 0.2) -> None:
    out[...] = np.where(x > 0.0, x, slope * x)


def tanh(out: np.ndarray, x: np.ndarray) -> None:
    np.tanh(x, out=out)


def sigmoid(out: np.ndarray, x: np.ndarray) -> None:
    """Matches ``ops.sigmoid``: input clipped to ±60 before the exponential."""
    np.clip(x, -60.0, 60.0, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    out += 1.0
    np.reciprocal(out, out=out)


def _softmax_inplace(scores: np.ndarray, axis: int) -> None:
    """Max-shifted softmax in place — the ``softmax_rows`` formula."""
    scores -= scores.max(axis=axis, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=axis, keepdims=True)


# ---------------------------------------------------------------------------
# gather / attach aggregation
# ---------------------------------------------------------------------------
def gather_rows(out: np.ndarray, table: np.ndarray, idx: np.ndarray) -> None:
    """``out = table[idx]`` along axis 0 (idx of any shape)."""
    np.take(table, idx, axis=0, out=out)


def gather_sum(out: np.ndarray, table: np.ndarray, idx: np.ndarray) -> None:
    """``out[b] = Σ_j table[idx[b, j]]`` — unweighted attach aggregation."""
    batch, k = idx.shape
    out[...] = table[idx.ravel()].reshape(batch, k, -1).sum(axis=1)


def gather_sum_add(out: np.ndarray, a: np.ndarray, table: np.ndarray, idx: np.ndarray) -> None:
    """``out = a + Σ_j table[idx[b, j]]`` — fused gather→sum→add."""
    batch, k = idx.shape
    np.add(a, table[idx.ravel()].reshape(batch, k, -1).sum(axis=1), out=out)


def gather_weighted_sum(
    out: np.ndarray, table: np.ndarray, idx: np.ndarray, w: np.ndarray
) -> None:
    """``out[b] = Σ_j w[b, j] · table[idx[b, j]]`` — weighted attach edges."""
    batch, k = idx.shape
    np.einsum(
        "bkd,bk->bd", table[idx.ravel()].reshape(batch, k, -1), w, out=out
    )


def gather_where(
    out: np.ndarray,
    table: np.ndarray,
    idx: np.ndarray,
    mask: np.ndarray,
    fallback: np.ndarray,
) -> None:
    """``out[b] = table[idx[b]] if mask[b] else fallback[b]`` (1-D idx)."""
    np.take(table, idx, axis=0, out=out)
    miss = ~mask
    if miss.any():
        out[miss] = fallback[miss]


def masked_gather_add(
    out: np.ndarray, table: np.ndarray, idx: np.ndarray, mask: np.ndarray
) -> None:
    """``out[b] += table[idx[b]] if mask[b] else 0`` (idx pre-clipped ≥ 0)."""
    gathered = table[idx]
    gathered[~mask] = 0.0
    out += gathered


def segment_weighted_rows(
    out: np.ndarray,
    table: np.ndarray,
    bias: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
) -> None:
    """``out[q] = bias + Σ_{e: dst_e = q} w_e · table[src_e]``.

    The hypergraph attach readout: a weighted segment-sum over a
    variable-length edge list (edge count varies per request, the output
    buffer does not).
    """
    out[...] = bias
    if src.size:
        np.add.at(out, dst, table[src] * w[:, None])


# ---------------------------------------------------------------------------
# fused attach-attention (GAT over the fixed k + 1 attach topology)
# ---------------------------------------------------------------------------
def gat_attach(
    out: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    att_src: np.ndarray,
    att_dst: np.ndarray,
    bias: np.ndarray,
    pool_h: np.ndarray,
    pool_score: np.ndarray,
    idx: np.ndarray,
    hq: np.ndarray,
    vals: np.ndarray,
    scores: np.ndarray,
    *,
    slope: float,
    concat: bool,
) -> None:
    """One GAT layer over the attach view, fused gather→score→softmax→sum.

    Each query attends over exactly its ``k`` retrieved neighbors plus its
    self loop, per head — a dense ``(B, k+1, heads)`` softmax replacing the
    interpreted path's ``segment_softmax`` over the local edge list (same
    per-destination max-shift, same edge order: neighbors then loop).
    ``pool_h`` / ``pool_score`` are the pool states pre-projected through
    the layer weights at compile time.
    """
    batch, k = idx.shape
    heads, out_features = att_src.shape
    flat = idx.ravel()
    np.matmul(x, weight, out=hq.reshape(batch, heads * out_features))
    vals[:, :k] = pool_h[flat].reshape(batch, k, heads, out_features)
    vals[:, k] = hq
    scores[:, :k] = pool_score[flat].reshape(batch, k, heads)
    scores[:, k] = np.einsum("bho,ho->bh", hq, att_src)
    scores += np.einsum("bho,ho->bh", hq, att_dst)[:, None, :]
    scores[...] = np.where(scores > 0.0, scores, slope * scores)
    _softmax_inplace(scores, axis=1)
    agg = np.einsum("bjh,bjho->bho", scores, vals)
    if concat:
        out[...] = agg.reshape(batch, heads * out_features)
    else:
        np.mean(agg, axis=1, out=out)
    out += bias


# ---------------------------------------------------------------------------
# gated GRU step
# ---------------------------------------------------------------------------
def gru_step(
    out: np.ndarray,
    x: np.ndarray,
    h: np.ndarray,
    w_ir: np.ndarray, w_hr: np.ndarray, b_r: np.ndarray,
    w_iz: np.ndarray, w_hz: np.ndarray, b_z: np.ndarray,
    w_in: np.ndarray, w_hn: np.ndarray, b_n: np.ndarray,
    r: np.ndarray, z: np.ndarray, n: np.ndarray, tmp: np.ndarray,
) -> None:
    """One :class:`repro.nn.GRUCell` update, scratch buffers preallocated.

    ``out`` must not alias ``x`` or ``h``; the four trailing buffers are
    (B, hidden) scratch reused across requests.
    """
    np.matmul(x, w_ir, out=r)
    np.matmul(h, w_hr, out=tmp)
    r += tmp
    r += b_r
    sigmoid(r, r)
    np.matmul(x, w_iz, out=z)
    np.matmul(h, w_hz, out=tmp)
    z += tmp
    z += b_z
    sigmoid(z, z)
    np.multiply(r, h, out=r)  # reset-gated hidden state
    np.matmul(x, w_in, out=n)
    np.matmul(r, w_hn, out=tmp)
    n += tmp
    n += b_n
    np.tanh(n, out=n)
    np.subtract(1.0, z, out=tmp)
    np.multiply(tmp, n, out=out)
    np.multiply(z, h, out=tmp)
    out += tmp


# ---------------------------------------------------------------------------
# feature-graph (columns-as-nodes) kernels
# ---------------------------------------------------------------------------
def feature_tokens(out: np.ndarray, x: np.ndarray, w: np.ndarray, b: np.ndarray) -> None:
    """Feature tokenizer: ``out[b, f] = x[b, f] * w[f] + b[f]`` (B, F, E)."""
    np.multiply(x[:, :, None], w, out=out)
    out += b


def feature_layer(
    out: np.ndarray,
    adj: np.ndarray,
    w: np.ndarray,
    b: np.ndarray,
    flat: np.ndarray,
    msg: np.ndarray,
) -> None:
    """One learned-field-graph propagation, in place on the token buffer:
    ``h ← relu(h + adj @ (h @ w + b))`` with (B, F, E) scratch buffers."""
    batch, nodes, dim = out.shape
    np.matmul(out.reshape(batch * nodes, dim), w, out=flat.reshape(batch * nodes, -1))
    flat += b
    np.matmul(adj, flat, out=msg)
    out += msg
    np.maximum(out, 0.0, out=out)


def attention_readout(
    out: np.ndarray, h: np.ndarray, w: np.ndarray, b: np.ndarray, scores: np.ndarray
) -> None:
    """Gated attention pooling over the node axis (B, F, E) → (B, E)."""
    batch, nodes, dim = h.shape
    np.matmul(h.reshape(batch * nodes, dim), w, out=scores.reshape(batch * nodes, 1))
    scores += b
    _softmax_inplace(scores, axis=1)
    np.einsum("bf,bfe->be", scores, h, out=out)


# ---------------------------------------------------------------------------
# multiplex (TabGNN) relation fusion
# ---------------------------------------------------------------------------
def tabgnn_fuse(
    out: np.ndarray, att_vec: np.ndarray, scores: np.ndarray, *embs: np.ndarray
) -> None:
    """Attention fusion over relation embeddings: softmax-weighted sum.

    ``scores`` is (B, R) scratch; ``out`` may be a column view into a
    concat parent buffer (accumulation handles strided outputs).
    """
    for rel, h in enumerate(embs):
        np.einsum("bh,h->b", np.tanh(h), att_vec, out=scores[:, rel])
    _softmax_inplace(scores, axis=1)
    out.fill(0.0)
    for rel, h in enumerate(embs):
        out += scores[:, rel : rel + 1] * h


#: The step vocabulary — op name → numpy implementation.  Lowerings emit
#: only these names; alternate executors implement the same table.
KERNELS: Dict[str, Callable[..., None]] = {
    "linear": linear,
    "add": add,
    "add_scaled": add_scaled,
    "relu": relu,
    "elu": elu,
    "leaky_relu": leaky_relu,
    "tanh": tanh,
    "sigmoid": sigmoid,
    "gather_rows": gather_rows,
    "gather_sum": gather_sum,
    "gather_sum_add": gather_sum_add,
    "gather_weighted_sum": gather_weighted_sum,
    "gather_where": gather_where,
    "masked_gather_add": masked_gather_add,
    "segment_weighted_rows": segment_weighted_rows,
    "gat_attach": gat_attach,
    "gru_step": gru_step,
    "feature_tokens": feature_tokens,
    "feature_layer": feature_layer,
    "attention_readout": attention_readout,
    "tabgnn_fuse": tabgnn_fuse,
}
