"""Compiled inference plans: the serve hot path without autograd.

Training uses the tape-based :class:`~repro.tensor.Tensor` autograd; that
generality costs the serve path dearly — every op wraps arrays, registers
backward closures, and allocates. This package traces a fitted scorer's
query-scoring path **once** and lowers it to a flat
:class:`~repro.serving.compiled.plan.InferencePlan`: an ordered list of
pure-numpy kernel steps over preallocated, reused buffers. Pool-side work
(neighbor projections, per-value group means, typed edge transforms, the
hypergraph head) is folded into compile-time constants, so a request
executes only the query-dependent kernels.

Plan-step vocabulary (the backend contract)
-------------------------------------------
Every step is ``KERNELS[op](out, *inputs, **params)`` with ``out``
preallocated by the plan. A swap-in backend (e.g. a GPU runtime) replaces
:data:`KERNELS` with same-named implementations of:

================== =====================================================
``linear``          ``out = x @ w (+ b)``
``add``             elementwise sum
``add_scaled``      ``out = a + alpha * b``
``relu``/``elu``/``leaky_relu``/``tanh``/``sigmoid``  activations
``gather_rows``     row gather ``out = table[idx]``
``gather_sum``      sum of ``k`` gathered rows per query
``gather_sum_add``  ``gather_sum`` plus a per-query base term
``gather_weighted_sum``  weighted neighbor sum (GCN attach weights)
``gather_where``    gathered row where masked, fallback row otherwise
``masked_gather_add``    accumulate gathered rows where masked
``segment_weighted_rows``  weighted segment-sum over an edge list
``gat_attach``      fused multi-head attention attach (one GAT layer)
``gru_step``        one GRU cell update (gated networks)
``feature_tokens``  per-field scalar → embedding tokens
``feature_layer``   one feature-graph propagation (residual + relu)
``attention_readout``    attention-pooled readout over field tokens
``tabgnn_fuse``     per-instance attention fusion over relation embeddings
================== =====================================================

Compilation is best-effort: each ``compile_*`` returns ``None`` for any
configuration its lowering does not cover, and callers keep the
interpreted autograd path — plug-in formulations work unchanged.
"""

from .kernels import KERNELS
from .lowering import InstanceExecutor, compile_instance
from .executors import (
    FeatureExecutor,
    HeteroExecutor,
    HypergraphExecutor,
    MultiplexExecutor,
    compile_feature,
    compile_hetero,
    compile_hypergraph,
    compile_multiplex,
)
from .plan import InferencePlan, PlanBuilder, PlanStep, UnsupportedPlanError

__all__ = [
    "KERNELS",
    "InferencePlan",
    "PlanBuilder",
    "PlanStep",
    "UnsupportedPlanError",
    "InstanceExecutor",
    "FeatureExecutor",
    "MultiplexExecutor",
    "HeteroExecutor",
    "HypergraphExecutor",
    "compile_instance",
    "compile_feature",
    "compile_multiplex",
    "compile_hetero",
    "compile_hypergraph",
]
