"""Lower the instance-network query path to a flat kernel plan.

``compile_instance`` walks a model-zoo network's
:meth:`~repro.gnn.networks._NodeNetwork.serve_plan` — the same
local/propagate step sequence :meth:`propagate_queries` replays — and
emits one :class:`~repro.serving.compiled.plan.InferencePlan` per scorer.
The heavy lifting happens at compile time: every request-invariant
pool-side quantity is pushed through the layer weights once —

* GCN: ``pool_hiddens @ W + b`` plus the pre-scaled attach coefficients
  ``deg^-1/2 / sqrt(k+1)`` (the affine map distributes over the weighted
  aggregate exactly);
* SAGE: the concat weight splits into a self half and a neighbor half
  with the ``1/k`` mean folded in;
* GAT: per-head pool projections and their source attention scores, so
  the per-request fused ``gat_attach`` kernel only scores/softmaxes
  ``(B, k+1, heads)``;
* gated: pool messages with the ``1/(k+1)`` mean-with-loops coefficient
  folded into both the pool table and the query's message weights;
* GIN aggregates raw states (the nonlinear MLP follows aggregation), so
  only the gather fuses.

Anything the walker does not recognize — an unknown conv family, a GAT
layer with edge features, a custom local step — raises
:class:`~repro.serving.compiled.plan.UnsupportedPlanError`, and
``compile_instance`` returns ``None`` so the caller keeps the interpreted
autograd path (plug-in networks keep working unchanged).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.gnn.attention import GATConv
from repro.gnn.conv import GCNConv, GINConv, GatedGraphConv, SAGEConv
from repro.tensor import ops

from .plan import InferencePlan, PlanBuilder, UnsupportedPlanError

#: plain-function activations a ``_Local`` step may carry → kernel op
_ACTIVATION_OPS = {
    ops.relu: "relu",
    ops.elu: "elu",
    ops.leaky_relu: "leaky_relu",
    ops.tanh: "tanh",
    ops.sigmoid: "sigmoid",
}


def lower_linear(
    builder: PlanBuilder, linear: nn.Linear, h: str, out: Optional[str] = None
) -> Tuple[str, int]:
    """Emit ``out = h @ W (+ b)``; returns (buffer name, width)."""
    width = int(linear.out_features)
    w = builder.const(builder.fresh("w"), linear.weight.data)
    inputs = (h, w)
    if linear.bias is not None:
        inputs = (h, w, builder.const(builder.fresh("b"), linear.bias.data))
    if out is None:
        out = builder.buffer(builder.fresh("lin"), lambda batch, d=width: (batch, d))
    builder.step("linear", inputs, out)
    return out, width


def lower_activation_fn(builder: PlanBuilder, fn, h: str, width: int) -> str:
    """Emit a named activation on ``h`` (in place unless ``h`` is a feed)."""
    op = _ACTIVATION_OPS.get(fn)
    if op is None:
        raise UnsupportedPlanError(f"unsupported local step: {fn!r}")
    if h == "x":  # never mutate the caller-owned feature feed
        out = builder.buffer(builder.fresh("act"), lambda batch, d=width: (batch, d))
        builder.step(op, (h,), out)
        return out
    builder.step(op, (h,), h)
    return h


def lower_mlp(builder: PlanBuilder, mlp: nn.MLP, h: str, width: int) -> Tuple[str, int]:
    """Lower an :class:`repro.nn.MLP` layer by layer (eval mode)."""
    for layer in mlp.net:
        if isinstance(layer, nn.Linear):
            h, width = lower_linear(builder, layer, h)
        elif isinstance(layer, nn.Activation):
            if layer.name == "identity":
                continue
            if layer.name not in ("relu", "elu", "leaky_relu", "tanh", "sigmoid"):
                raise UnsupportedPlanError(
                    f"unsupported MLP activation: {layer.name!r}"
                )
            builder.step(layer.name, (h,), h)
        elif isinstance(layer, nn.Dropout):
            continue  # eval mode: identity
        else:
            raise UnsupportedPlanError(f"unsupported MLP layer: {type(layer).__name__}")
    return h, width


def _lower_gcn(builder, conv, pool_hidden, k, h):
    width = int(conv.linear.out_features)
    proj = pool_hidden @ conv.linear.weight.data
    if conv.linear.bias is not None:
        proj = proj + conv.linear.bias.data
    pool_proj = builder.const(builder.fresh("gcn_pool"), proj)
    selfp, _ = lower_linear(builder, conv.linear, h)
    attw = builder.buffer(builder.fresh("gcn_w"), lambda batch, kk=k: (batch, kk))
    builder.step("gather_rows", ("gcn_attach_w", "nbr"), attw)
    agg = builder.buffer(builder.fresh("gcn_agg"), lambda batch, d=width: (batch, d))
    builder.step("gather_weighted_sum", (pool_proj, "nbr", attw), agg)
    out = builder.buffer(builder.fresh("h"), lambda batch, d=width: (batch, d))
    builder.step("add_scaled", (agg, selfp), out, alpha=1.0 / (k + 1.0))
    return out, width


def _lower_sage(builder, conv, pool_hidden, k, h, width):
    out_width = int(conv.linear.out_features)
    weight = conv.linear.weight.data
    if weight.shape[0] != 2 * width:
        raise UnsupportedPlanError("SAGE weight width does not match input")
    w_self = builder.const(builder.fresh("sage_self_w"), weight[:width])
    b = builder.const(builder.fresh("b"), conv.linear.bias.data)
    pool_proj = builder.const(
        builder.fresh("sage_pool"), (pool_hidden @ weight[width:]) / float(k)
    )
    selfp = builder.buffer(
        builder.fresh("sage_own"), lambda batch, d=out_width: (batch, d)
    )
    builder.step("linear", (h, w_self, b), selfp)
    out = builder.buffer(builder.fresh("h"), lambda batch, d=out_width: (batch, d))
    builder.step("gather_sum_add", (selfp, pool_proj, "nbr"), out)
    return out, out_width


def _lower_gin(builder, conv, pool_hidden, h, width):
    pool_state = builder.const(builder.fresh("gin_pool"), pool_hidden)
    agg = builder.buffer(builder.fresh("gin_agg"), lambda batch, d=width: (batch, d))
    builder.step("gather_sum", (pool_state, "nbr"), agg)
    pre = builder.buffer(builder.fresh("gin_pre"), lambda batch, d=width: (batch, d))
    builder.step("add_scaled", (agg, h), pre, alpha=1.0 + float(conv.eps.data[0]))
    return lower_mlp(builder, conv.mlp, pre, width)


def _lower_gat(builder, conv, pool_hidden, k, h):
    if conv.edge_proj is not None:
        raise UnsupportedPlanError("GAT layers with edge features are not lowered")
    heads, out_features = int(conv.num_heads), int(conv.out_features)
    weight = builder.const(builder.fresh("gat_w"), conv.weight.data)
    att_src = builder.const(builder.fresh("gat_as"), conv.att_src.data)
    att_dst = builder.const(builder.fresh("gat_ad"), conv.att_dst.data)
    bias = builder.const(builder.fresh("gat_b"), conv.bias.data)
    pool_h = (pool_hidden @ conv.weight.data).reshape(-1, heads, out_features)
    pool_hc = builder.const(builder.fresh("gat_pool_h"), pool_h)
    pool_score = builder.const(
        builder.fresh("gat_pool_s"), (pool_h * conv.att_src.data).sum(axis=-1)
    )
    hq = builder.buffer(
        builder.fresh("gat_hq"), lambda batch, a=heads, b=out_features: (batch, a, b)
    )
    vals = builder.buffer(
        builder.fresh("gat_vals"),
        lambda batch, kk=k, a=heads, b=out_features: (batch, kk + 1, a, b),
    )
    scores = builder.buffer(
        builder.fresh("gat_scores"), lambda batch, kk=k, a=heads: (batch, kk + 1, a)
    )
    width = int(conv.output_dim)
    out = builder.buffer(builder.fresh("h"), lambda batch, d=width: (batch, d))
    builder.step(
        "gat_attach",
        (h, weight, att_src, att_dst, bias, pool_hc, pool_score, "nbr",
         hq, vals, scores),
        out,
        slope=float(conv.negative_slope),
        concat=bool(conv.concat_heads),
    )
    return out, width


def _lower_gated(builder, conv, pool_hidden, k, h, width):
    scale = 1.0 / (k + 1.0)
    w_msg = builder.const(builder.fresh("ggnn_wm"), conv.message.weight.data * scale)
    msg_inputs = (h, w_msg)
    if conv.message.bias is not None:
        msg_inputs = (
            h, w_msg,
            builder.const(builder.fresh("ggnn_bm"), conv.message.bias.data * scale),
        )
    proj = pool_hidden @ conv.message.weight.data
    if conv.message.bias is not None:
        proj = proj + conv.message.bias.data
    pool_msg = builder.const(builder.fresh("ggnn_pool"), proj * scale)
    own = builder.buffer(builder.fresh("ggnn_own"), lambda batch, d=width: (batch, d))
    builder.step("linear", msg_inputs, own)
    aggm = builder.buffer(builder.fresh("ggnn_agg"), lambda batch, d=width: (batch, d))
    builder.step("gather_sum_add", (own, pool_msg, "nbr"), aggm)
    gru = conv.gru
    weights = tuple(
        builder.const(builder.fresh(f"gru_{name}"), getattr(gru, name).data)
        for name in ("w_ir", "w_hr", "b_r", "w_iz", "w_hz", "b_z", "w_in", "w_hn", "b_n")
    )
    scratch = tuple(
        builder.buffer(f"gru_scratch_{name}", lambda batch, d=width: (batch, d))
        for name in ("r", "z", "n", "tmp")
    )
    out = builder.buffer(builder.fresh("h"), lambda batch, d=width: (batch, d))
    builder.step("gru_step", (aggm, h) + weights + scratch, out)
    return out, width


class InstanceExecutor:
    """Executes the compiled plan for an instance-graph scorer.

    ``run`` takes exactly what the interpreted path hands to
    ``propagate_queries``: the encoded query features and the ``(B, k)``
    retrieved neighbor indices.  The returned array is the plan-owned
    output buffer — stable identity across same-size requests.
    """

    def __init__(self, plan: InferencePlan, k: int, in_dim: int) -> None:
        self.plan = plan
        self._k = int(k)
        self._in_dim = int(in_dim)

    def run(self, features: np.ndarray, neighbor_idx: np.ndarray) -> np.ndarray:
        features = np.ascontiguousarray(features, dtype=np.float64)
        neighbor_idx = np.ascontiguousarray(neighbor_idx, dtype=np.int64)
        if features.ndim != 2 or features.shape[1] != self._in_dim:
            raise ValueError(
                f"features must be (B, {self._in_dim}), got {features.shape}"
            )
        if neighbor_idx.shape != (features.shape[0], self._k):
            raise ValueError(
                f"neighbor_idx must be ({features.shape[0]}, {self._k})"
            )
        feeds = {"x": features, "nbr": neighbor_idx}
        return self.plan.run(features.shape[0], feeds)


def compile_instance(model, graph, pool_hiddens: Sequence[np.ndarray], k: int):
    """Lower a model-zoo network to an :class:`InstanceExecutor`.

    Returns ``None`` when the network contains a step the lowerings do not
    cover — the scorer then keeps the interpreted path.
    """
    serve_plan = getattr(model, "serve_plan", None)
    if serve_plan is None:
        return None
    try:
        steps = serve_plan()
        builder = PlanBuilder()
        builder.feed("x")
        builder.feed("nbr")
        builder.const(
            "gcn_attach_w",
            graph._gcn_inv_sqrt_degrees() / math.sqrt(k + 1.0),
        )
        h = "x"
        width = int(model.x.shape[1])
        prop_idx = 0
        for step in steps:
            module = getattr(step, "module", None)
            if module is not None:
                pool_hidden = np.asarray(pool_hiddens[prop_idx], dtype=np.float64)
                prop_idx += 1
                if isinstance(module, GCNConv):
                    h, width = _lower_gcn(builder, module, pool_hidden, k, h)
                elif isinstance(module, SAGEConv):
                    h, width = _lower_sage(builder, module, pool_hidden, k, h, width)
                elif isinstance(module, GINConv):
                    h, width = _lower_gin(builder, module, pool_hidden, h, width)
                elif isinstance(module, GATConv):
                    h, width = _lower_gat(builder, module, pool_hidden, k, h)
                elif isinstance(module, GatedGraphConv):
                    h, width = _lower_gated(builder, module, pool_hidden, k, h, width)
                else:
                    raise UnsupportedPlanError(
                        f"unsupported conv family: {type(module).__name__}"
                    )
                continue
            fn = getattr(step, "fn", None)
            if fn is None:
                raise UnsupportedPlanError(f"unrecognized plan step: {step!r}")
            if isinstance(fn, nn.Linear):
                h, width = lower_linear(builder, fn, h)
            elif isinstance(fn, nn.MLP):
                h, width = lower_mlp(builder, fn, h, width)
            else:
                h = lower_activation_fn(builder, fn, h, width)
        if h == "x":
            raise UnsupportedPlanError("plan produced no output buffer")
        plan = builder.build(h)
    except UnsupportedPlanError:
        return None
    return InstanceExecutor(plan, k, int(model.x.shape[1]))
