"""Flat inference plans: declarative steps over preallocated buffers.

An :class:`InferencePlan` is the lowered form of one scorer's query path:
an ordered tuple of :class:`PlanStep` records (op name from the
:data:`~repro.serving.compiled.kernels.KERNELS` vocabulary, input buffer
names, output buffer name, scalar params) plus three name → value tables:

* ``consts`` — compile-time arrays (weights, pre-projected pool states);
* buffer shape functions — batch-dependent scratch/output buffers,
  allocated once per batch size and reused across requests;
* views — named column windows into a parent buffer (concat-free
  multi-writer outputs, e.g. the multiplex fuse/self-proj halves).

Execution is a straight loop: resolve each step's names against
``feeds ∪ consts ∪ buffers`` and call the kernel with the preallocated
output first.  No Tensors, no graph, no allocation after warmup — a batch
size change triggers exactly one reallocation (counted, so tests can
assert allocation stability).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .kernels import KERNELS


class UnsupportedPlanError(RuntimeError):
    """A scorer's query path contains a step the lowerings cannot emit.

    Raised during compilation only — callers fall back to the interpreted
    (autograd) path, so plug-in formulations and custom layers keep
    working unchanged.
    """


ShapeFn = Callable[[int], Tuple[int, ...]]
ViewFn = Callable[[int], Tuple[Any, ...]]


class PlanStep:
    """One kernel invocation: ``KERNELS[op](ns[output], *ns[inputs], **params)``."""

    __slots__ = ("op", "inputs", "output", "params")

    def __init__(self, op: str, inputs: Tuple[str, ...], output: str,
                 params: Dict[str, Any]):
        if op not in KERNELS:
            raise UnsupportedPlanError(f"unknown kernel op: {op!r}")
        self.op = op
        self.inputs = inputs
        self.output = output
        self.params = params

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(self.inputs)
        extra = f", **{self.params}" if self.params else ""
        return f"{self.output} = {self.op}({args}{extra})"


class InferencePlan:
    """An executable flat plan with plan-owned, reused buffers.

    ``run`` returns the plan-owned output buffer (stable identity across
    same-batch requests); callers must copy before mutating or holding it
    across a subsequent call.
    """

    def __init__(
        self,
        steps: List[PlanStep],
        consts: Dict[str, np.ndarray],
        buffer_shapes: Dict[str, ShapeFn],
        output: str,
        feeds: Tuple[str, ...] = (),
        views: Optional[Dict[str, Tuple[str, ViewFn]]] = None,
    ):
        self.steps = tuple(steps)
        self.consts = dict(consts)
        self.buffer_shapes = dict(buffer_shapes)
        self.views = dict(views or {})
        self.output = output
        self.feeds = tuple(feeds)
        self.batch: Optional[int] = None
        self.reallocations = 0
        self.buffers: Dict[str, np.ndarray] = {}
        self._static: Dict[str, np.ndarray] = {}
        #: bound program: per step, (kernel, out array, args list,
        #: feed slots to patch per request, params) — rebuilt by ensure()
        self._program: list = []

    @property
    def ops(self) -> Tuple[str, ...]:
        """The step vocabulary this plan uses, in execution order."""
        return tuple(step.op for step in self.steps)

    def ensure(self, batch: int) -> None:
        """(Re)allocate batch-dependent buffers; no-op for a repeated size.

        Besides the buffers themselves, this rebinds the step program:
        every non-feed argument (const or buffer) is resolved to its array
        once here, so the per-request loop only patches feed slots —
        name-resolution cost does not scale with plan size at serve time.
        """
        if batch == self.batch:
            return
        for name, shape_fn in self.buffer_shapes.items():
            self.buffers[name] = np.empty(shape_fn(batch), dtype=np.float64)
        for name, (parent, view_fn) in self.views.items():
            self.buffers[name] = self.buffers[parent][view_fn(batch)]
        self.batch = batch
        self.reallocations += 1
        self._static = {**self.consts, **self.buffers}
        feed_names = set(self.feeds)
        self._program = []
        for step in self.steps:
            args = [
                None if name in feed_names else self._static[name]
                for name in step.inputs
            ]
            slots = tuple(
                (pos, name)
                for pos, name in enumerate(step.inputs)
                if name in feed_names
            )
            self._program.append(
                (KERNELS[step.op], self._static[step.output], args, slots,
                 step.params)
            )

    def run(self, batch: int, feeds: Dict[str, np.ndarray]) -> np.ndarray:
        """Execute all steps for one request block; returns the output buffer."""
        self.ensure(batch)
        for kernel, out, args, slots, params in self._program:
            for pos, name in slots:
                args[pos] = feeds[name]
            if params:
                kernel(out, *args, **params)
            else:
                kernel(out, *args)
        return self.buffers[self.output]


class PlanBuilder:
    """Accumulates consts / buffers / steps while a lowering walks a model."""

    def __init__(self) -> None:
        self._steps: List[PlanStep] = []
        self._consts: Dict[str, np.ndarray] = {}
        self._shapes: Dict[str, ShapeFn] = {}
        self._views: Dict[str, Tuple[str, ViewFn]] = {}
        self._feeds: List[str] = []
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def const(self, name: str, array: np.ndarray) -> str:
        self._consts[name] = np.ascontiguousarray(array, dtype=np.float64)
        return name

    def buffer(self, name: str, shape_fn: ShapeFn) -> str:
        self._shapes[name] = shape_fn
        return name

    def view(self, name: str, parent: str, view_fn: ViewFn) -> str:
        self._views[name] = (parent, view_fn)
        return name

    def feed(self, name: str) -> str:
        self._feeds.append(name)
        return name

    def step(self, op: str, inputs: Tuple[str, ...], output: str, **params: Any) -> str:
        self._steps.append(PlanStep(op, tuple(inputs), output, params))
        return output

    def build(self, output: str) -> InferencePlan:
        return InferencePlan(
            self._steps,
            self._consts,
            self._shapes,
            output,
            feeds=tuple(self._feeds),
            views=self._views,
        )
