"""Compiled executors for the non-instance servable formulations.

Each ``compile_*`` function lowers one scorer's query path to an
:class:`~repro.serving.compiled.plan.InferencePlan` plus a thin executor
that turns the scorer's per-request inputs (encoded features, value
codes, attach views) into plan feeds.  All pool-side state is
pre-projected through the frozen weights at compile time:

* **feature** — the learned field adjacency is softmax-normalized once;
  tokenize → propagate → readout → head run as five fused kernels;
* **multiplex** — per relation and conv layer, the *group mean* of the
  cached pool messages is precomputed per vocabulary value, so a request
  is a dict lookup plus a masked gather (UNK/attach accounting preserved);
* **hetero** — per layer and incoming edge type, the typed pool states
  are pre-multiplied by the bias-free edge transform, so each query's
  single value edge is one masked gather-add;
* **hypergraph** — the head distributes over the weighted node→hyperedge
  mean, so the value-node states are pre-projected through the head and a
  request is one weighted segment-sum plus bias.

Every compile function returns ``None`` for configurations the lowering
does not cover (e.g. a TabGNN with mean fusion), leaving the interpreted
autograd path in charge.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .lowering import lower_linear, lower_mlp
from .plan import InferencePlan, PlanBuilder, UnsupportedPlanError


# ---------------------------------------------------------------------------
# feature graph (columns as nodes, row-wise)
# ---------------------------------------------------------------------------
class FeatureExecutor:
    """Row-wise execution of the compiled feature-graph plan."""

    def __init__(self, plan: InferencePlan, num_features: int) -> None:
        self.plan = plan
        self._num_features = int(num_features)

    def run(self, features: np.ndarray) -> np.ndarray:
        x = np.nan_to_num(np.asarray(features, dtype=np.float64), nan=0.0)
        if x.ndim != 2 or x.shape[1] != self._num_features:
            raise ValueError(
                f"expected {self._num_features} columns, got {x.shape}"
            )
        return self.plan.run(x.shape[0], {"x": np.ascontiguousarray(x)})


def compile_feature(model):
    """Lower a :class:`~repro.models.FeatureGraphClassifier`."""
    try:
        fields = int(model.num_features)
        embed = int(model.embed_dim)
        builder = PlanBuilder()
        builder.feed("x")
        token_w = builder.const("token_w", model.token_weight.data)
        token_b = builder.const("token_b", model.token_bias.data)
        logits = np.asarray(model.edge_logits.data, dtype=np.float64)
        adj_raw = logits + np.eye(fields) * -1e9
        adj_raw = adj_raw - adj_raw.max(axis=1, keepdims=True)
        adj_raw = np.exp(adj_raw)
        adj = builder.const("adjacency", adj_raw / adj_raw.sum(axis=1, keepdims=True))
        tok = builder.buffer("tokens", lambda batch: (batch, fields, embed))
        builder.step("feature_tokens", ("x", token_w, token_b), tok)
        flat = builder.buffer("scratch_flat", lambda batch: (batch, fields, embed))
        msg = builder.buffer("scratch_msg", lambda batch: (batch, fields, embed))
        for linear in model.propagations:
            w = builder.const(builder.fresh("w"), linear.weight.data)
            b = builder.const(builder.fresh("b"), linear.bias.data)
            builder.step("feature_layer", (adj, w, b, flat, msg), tok)
        score_w = builder.const("readout_w", model.readout.score.weight.data)
        score_b = builder.const("readout_b", model.readout.score.bias.data)
        scores = builder.buffer("readout_scores", lambda batch: (batch, fields))
        pooled = builder.buffer("pooled", lambda batch: (batch, embed))
        builder.step("attention_readout", (tok, score_w, score_b, scores), pooled)
        out, _ = lower_mlp(builder, model.head, pooled, embed)
        plan = builder.build(out)
    except (UnsupportedPlanError, AttributeError):
        return None
    return FeatureExecutor(plan, fields)


# ---------------------------------------------------------------------------
# multiplex (TabGNN value-group lookup)
# ---------------------------------------------------------------------------
class MultiplexExecutor:
    """Value-code lookup + masked-gather execution of the TabGNN plan.

    Keeps the interpreted path's serving statistics: a non-missing code
    absent from a relation's vocabulary counts one ``unk_values``; every
    matched group adds its member count to ``attach_edges`` (the nnz of
    the interpreted row-mean operator).
    """

    def __init__(
        self,
        plan: InferencePlan,
        lookups: List[Dict[int, int]],
        group_sizes: List[np.ndarray],
        in_dim: int,
    ) -> None:
        self.plan = plan
        self._lookups = lookups
        self._group_sizes = group_sizes
        self._in_dim = int(in_dim)

    def run(
        self,
        features: np.ndarray,
        codes: Sequence[np.ndarray],
        stats: Dict[str, int],
    ) -> np.ndarray:
        features = np.ascontiguousarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._in_dim:
            raise ValueError(
                f"features must be (B, {self._in_dim}), got {features.shape}"
            )
        if len(codes) != len(self._lookups):
            raise ValueError(
                f"expected {len(self._lookups)} relation code arrays, got {len(codes)}"
            )
        feeds = {"x": features}
        for rel, rel_codes in enumerate(codes):
            lookup = self._lookups[rel]
            sizes = self._group_sizes[rel]
            idx = np.zeros(len(rel_codes), dtype=np.int64)
            mask = np.zeros(len(rel_codes), dtype=bool)
            for row, code in enumerate(rel_codes):
                code = int(code)
                if code < 0:
                    continue
                group = lookup.get(code, -1)
                if group < 0:
                    stats["unk_values"] += 1
                    continue
                idx[row] = group
                mask[row] = True
                stats["attach_edges"] += int(sizes[group])
            feeds[f"idx{rel}"] = idx
            feeds[f"mask{rel}"] = mask
        return self.plan.run(features.shape[0], feeds)


def compile_multiplex(model, vocabularies, pool_messages):
    """Lower a :class:`~repro.models.TabGNN` with attention fusion.

    ``pool_messages`` is the scorer's ``pool_message_states()`` cache; the
    per-value group means precomputed here equal the interpreted row-mean
    operator's output to round-off.
    """
    try:
        if getattr(model, "fusion", None) != "attention":
            raise UnsupportedPlanError("only attention fusion is lowered")
        hidden = int(model.attention_vector.data.shape[0])
        in_dim = int(model.x.shape[1])
        relations = len(model.relation_encoders)
        builder = PlanBuilder()
        builder.feed("x")
        lookups: List[Dict[int, int]] = []
        group_sizes: List[np.ndarray] = []
        emb_names: List[str] = []
        for rel, (convs, vocab, messages) in enumerate(
            zip(model.relation_encoders, vocabularies, pool_messages)
        ):
            keys = sorted(vocab)
            lookups.append({int(key): j for j, key in enumerate(keys)})
            group_sizes.append(
                np.array([vocab[key].shape[0] for key in keys], dtype=np.int64)
            )
            builder.feed(f"idx{rel}")
            builder.feed(f"mask{rel}")
            h = "x"
            for i, conv in enumerate(convs):
                width = int(conv.linear.out_features)
                means = np.zeros((max(len(keys), 1), width))
                for j, key in enumerate(keys):
                    means[j] = messages[i][vocab[key]].mean(axis=0)
                table = builder.const(f"means_{rel}_{i}", means)
                own, _ = lower_linear(builder, conv.linear, h)
                nxt = builder.buffer(
                    builder.fresh(f"rel{rel}_h"), lambda batch, d=width: (batch, d)
                )
                builder.step(
                    "gather_where", (table, f"idx{rel}", f"mask{rel}", own), nxt
                )
                if i < len(convs) - 1:
                    builder.step("relu", (nxt,), nxt)
                h = nxt
            emb_names.append(h)
        combined = builder.buffer("combined", lambda batch: (batch, 2 * hidden))
        fused = builder.view(
            "fused", combined, lambda batch: (slice(None), slice(0, hidden))
        )
        selfv = builder.view(
            "self_h", combined, lambda batch: (slice(None), slice(hidden, 2 * hidden))
        )
        att = builder.const("att_vec", model.attention_vector.data)
        fscores = builder.buffer("fuse_scores", lambda batch: (batch, relations))
        builder.step("tabgnn_fuse", (att, fscores) + tuple(emb_names), fused)
        selfp, _ = lower_linear(builder, model.self_proj, "x")
        builder.step("relu", (selfp,), selfv)
        out, _ = lower_mlp(builder, model.head, combined, 2 * hidden)
        plan = builder.build(out)
    except (UnsupportedPlanError, AttributeError):
        return None
    return MultiplexExecutor(plan, lookups, group_sizes, in_dim)


# ---------------------------------------------------------------------------
# hetero (typed value-node lookup)
# ---------------------------------------------------------------------------
class HeteroExecutor:
    """Masked gather-add execution of the typed query update."""

    def __init__(self, plan: InferencePlan, src_types: List[str], in_dim: int) -> None:
        self.plan = plan
        self._src_types = src_types
        self._in_dim = int(in_dim)

    def run(
        self, features: np.ndarray, value_ids: Dict[str, np.ndarray]
    ) -> np.ndarray:
        features = np.ascontiguousarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._in_dim:
            raise ValueError(
                f"features must be (B, {self._in_dim}), got {features.shape}"
            )
        feeds = {"x": features}
        for src in self._src_types:
            if src not in value_ids:
                raise ValueError(f"no value lookup provided for {src!r}")
            ids = np.asarray(value_ids[src], dtype=np.int64)
            feeds[f"idx::{src}"] = np.clip(ids, 0, None)
            feeds[f"mask::{src}"] = ids >= 0
        return self.plan.run(features.shape[0], feeds)


def compile_hetero(network, pool_states):
    """Lower a :class:`~repro.gnn.HeteroGNN`'s query-update stack.

    ``pool_states`` is the scorer's ``pool_states()`` cache: per layer,
    the typed node states entering it.
    """
    try:
        target = network.target_type
        in_dim = None
        builder = PlanBuilder()
        builder.feed("x")
        src_types: List[str] = []
        h = "x"
        layers = list(network.layers)
        for li, (layer, states) in enumerate(zip(layers, pool_states)):
            self_linear = layer._self_linears[layer._node_types.index(target)]
            if in_dim is None:
                in_dim = int(self_linear.in_features)
            width = int(self_linear.out_features)
            out, _ = lower_linear(builder, self_linear, h)
            for edge_type, linear in zip(layer._edge_key_order, layer._edge_linears):
                src_type, _, dst_type = edge_type
                if dst_type != target:
                    continue
                if src_type == target:
                    raise UnsupportedPlanError(
                        f"edge type {edge_type} flows {target}→{target}"
                    )
                if src_type not in src_types:
                    src_types.append(src_type)
                    builder.feed(f"idx::{src_type}")
                    builder.feed(f"mask::{src_type}")
                proj = builder.const(
                    builder.fresh(f"hetero_{src_type}"),
                    np.asarray(states[src_type], dtype=np.float64)
                    @ linear.weight.data,
                )
                builder.step(
                    "masked_gather_add",
                    (proj, f"idx::{src_type}", f"mask::{src_type}"),
                    out,
                )
            if li < len(layers) - 1:
                builder.step("relu", (out,), out)
            h = out
        plan = builder.build(h)
    except (UnsupportedPlanError, AttributeError, ValueError):
        return None
    return HeteroExecutor(plan, src_types, int(in_dim))


# ---------------------------------------------------------------------------
# hypergraph (query as a new hyperedge)
# ---------------------------------------------------------------------------
class HypergraphExecutor:
    """Weighted segment-sum execution of the attach readout."""

    def __init__(self, plan: InferencePlan) -> None:
        self.plan = plan

    def run(self, attach_view, batch: int) -> np.ndarray:
        weight = attach_view.weight
        if weight is None:
            weight = np.ones(attach_view.src.shape[0])
        feeds = {
            "src": attach_view.src,
            "dst": attach_view.dst,
            "w": weight,
        }
        return self.plan.run(int(batch), feeds)


def compile_hypergraph(model, node_states: np.ndarray):
    """Lower a :class:`~repro.models.HypergraphClassifier` attach readout.

    The head linear distributes over the weighted node→hyperedge mean, so
    the entire pool side collapses to one pre-projected ``(N, C)`` table.
    """
    try:
        head = model.network.head
        proj = np.asarray(node_states, dtype=np.float64) @ head.weight.data
        out_dim = int(head.out_features)
        bias = (
            head.bias.data
            if head.bias is not None
            else np.zeros(out_dim)
        )
        builder = PlanBuilder()
        for name in ("src", "dst", "w"):
            builder.feed(name)
        table = builder.const("node_proj", proj)
        bias_c = builder.const("head_bias", bias)
        out = builder.buffer("logits", lambda batch, d=out_dim: (batch, d))
        builder.step("segment_weighted_rows", (table, bias_c, "src", "dst", "w"), out)
        plan = builder.build(out)
    except (UnsupportedPlanError, AttributeError):
        return None
    return HypergraphExecutor(plan)
