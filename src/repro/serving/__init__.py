"""Model serving: artifacts, inductive inference, micro-batched HTTP.

This subsystem takes any servable pipeline (every formulation whose
:mod:`repro.formulations` class declares ``servable = True`` —
``formulations.servable()`` lists them) from experiment to
request-serving:

* :mod:`repro.serving.artifact` — :class:`ModelArtifact`, the deployable
  bundle of weights + fitted preprocessing + the formulation's frozen
  serve-time payload (retrieval pool, value-node vocabularies, …),
  persisted as ``.npz`` + versioned JSON sidecar;
* :mod:`repro.serving.engine` — :class:`InferenceEngine`, inductive scoring
  of unseen rows through the scorer the artifact's fitted formulation
  provides, with a bounded LRU prediction cache.  Instance graphs link
  rows into the frozen pool via retrieval (survey Sec. 4.2.4) and
  propagate only the query rows — O(B·k·d), independent of pool size;
  multiplex/hetero graphs attach rows to frozen value nodes by vocabulary
  lookup (never-seen values hit the UNK bucket);
* :mod:`repro.serving.batching` — :class:`MicroBatcher`, coalescing
  concurrent single-row requests into vectorized engine calls;
* :mod:`repro.serving.server` — :class:`PredictionServer`, a stdlib-only
  JSON-over-HTTP endpoint (``python -m repro.serving --artifact model.npz``)
  with zero-downtime artifact hot swap (``POST /admin/reload``) and a
  graceful 503-then-drain shutdown;
* :mod:`repro.serving.scaleout` — :class:`ScaleOutServer`, the
  multi-process deployment (``--workers N``): an async front door
  dispatching to N forked workers that memory-map one shared read-only
  copy of the artifact's pool state.

Every layer reports into one :class:`repro.obs.MetricsRegistry`:
``GET /metrics`` exposes request/stage latency histograms, engine
counters and drift gauges, and batcher queue metrics in Prometheus text
format; ``GET /healthz`` serves locked, consistent counter snapshots
(see the *Observability* section of ``ROADMAP.md``).

Quickstart::

    from repro.datasets import make_correlated_instances
    from repro.pipeline import run_pipeline
    from repro.serving import InferenceEngine, ModelArtifact

    result = run_pipeline(make_correlated_instances(n=300, seed=0))
    result.export_artifact().save("model")          # model.npz + model.json

    artifact = ModelArtifact.load("model.npz")      # possibly a new process
    engine = InferenceEngine(artifact)
    probs = engine.predict([0.3] * 16)              # unseen row → class probs
"""

from repro.serving.artifact import ModelArtifact
from repro.serving.batching import MicroBatcher
from repro.serving.engine import InferenceEngine
from repro.serving.server import PredictionServer

__all__ = [
    "ModelArtifact",
    "InferenceEngine",
    "MicroBatcher",
    "PredictionServer",
    "ScaleOutServer",
]


def __getattr__(name):
    # ScaleOutServer is imported lazily: it drags in multiprocessing and
    # the selectors loop, which embedded single-process users never need.
    if name == "ScaleOutServer":
        from repro.serving.scaleout import ScaleOutServer

        return ScaleOutServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
