"""Model serving: artifacts, inductive inference, micro-batched HTTP.

This subsystem takes any servable pipeline (see
:data:`repro.pipeline.SERVABLE_FORMULATIONS`) from experiment to
request-serving:

* :mod:`repro.serving.artifact` — :class:`ModelArtifact`, the deployable
  bundle of weights + fitted preprocessing + graph-construction state +
  frozen training pool, persisted as ``.npz`` + JSON sidecar;
* :mod:`repro.serving.engine` — :class:`InferenceEngine`, inductive scoring
  of unseen rows by linking them into the frozen pool via retrieval
  (survey Sec. 4.2.4), with a bounded LRU prediction cache.  For the
  operator-based stacks (GCN/GraphSAGE/GIN) the engine precomputes the
  pool's per-layer activations once and propagates only the query rows per
  request — O(B·k·d), independent of pool size;
* :mod:`repro.serving.batching` — :class:`MicroBatcher`, coalescing
  concurrent single-row requests into vectorized engine calls;
* :mod:`repro.serving.server` — :class:`PredictionServer`, a stdlib-only
  JSON-over-HTTP endpoint (``python -m repro.serving --artifact model.npz``).

Quickstart::

    from repro.datasets import make_correlated_instances
    from repro.pipeline import run_pipeline
    from repro.serving import InferenceEngine, ModelArtifact

    result = run_pipeline(make_correlated_instances(n=300, seed=0))
    result.export_artifact().save("model")          # model.npz + model.json

    artifact = ModelArtifact.load("model.npz")      # possibly a new process
    engine = InferenceEngine(artifact)
    probs = engine.predict([0.3] * 16)              # unseen row → class probs
"""

from repro.serving.artifact import ModelArtifact
from repro.serving.batching import MicroBatcher
from repro.serving.engine import InferenceEngine
from repro.serving.server import PredictionServer

__all__ = [
    "ModelArtifact",
    "InferenceEngine",
    "MicroBatcher",
    "PredictionServer",
]
