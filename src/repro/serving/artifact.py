"""Portable model artifacts: weights + preprocessing + graph state.

A :class:`ModelArtifact` is the unit of deployment for this library.  It
bundles everything a fresh process needs to reproduce a trained pipeline's
predictions — the model ``state_dict``, the *fitted* preprocessing
statistics (train/serve parity), the graph-construction config, and, for
instance graphs, the frozen training pool (node features + edges) that
unseen rows link into via retrieval (survey Sec. 4.2.4, PET-style).

Persistence is deliberately dependency-free: one ``.npz`` holding every
array, plus a human-readable ``.json`` sidecar holding the config.  Array
names are namespaced (``param::``, ``prep::``, ``pool::``) so the flat npz
container round-trips the nested structure losslessly.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro import __version__, nn
from repro.datasets.preprocessing import TabularPreprocessor
from repro.gnn.networks import build_network
from repro.graph.homogeneous import Graph
from repro.models import FeatureGraphClassifier

_PARAM = "param::"
_PREP = "prep::"
_POOL = "pool::"

ARTIFACT_FORMAT_VERSION = 1


class _SkipInitGenerator:
    """Generator stand-in that skips random weight initialization.

    :meth:`ModelArtifact.build_model` instantiates the architecture only to
    immediately overwrite every parameter via ``load_state_dict`` (which is
    strict about missing/unexpected names, so nothing survives the
    overwrite).  Drawing Glorot samples for weights that are about to be
    discarded is pure waste on the serving path; this stub returns zeros
    with the right shapes instead.  Only the two Generator methods the
    initializers in :mod:`repro.tensor.init` use are provided.
    """

    @staticmethod
    def uniform(low=0.0, high=1.0, size=None):
        return np.zeros(() if size is None else size)

    @staticmethod
    def normal(loc=0.0, scale=1.0, size=None):
        return np.zeros(() if size is None else size)


def _paths(path: Union[str, pathlib.Path]) -> Tuple[pathlib.Path, pathlib.Path]:
    """Resolve ``(npz_path, json_sidecar_path)`` from a user-supplied path."""
    path = pathlib.Path(path)
    if path.suffix == ".json":
        path = path.with_suffix(".npz")
    elif path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path, path.with_suffix(".json")


@dataclasses.dataclass
class ModelArtifact:
    """A trained pipeline, frozen for inference.

    Parameters
    ----------
    formulation:
        One of :data:`repro.pipeline.SERVABLE_FORMULATIONS`.
    network:
        Architecture name (``repro.gnn.networks.NETWORKS`` key for instance
        graphs; ``"feature_graph"`` for the feature formulation).
    config:
        JSON-safe hyperparameters (``hidden_dim``, ``out_dim``, ``k``,
        ``metric``, ``num_layers``, ``embed_dim``, ``task``).
    state_dict:
        Trained parameter arrays keyed by dotted module path.
    preprocessor:
        Fitted :class:`~repro.datasets.TabularPreprocessor` mapping raw rows
        into the model's feature space.
    pool_x / pool_edge_index:
        Instance formulation only — the frozen training pool's node features
        and (symmetrized) edges.  New rows attach to this pool at inference
        time; the pool itself never changes.
    metadata:
        Free-form JSON-safe provenance (application name, dataset summary…).
    """

    formulation: str
    network: str
    config: Dict[str, object]
    state_dict: Dict[str, np.ndarray]
    preprocessor: TabularPreprocessor
    pool_x: Optional[np.ndarray] = None
    pool_edge_index: Optional[np.ndarray] = None
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_pipeline_state(cls, state) -> "ModelArtifact":
        """Export a :class:`repro.pipeline.PipelineState` (see its docs)."""
        artifact = cls(
            formulation=state.formulation,
            network=state.network if state.formulation == "instance" else "feature_graph",
            config=dict(state.config),
            state_dict=state.model.state_dict(),
            preprocessor=state.preprocessor,
            metadata={"library_version": __version__},
        )
        if state.formulation == "instance":
            if state.graph is None:
                raise ValueError("instance-formulation state must carry its graph")
            artifact.pool_x = np.asarray(state.graph.x, dtype=np.float64)
            artifact.pool_edge_index = state.graph.edge_index.astype(np.int64)
            artifact.metadata["pool_rows"] = int(artifact.pool_x.shape[0])
        return artifact

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return int(self.config["out_dim"])

    def pool_graph(self) -> Graph:
        if self.pool_x is None or self.pool_edge_index is None:
            raise ValueError(f"{self.formulation!r} artifact carries no pool graph")
        return Graph(self.pool_x.shape[0], self.pool_edge_index, x=self.pool_x)

    def build_model(
        self, graph: Optional[Graph] = None, skip_init: bool = True
    ) -> nn.Module:
        """Instantiate the architecture, load the weights, switch to eval.

        Instance-graph networks derive (and memoize) their edge views from
        the graph they are built on, so the caller passes the pool or
        induced graph; the returned stack speaks the uniform edge-wise
        ``propagate`` substrate, which is what lets the serving engine run
        incremental query propagation for *any* network in the zoo.
        Feature-graph models are graph-free and can be built once and
        reused.  ``skip_init`` (the default) zero-fills the freshly
        constructed parameters instead of drawing random initial weights —
        they are overwritten by ``load_state_dict`` either way.
        """
        rng = _SkipInitGenerator() if skip_init else np.random.default_rng(0)
        if self.formulation == "instance":
            if graph is None:
                graph = self.pool_graph()
            model = build_network(
                self.network,
                graph,
                int(self.config["hidden_dim"]),
                self.num_classes,
                rng,
                num_layers=int(self.config.get("num_layers", 2)),
            )
        else:
            model = FeatureGraphClassifier(
                self.preprocessor.num_output_features,
                self.num_classes,
                rng,
                embed_dim=int(self.config["embed_dim"]),
                num_layers=int(self.config.get("num_layers", 2)),
            )
        model.load_state_dict(self.state_dict)
        model.eval()
        return model

    # ------------------------------------------------------------------
    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write ``<path>.npz`` (arrays) + ``<path>.json`` (config sidecar)."""
        npz_path, json_path = _paths(path)
        arrays: Dict[str, np.ndarray] = {
            _PARAM + name: np.asarray(value, dtype=np.float64)
            for name, value in self.state_dict.items()
        }
        prep_arrays, prep_meta = self.preprocessor.state()
        arrays.update({_PREP + name: value for name, value in prep_arrays.items()})
        if self.pool_x is not None:
            arrays[_POOL + "x"] = self.pool_x
            arrays[_POOL + "edge_index"] = self.pool_edge_index
        np.savez(npz_path, **arrays)
        sidecar = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "formulation": self.formulation,
            "network": self.network,
            "config": self.config,
            "preprocessor": prep_meta,
            "metadata": self.metadata,
            "parameters": sorted(self.state_dict),
        }
        json_path.write_text(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
        return npz_path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "ModelArtifact":
        """Reload an artifact saved by :meth:`save` (pass either file)."""
        npz_path, json_path = _paths(path)
        if not npz_path.exists():
            raise FileNotFoundError(f"artifact arrays not found: {npz_path}")
        if not json_path.exists():
            raise FileNotFoundError(f"artifact sidecar not found: {json_path}")
        sidecar = json.loads(json_path.read_text())
        version = int(sidecar.get("format_version", 0))
        if version > ARTIFACT_FORMAT_VERSION:
            raise ValueError(
                f"artifact format v{version} is newer than this library "
                f"(supports v{ARTIFACT_FORMAT_VERSION})"
            )
        with np.load(npz_path) as data:
            arrays = {name: data[name] for name in data.files}
        state_dict = {
            name[len(_PARAM):]: arrays[name] for name in arrays if name.startswith(_PARAM)
        }
        expected = set(sidecar.get("parameters", state_dict))
        if set(state_dict) != expected:
            raise ValueError(
                "artifact npz/sidecar disagree on parameter names; "
                "the two files are from different saves"
            )
        prep_arrays = {
            name[len(_PREP):]: arrays[name] for name in arrays if name.startswith(_PREP)
        }
        preprocessor = TabularPreprocessor.from_state(
            prep_arrays, sidecar["preprocessor"]
        )
        return cls(
            formulation=sidecar["formulation"],
            network=sidecar["network"],
            config=sidecar["config"],
            state_dict=state_dict,
            preprocessor=preprocessor,
            pool_x=arrays.get(_POOL + "x"),
            pool_edge_index=(
                arrays[_POOL + "edge_index"].astype(np.int64)
                if _POOL + "edge_index" in arrays
                else None
            ),
            metadata=sidecar.get("metadata", {}),
        )

    def summary(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "formulation": self.formulation,
            "network": self.network,
            "classes": self.num_classes,
            "parameters": int(sum(p.size for p in self.state_dict.values())),
        }
        if self.pool_x is not None:
            info["pool_rows"] = int(self.pool_x.shape[0])
            info["pool_edges"] = int(self.pool_edge_index.shape[1])
        return info
