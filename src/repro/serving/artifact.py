"""Portable model artifacts: weights + preprocessing + formulation state.

A :class:`ModelArtifact` is the unit of deployment for this library.  It
bundles everything a fresh process needs to reproduce a trained pipeline's
predictions — the model ``state_dict``, the *fitted* preprocessing
statistics (train/serve parity), the graph-construction config, and the
**formulation payload**: whatever frozen state the fitted formulation
needs at serve time (the retrieval pool for instance graphs, value-node
vocabularies with their UNK buckets for multiplex/hetero, the incidence
structure plus the frozen row→value-node encoder for hypergraph, nothing
for the row-wise feature formulation).  The artifact itself is
formulation-agnostic: it round-trips the payload as opaque namespaced
arrays plus a JSON block and delegates model building and scoring to the
rehydrated :class:`~repro.formulations.FittedFormulation`.

Persistence is deliberately dependency-free: one ``.npz`` holding every
array, plus a human-readable ``.json`` sidecar holding the config.  Array
names are namespaced (``param::``, ``prep::``, ``form::``) so the flat npz
container round-trips the nested structure losslessly.  The sidecar
carries a ``schema_version``; the loader rejects unknown versions and
accepts legacy (pre-versioned, ``pool::``-array) sidecars by upgrading
them to the instance/feature payload layout they implied.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro import __version__, nn
from repro.datasets.preprocessing import TabularPreprocessor
from repro.graph.homogeneous import Graph

_PARAM = "param::"
_PREP = "prep::"
_POOL = "pool::"  # legacy (schema v1) instance-pool arrays
_FORM = "form::"

#: Current artifact schema.  v1 (legacy) sidecars carried no
#: ``schema_version`` key and stored the instance pool under ``pool::``
#: arrays; v2 stores an opaque per-formulation payload under ``form::``.
ARTIFACT_SCHEMA_VERSION = 2


class _SkipInitGenerator:
    """Generator stand-in that skips random weight initialization.

    :meth:`ModelArtifact.build_model` instantiates the architecture only to
    immediately overwrite every parameter via ``load_state_dict`` (which is
    strict about missing/unexpected names, so nothing survives the
    overwrite).  Drawing Glorot samples for weights that are about to be
    discarded is pure waste on the serving path; this stub returns zeros
    with the right shapes instead.  Only the two Generator methods the
    initializers in :mod:`repro.tensor.init` use are provided.
    """

    @staticmethod
    def uniform(low=0.0, high=1.0, size=None):
        return np.zeros(() if size is None else size)

    @staticmethod
    def normal(loc=0.0, scale=1.0, size=None):
        return np.zeros(() if size is None else size)


def _file_sha256(path: pathlib.Path, chunk_bytes: int = 1 << 20) -> str:
    """Chunked SHA-256 of a file — the artifact's content identity.

    Surfaced as ``artifact_sha`` on ``/healthz`` so operators can tell
    *which* model bytes a deployment (or each worker generation after a
    hot-swap) is actually serving.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _paths(path: Union[str, pathlib.Path]) -> Tuple[pathlib.Path, pathlib.Path]:
    """Resolve ``(npz_path, json_sidecar_path)`` from a user-supplied path."""
    path = pathlib.Path(path)
    if path.suffix == ".json":
        path = path.with_suffix(".npz")
    elif path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path, path.with_suffix(".json")


@dataclasses.dataclass
class ModelArtifact:
    """A trained pipeline, frozen for inference.

    Parameters
    ----------
    formulation:
        Registered :mod:`repro.formulations` name.  Serving supports every
        formulation whose class declares ``servable = True``.
    network:
        Architecture-builder name, supplied by the fitted formulation
        (``repro.gnn.networks.NETWORKS`` key for instance graphs,
        ``"feature_graph"`` / ``"tabgnn"`` / ``"hetero_gnn"`` otherwise).
    config:
        JSON-safe hyperparameters (``hidden_dim``, ``out_dim``, ``k``,
        ``metric``, ``num_layers``, ``embed_dim``, ``task``).
    state_dict:
        Trained parameter arrays keyed by dotted module path.
    preprocessor:
        Fitted :class:`~repro.datasets.TabularPreprocessor` mapping raw rows
        into the model's feature space (and validating row shapes).
    pool_x / pool_edge_index:
        Instance-formulation convenience accessors for the frozen training
        pool.  Passing them at construction populates the payload; loading
        an instance artifact populates them back from it.
    payload_arrays / payload_meta:
        The formulation's opaque serve-time state
        (:meth:`~repro.formulations.FittedFormulation.artifact_payload`).
    metadata:
        Free-form JSON-safe provenance (application name, dataset summary…).
    """

    formulation: str
    network: str
    config: Dict[str, object]
    state_dict: Dict[str, np.ndarray]
    preprocessor: TabularPreprocessor
    pool_x: Optional[np.ndarray] = None
    pool_edge_index: Optional[np.ndarray] = None
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)
    payload_arrays: Dict[str, np.ndarray] = dataclasses.field(default_factory=dict)
    payload_meta: Dict[str, object] = dataclasses.field(default_factory=dict)
    schema_version: int = ARTIFACT_SCHEMA_VERSION
    #: Provenance, set by :meth:`save`/:meth:`load`: where the ``.npz``
    #: lives and its SHA-256 (the ``artifact_sha`` on ``/healthz``).
    source_path: Optional[pathlib.Path] = None
    content_sha: Optional[str] = None
    #: ``"r"`` when the arrays are read-only memmaps into the npz (scale-out
    #: workers then share one physical copy); ``None`` for eager loads.
    mmap_mode: Optional[str] = None

    def __post_init__(self) -> None:
        self._fitted = None
        if self.pool_x is not None and "x" not in self.payload_arrays:
            # Constructed the historical way (explicit pool arrays).
            if self.pool_edge_index is None:
                raise ValueError(
                    "instance artifacts need both pool arrays: pool_x was "
                    "given without pool_edge_index"
                )
            self.pool_x = np.asarray(self.pool_x, dtype=np.float64)
            self.pool_edge_index = self.pool_edge_index.astype(np.int64)
            self.payload_arrays = {
                "x": self.pool_x,
                "edge_index": self.pool_edge_index,
                **self.payload_arrays,
            }
            self.payload_meta.setdefault("pool_rows", int(self.pool_x.shape[0]))
        elif self.pool_x is None and self.formulation == "instance":
            self.pool_x = self.payload_arrays.get("x")
            self.pool_edge_index = self.payload_arrays.get("edge_index")

    # ------------------------------------------------------------------
    @classmethod
    def from_pipeline_state(cls, state) -> "ModelArtifact":
        """Export a :class:`repro.pipeline.PipelineState` (see its docs)."""
        fitted = state.fitted
        arrays, meta = fitted.artifact_payload()
        artifact = cls(
            formulation=fitted.name,
            network=fitted.model_builder,
            config=dict(fitted.config),
            state_dict=state.model.state_dict(),
            preprocessor=fitted.preprocessor,
            payload_arrays=arrays,
            payload_meta=meta,
            metadata={"library_version": __version__},
        )
        if artifact.pool_rows is not None:
            artifact.metadata["pool_rows"] = artifact.pool_rows
        # Reuse the already-fitted formulation (shares its memoized graph
        # operators) instead of rehydrating from the payload.
        artifact._fitted = fitted
        return artifact

    # ------------------------------------------------------------------
    @property
    def fitted(self):
        """The (lazily rehydrated) fitted formulation behind this artifact."""
        if self._fitted is None:
            from repro import formulations

            config = dict(self.config)
            # Pipeline-exported configs carry the builder name already;
            # hand-assembled artifacts record it only as `network`.
            config.setdefault("network", self.network)
            self._fitted = formulations.get(self.formulation).from_payload(
                self.payload_arrays,
                self.payload_meta,
                config,
                self.preprocessor,
            )
        return self._fitted

    @property
    def num_classes(self) -> int:
        return int(self.config["out_dim"])

    @property
    def pool_rows(self) -> Optional[int]:
        rows = self.payload_meta.get("pool_rows")
        return None if rows is None else int(rows)

    def pool_graph(self) -> Graph:
        if self.pool_x is None or self.pool_edge_index is None:
            raise ValueError(f"{self.formulation!r} artifact carries no pool graph")
        return Graph(self.pool_x.shape[0], self.pool_edge_index, x=self.pool_x)

    def build_model(
        self, graph: Optional[object] = None, skip_init: bool = True
    ) -> nn.Module:
        """Instantiate the architecture, load the weights, switch to eval.

        The fitted formulation names and builds the architecture; the
        artifact just supplies a no-op initializer and loads the trained
        weights.  ``graph`` optionally overrides the construction graph
        with whatever structure the formulation builds on — the instance
        oracle path passes an induced pool+queries :class:`Graph`, the
        hypergraph oracle an attached incidence copy.  ``skip_init``
        (the default) zero-fills the freshly
        constructed parameters instead of drawing random initial weights —
        they are overwritten by ``load_state_dict`` either way.
        """
        rng = _SkipInitGenerator() if skip_init else np.random.default_rng(0)
        model = self.fitted.build_model(rng, graph=graph)
        model.load_state_dict(self.state_dict)
        model.eval()
        return model

    # ------------------------------------------------------------------
    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write ``<path>.npz`` (arrays) + ``<path>.json`` (config sidecar)."""
        npz_path, json_path = _paths(path)
        arrays: Dict[str, np.ndarray] = {
            _PARAM + name: np.asarray(value, dtype=np.float64)
            for name, value in self.state_dict.items()
        }
        prep_arrays, prep_meta = self.preprocessor.state()
        arrays.update({_PREP + name: value for name, value in prep_arrays.items()})
        arrays.update(
            {_FORM + name: value for name, value in self.payload_arrays.items()}
        )
        np.savez(npz_path, **arrays)
        sidecar = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "formulation": self.formulation,
            "network": self.network,
            "config": self.config,
            "preprocessor": prep_meta,
            "formulation_state": self.payload_meta,
            "metadata": self.metadata,
            "parameters": sorted(self.state_dict),
        }
        json_path.write_text(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
        self.source_path = npz_path
        self.content_sha = _file_sha256(npz_path)
        return npz_path

    @classmethod
    def load(
        cls,
        path: Union[str, pathlib.Path],
        mmap_mode: Optional[str] = None,
    ) -> "ModelArtifact":
        """Reload an artifact saved by :meth:`save` (pass either file).

        Legacy sidecars (no ``schema_version``) are upgraded in memory:
        their ``pool::`` arrays become the instance payload.  Sidecars
        declaring a schema this library does not know are rejected.

        ``mmap_mode="r"`` memory-maps every array straight out of the
        (uncompressed) ``.npz`` instead of copying it into private heap
        memory (see :mod:`repro.serving.npz_mmap`).  The payload
        rehydrators pass arrays through without copying, so the frozen
        pool features / value-node states served by N scale-out worker
        processes occupy **one** physical copy in the page cache.  Model
        weights are still materialized per process (``load_state_dict``
        copies), which is what makes the mapped arrays safely read-only.
        """
        if mmap_mode not in (None, "r"):
            raise ValueError(
                f"mmap_mode={mmap_mode!r} unsupported; artifacts are frozen, "
                "only read-only mapping (\"r\") makes sense"
            )
        npz_path, json_path = _paths(path)
        if not npz_path.exists():
            raise FileNotFoundError(f"artifact arrays not found: {npz_path}")
        if not json_path.exists():
            raise FileNotFoundError(f"artifact sidecar not found: {json_path}")
        sidecar = json.loads(json_path.read_text())
        declared = sidecar.get("schema_version")
        if mmap_mode == "r":
            from repro.serving.npz_mmap import load_npz_mmap

            arrays = load_npz_mmap(npz_path)
        else:
            with np.load(npz_path) as data:
                arrays = {name: data[name] for name in data.files}
        if declared is not None and int(declared) not in (1, ARTIFACT_SCHEMA_VERSION):
            raise ValueError(
                f"unknown artifact schema v{declared}; this library supports "
                f"v{ARTIFACT_SCHEMA_VERSION} (and legacy v1 sidecars, with or "
                f"without an explicit schema_version)"
            )
        if declared is None or int(declared) == 1:
            legacy = int(sidecar.get("format_version", 0))
            if legacy > 1:
                raise ValueError(
                    f"artifact format v{legacy} is newer than this library "
                    f"(supports schema v{ARTIFACT_SCHEMA_VERSION} and legacy v1)"
                )
            schema_version = 1
            payload_arrays = {
                name[len(_POOL):]: arrays[name]
                for name in arrays
                if name.startswith(_POOL)
            }
            payload_meta = (
                {"pool_rows": int(payload_arrays["x"].shape[0])}
                if "x" in payload_arrays
                else {}
            )
        else:
            schema_version = ARTIFACT_SCHEMA_VERSION
            payload_arrays = {
                name[len(_FORM):]: arrays[name]
                for name in arrays
                if name.startswith(_FORM)
            }
            payload_meta = sidecar.get("formulation_state", {})
        state_dict = {
            name[len(_PARAM):]: arrays[name] for name in arrays if name.startswith(_PARAM)
        }
        expected = set(sidecar.get("parameters", state_dict))
        if set(state_dict) != expected:
            raise ValueError(
                "artifact npz/sidecar disagree on parameter names; "
                "the two files are from different saves"
            )
        prep_arrays = {
            name[len(_PREP):]: arrays[name] for name in arrays if name.startswith(_PREP)
        }
        preprocessor = TabularPreprocessor.from_state(
            prep_arrays, sidecar["preprocessor"]
        )
        return cls(
            formulation=sidecar["formulation"],
            network=sidecar["network"],
            config=sidecar["config"],
            state_dict=state_dict,
            preprocessor=preprocessor,
            payload_arrays=payload_arrays,
            payload_meta=payload_meta,
            metadata=sidecar.get("metadata", {}),
            schema_version=schema_version,
            source_path=npz_path,
            content_sha=_file_sha256(npz_path),
            mmap_mode=mmap_mode,
        )

    def summary(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "formulation": self.formulation,
            "network": self.network,
            "schema_version": self.schema_version,
            "classes": self.num_classes,
            "parameters": int(sum(p.size for p in self.state_dict.values())),
        }
        if self.pool_rows is not None:
            info["pool_rows"] = self.pool_rows
        if self.pool_edge_index is not None:
            info["pool_edges"] = int(self.pool_edge_index.shape[1])
        return info
