"""Multi-process scale-out serving: async front door + worker fleet.

``gnn4tdl-serve --artifact model.npz --workers N`` runs this deployment:

* :mod:`~repro.serving.scaleout.frontdoor` — a :mod:`selectors`-based
  async HTTP front door that parses requests and dispatches to workers
  over a length-prefixed frame protocol; also the hot-swap
  (``POST /admin/reload`` / SIGHUP) and fleet-aggregation
  (``/healthz`` / ``/metrics``) brain.
* :mod:`~repro.serving.scaleout.worker` — one forked process per worker,
  each owning a full engine against a **memory-mapped read-only** load of
  the artifact, so the fleet shares one physical copy of the pool state.
* :mod:`~repro.serving.scaleout.protocol` — the framing layer.

``--workers 0`` keeps the single-process
:class:`~repro.serving.PredictionServer`, which stays the correctness
oracle: both paths score through
:func:`repro.serving.server.execute_predict`.
"""

from repro.serving.scaleout.frontdoor import ScaleOutServer
from repro.serving.scaleout.protocol import (
    FrameDecoder,
    ProtocolError,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.serving.scaleout.worker import worker_main

__all__ = [
    "FrameDecoder",
    "ProtocolError",
    "ScaleOutServer",
    "encode_frame",
    "recv_frame",
    "send_frame",
    "worker_main",
]
