"""Worker process main loop for scale-out serving.

Each worker is one forked process owning a full serving stack — artifact,
:class:`~repro.serving.InferenceEngine` (compiled plan, LRU cache, index)
and a private :class:`~repro.obs.MetricsRegistry` — and speaking the
length-prefixed frame protocol (:mod:`repro.serving.scaleout.protocol`)
over the socketpair the front door handed it at fork.

The artifact is loaded with ``mmap_mode="r"``: the ``.npz``'s arrays
become read-only ``np.memmap`` views, so N workers share **one** physical
copy of the pool state (activations, incidence structures, retrieval
pools) through the page cache instead of N private copies.  Network
weights are the exception — ``load_state_dict`` copies them into private
writable arrays — but weights are tiny next to pool state.

Request semantics are *identical* to the single-process server: predicts
run through :func:`repro.serving.server.execute_predict`, the same code
path ``--workers 0`` uses, so the scale-out deployment inherits the
single-process correctness oracle.

Ops handled (serially — one worker, one request at a time; the front door
provides the concurrency by fanning out across workers):

``predict``   body = raw HTTP body → reply status + JSON response body
``health``    reply body = engine snapshot + artifact identity
``metrics``   reply body = registry snapshot (merged by the front door)
``ping``      liveness probe → ``pong``
``drain``     finish (frames already received are, by FIFO, already
              answered), reply ``drained``, exit 0
"""

from __future__ import annotations

import json
import os
import signal
import socket
from typing import Dict, Optional

from repro.serving.scaleout.protocol import (
    ProtocolError,
    recv_frame,
    send_frame,
)


def worker_main(
    sock: socket.socket,
    artifact_path: str,
    options: Optional[Dict[str, object]] = None,
) -> int:
    """Entry point executed inside the forked worker process.

    Sends exactly one ``ready`` (or ``error``) frame, then serves request
    frames until ``drain`` or EOF.  Never raises across the process
    boundary — failures become ``error`` frames / nonzero exit codes.
    """
    options = dict(options or {})
    # The front door owns interactive signals: a Ctrl-C in the terminal
    # reaches the whole process group, but only the front door should act
    # on it (it drains workers explicitly). SIGTERM keeps its default so
    # the front door can still kill a hung worker.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, signal.SIG_IGN)

    try:
        registry, engine, meta = _boot(artifact_path, options)
    except Exception as exc:
        try:
            send_frame(sock, {
                "op": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "worker": options.get("worker"),
                "pid": os.getpid(),
            })
        except OSError:
            pass
        return 1

    try:
        send_frame(sock, dict(meta, op="ready"))
    except OSError:
        return 1

    return _serve(sock, registry, engine, meta)


def _boot(artifact_path: str, options: Dict[str, object]):
    """Load the artifact (mmap by default) and build the serving stack."""
    # Imports happen post-fork on purpose: the worker re-resolves modules
    # in its own process, and a failure lands in the error frame.
    from repro.obs import MetricsRegistry
    from repro.serving.artifact import ModelArtifact
    from repro.serving.engine import InferenceEngine

    mmap_mode = "r" if options.get("mmap", True) else None
    artifact = ModelArtifact.load(artifact_path, mmap_mode=mmap_mode)
    registry = MetricsRegistry()
    engine = InferenceEngine(
        artifact,
        registry=registry,
        cache_size=int(options.get("cache_size", 256)),
        index=options.get("index"),
        nprobe=options.get("nprobe"),
    )
    generation = int(options.get("generation", 1))
    registry.gauge(
        "repro_engine_artifact_generation",
        "Monotonic artifact generation serving predictions "
        "(bumps on each hot swap).",
    ).set_function(lambda: float(generation))
    meta = {
        "worker": options.get("worker"),
        "pid": os.getpid(),
        "generation": generation,
        "artifact_sha": artifact.content_sha,
        "mmapped": artifact.mmap_mode == "r",
        "formulation": artifact.formulation,
        "network": artifact.network,
        "schema_version": int(artifact.schema_version),
        "incremental": bool(engine.incremental),
        "compiled": bool(engine.compiled),
        "compile_ms": float(engine.compile_ms),
        "index": engine.index,
        "nprobe": engine.nprobe,
        "index_build_ms": float(engine.index_build_ms),
        "pool_rows": artifact.pool_rows,
    }
    return registry, engine, meta


def _serve(sock, registry, engine, meta) -> int:
    from repro.serving.server import (
        _BadRequest,
        execute_predict,
    )

    requests = registry.counter(
        "repro_worker_requests_total",
        "Frames handled by this worker, by op and status.",
        labelnames=("op", "status"),
    )
    while True:
        try:
            frame = recv_frame(sock)
        except ProtocolError:
            return 1
        except OSError:
            return 1
        if frame is None:  # front door is gone
            return 0
        header, body = frame
        op = str(header.get("op", ""))
        reply: Dict[str, object] = {"id": header.get("id"), "op": f"{op}_result"}
        out = b""
        if op == "predict":
            status = 200
            try:
                payload = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                status, response = 400, {"error": f"invalid JSON body: {exc}"}
            else:
                try:
                    response = execute_predict(engine, payload)
                except _BadRequest as exc:
                    status, response = 400, {"error": str(exc)}
                except Exception as exc:  # defensive: keep the worker alive
                    status, response = 500, {
                        "error": f"{type(exc).__name__}: {exc}"
                    }
            reply["status"] = status
            reply["rows"] = int(response.get("rows", 0)) if status == 200 else 0
            out = json.dumps(response).encode()
            requests.labels(op="predict", status=str(status)).inc()
        elif op == "health":
            out = json.dumps({
                "meta": meta,
                "engine": engine.snapshot(),
            }).encode()
            requests.labels(op="health", status="200").inc()
        elif op == "metrics":
            out = json.dumps(registry.snapshot()).encode()
            requests.labels(op="metrics", status="200").inc()
        elif op == "ping":
            reply["op"] = "pong"
        elif op == "drain":
            # FIFO framing means every predict received before this frame
            # has already been answered — nothing in flight can be lost.
            reply["op"] = "drained"
            reply["engine"] = engine.snapshot()
            try:
                send_frame(sock, reply)
            except OSError:
                pass
            return 0
        else:
            reply["op"] = "error"
            reply["error"] = f"unknown op {op!r}"
        try:
            send_frame(sock, reply, out)
        except OSError:
            return 1
