"""Async front door for multi-process scale-out serving.

One :mod:`selectors` event loop owns every socket: the HTTP listener,
client connections, and one socketpair per worker process.  The loop
never scores rows — it parses just enough HTTP to route, forwards the
raw request body to a worker over the length-prefixed frame protocol
(:mod:`repro.serving.scaleout.protocol`), and writes the worker's reply
back as the HTTP response.  All row-handling CPU therefore lands on the
workers, which each own a full engine against a **memory-mapped,
read-only** load of the artifact — N workers, one physical copy of the
pool state.

Routes (wire-compatible with the single-process
:class:`~repro.serving.PredictionServer`):

* ``POST /predict`` — round-robin dispatch to a ready worker; the body is
  forwarded opaquely and the worker's JSON reply is returned verbatim.
* ``GET /healthz`` / ``/health`` — fan-out ``health`` to every ready
  worker; reports ``workers``, ``artifact_generation``, ``artifact_sha``,
  a fleet-summed ``engine`` block
  (:meth:`InferenceEngine.merge_snapshots`) and per-worker detail.
* ``GET /metrics`` — fan-out ``metrics``; per-worker registry snapshots
  are merged (:func:`repro.obs.merge_snapshots` — counters/histograms
  summed, gauges tagged ``worker="i"``) and rendered next to the front
  door's own HTTP metrics: one scrape covers the fleet.
* ``POST /admin/reload`` — **zero-downtime hot swap**: a fresh worker set
  is forked against the (possibly new) artifact path and boots *while the
  old set keeps serving*; only when every new worker reports ready does
  routing switch, after which the old set drains — the FIFO frame
  protocol guarantees every already-dispatched predict is answered before
  the worker honors its ``drain`` — and exits.  A failed boot leaves the
  old set serving and returns 500.  ``SIGHUP`` triggers the same swap
  from the command line.

While a worker set is booting at startup, ``/predict`` answers 503 with a
structured JSON body; likewise when every worker has died.  Worker death
mid-request fails only the requests pinned to that worker (503) and drops
the worker from rotation.

Linux/POSIX only (fork + ``socket.socketpair``); the single-process
server remains the portable path.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import selectors
import signal
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.obs import MetricsRegistry, merge_snapshots, render_snapshot_prometheus
from repro.serving.scaleout.protocol import (
    FrameDecoder,
    ProtocolError,
    encode_frame,
)
from repro.serving.server import _DRAIN_LIMIT, access_logger

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

_MAX_HEADER_BYTES = 1 << 14


def _resolve_artifact(path: str) -> Optional[str]:
    """Resolve a user-supplied artifact path the way ``ModelArtifact.load``
    does (``model`` / ``model.json`` → ``model.npz``); None if missing."""
    from repro.serving.artifact import _paths

    npz_path, _ = _paths(path)
    if not npz_path.exists():
        return None
    return os.path.abspath(str(npz_path))


class _Conn:
    """One client connection's parse/response state."""

    __slots__ = (
        "sock", "addr", "inbuf", "outbuf", "busy", "closed",
        "close_after_write", "half_closed", "close_deadline", "discard",
        "expect_body", "req_method", "req_path", "req_keep_alive",
        "req_started",
    )

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.busy = False            # a dispatched request awaits a reply
        self.closed = False
        self.close_after_write = False
        self.half_closed = False     # FIN sent, draining client bytes
        self.close_deadline = 0.0
        self.discard = 0             # oversized-body bytes left to consume
        self.expect_body = 0         # body bytes the parsed head announced
        self.req_method = ""
        self.req_path = ""
        self.req_keep_alive = True
        self.req_started = 0.0


class _Worker:
    """Front-door handle for one worker process."""

    __slots__ = (
        "id", "proc", "sock", "generation", "decoder", "outbuf", "meta",
        "state", "pending",
    )

    def __init__(self, wid: int, proc, sock: socket.socket, generation: int):
        self.id = wid
        self.proc = proc
        self.sock = sock
        self.generation = generation
        self.decoder = FrameDecoder()
        self.outbuf = bytearray()
        self.meta: Dict[str, object] = {}
        self.state = "booting"  # booting | ready | draining | dead
        self.pending: set = set()


class _Fanout:
    """One in-flight health/metrics fan-out across the worker set."""

    __slots__ = ("op", "conn", "waiting", "replies", "deadline")

    def __init__(self, op: str, conn: Optional[_Conn], deadline: float):
        self.op = op
        self.conn = conn
        self.waiting: Dict[int, _Worker] = {}
        self.replies: List[Tuple[_Worker, Dict[str, object]]] = []
        self.deadline = deadline


class _Swap:
    """One in-flight hot swap: a new worker set booting behind the scenes."""

    __slots__ = ("conn", "path", "new", "deadline")

    def __init__(self, conn: Optional[_Conn], path: str, deadline: float):
        self.conn = conn
        self.path = path
        self.new: List[_Worker] = []
        self.deadline = deadline


class ScaleOutServer:
    """N worker processes behind one async HTTP front door.

    Construction forks and boots the initial worker set (blocking until
    every worker reports ready or errors).  ``port=0`` binds an ephemeral
    port; the bound port is available as :attr:`port`.
    """

    def __init__(
        self,
        artifact_path: str,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 8000,
        max_body_bytes: int = 1 << 20,
        cache_size: int = 256,
        index: Optional[str] = None,
        nprobe: Optional[int] = None,
        access_log: bool = False,
        mmap: bool = True,
        registry: Optional[MetricsRegistry] = None,
        boot_timeout: float = 120.0,
        request_timeout: float = 60.0,
        fanout_timeout: float = 10.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        npz_path = _resolve_artifact(artifact_path)
        if npz_path is None:
            raise FileNotFoundError(f"artifact not found: {artifact_path}")
        self._artifact_path = npz_path
        self.max_body_bytes = int(max_body_bytes)
        self.access_log = bool(access_log)
        self._worker_options = {
            "cache_size": int(cache_size),
            "index": index,
            "nprobe": nprobe,
            "mmap": bool(mmap),
        }
        self._boot_timeout = float(boot_timeout)
        self._request_timeout = float(request_timeout)
        self._fanout_timeout = float(fanout_timeout)
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            self._mp = multiprocessing.get_context()

        self.registry = registry if registry is not None else MetricsRegistry()
        self._http_requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests by method, route and status.",
            labelnames=("method", "path", "status"),
        )
        self._http_duration = self.registry.histogram(
            "repro_http_request_duration_seconds",
            "HTTP request handling latency by route.",
            labelnames=("path",),
        )
        self._rejected_oversize = self.registry.counter(
            "repro_http_rejected_oversize_total",
            "Requests refused with HTTP 413 (body over max_body_bytes).",
        )
        self.registry.gauge(
            "repro_frontdoor_workers",
            "Worker processes currently accepting dispatches.",
        ).set_function(lambda: float(len(self._ready_workers())))

        self._sel = selectors.DefaultSelector()
        self._listen = socket.create_server((host, port), backlog=128)
        self._listen.setblocking(False)
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)

        self._workers: List[_Worker] = []
        self._retiring: List[_Worker] = []
        self._reap: List[_Worker] = []
        self._next_worker_id = 0
        self._generation = 0
        self._artifact_sha: Optional[str] = None
        self._pending: Dict[int, Tuple[str, object]] = {}
        self._next_id = 0
        self._rr = 0
        self._swap: Optional[_Swap] = None
        self._stop = False
        self._reload_requested = False
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._close_lock = threading.Lock()

        try:
            self._boot_initial(workers)
        except BaseException:
            self.close()
            raise

        self._sel.register(self._listen, selectors.EVENT_READ, ("listen", None))
        self._sel.register(self._wake_recv, selectors.EVENT_READ, ("wake", None))
        for worker in self._workers:
            self._sel.register(
                worker.sock, selectors.EVENT_READ, ("worker", worker)
            )

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self, path: str, generation: int) -> _Worker:
        parent_sock, child_sock = socket.socketpair()
        wid = self._next_worker_id
        self._next_worker_id += 1
        options = dict(self._worker_options)
        options["worker"] = wid
        options["generation"] = generation
        from repro.serving.scaleout.worker import worker_main

        proc = self._mp.Process(
            target=worker_main,
            args=(child_sock, path, options),
            name=f"repro-worker-{wid}",
            daemon=True,
        )
        proc.start()
        child_sock.close()
        return _Worker(wid, proc, parent_sock, generation)

    def _boot_initial(self, n: int) -> None:
        """Fork the first worker set and block until every one is ready."""
        from repro.serving.scaleout.protocol import recv_frame

        generation = self._generation + 1
        workers = [
            self._spawn_worker(self._artifact_path, generation)
            for _ in range(n)
        ]
        try:
            for worker in workers:
                worker.sock.settimeout(self._boot_timeout)
                frame = recv_frame(worker.sock)
                if frame is None:
                    raise RuntimeError(
                        f"worker {worker.id} exited during boot"
                    )
                header, _ = frame
                if header.get("op") != "ready":
                    raise RuntimeError(
                        f"worker {worker.id} failed to boot: "
                        f"{header.get('error', header)}"
                    )
                worker.meta = header
                worker.state = "ready"
                worker.sock.settimeout(None)
                worker.sock.setblocking(False)
        except BaseException:
            for worker in workers:
                worker.sock.close()
                if worker.proc.is_alive():
                    worker.proc.terminate()
                worker.proc.join(timeout=5)
            raise
        self._workers = workers
        self._generation = generation
        self._artifact_sha = workers[0].meta.get("artifact_sha")

    def _ready_workers(self) -> List[_Worker]:
        return [w for w in self._workers if w.state == "ready"]

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._listen.getsockname()[0]

    @property
    def port(self) -> int:
        return int(self._listen.getsockname()[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def artifact_path(self) -> str:
        return self._artifact_path

    def artifact_summary(self) -> Dict[str, object]:
        """What the fleet serves, from worker 0's ready report."""
        meta = self._workers[0].meta if self._workers else {}
        return {
            "formulation": meta.get("formulation"),
            "network": meta.get("network"),
            "schema_version": meta.get("schema_version"),
            "pool_rows": meta.get("pool_rows"),
            "mmapped": meta.get("mmapped"),
            "workers": len(self._workers),
        }

    def serve_forever(self) -> None:
        """Block serving requests; SIGHUP hot-swaps, Ctrl-C drains."""
        if threading.current_thread() is threading.main_thread():
            if hasattr(signal, "SIGHUP"):
                signal.signal(signal.SIGHUP, self._on_sighup)
        try:
            self._loop()
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def start(self) -> "ScaleOutServer":
        """Serve on a background thread (tests / embedding)."""
        self._thread = threading.Thread(
            target=self._loop, name="repro-frontdoor", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the loop (thread-safe), drain workers, release sockets."""
        self._stop = True
        try:
            self._wake_send.send(b"s")
        except OSError:
            pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.close()

    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers + self._retiring + (
            self._swap.new if self._swap else []
        ):
            self._shutdown_worker(worker)
        for worker in self._reap:
            worker.proc.join(timeout=2)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=2)
        for key in list(self._sel.get_map().values()):
            kind, obj = key.data
            if kind == "conn":
                try:
                    obj.sock.close()
                except OSError:
                    pass
        try:
            self._sel.close()
        except OSError:
            pass
        for sock in (self._listen, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:
                pass

    def _shutdown_worker(self, worker: _Worker) -> None:
        """Best-effort graceful worker stop: flush, drain, reap."""
        try:
            worker.sock.setblocking(True)
            worker.sock.settimeout(2.0)
            if worker.outbuf:
                worker.sock.sendall(bytes(worker.outbuf))
                worker.outbuf.clear()
            if worker.state in ("ready", "booting"):
                worker.sock.sendall(encode_frame({"op": "drain"}))
            # Workers answer outstanding frames then exit; wait for EOF.
            while worker.sock.recv(1 << 16):
                pass
        except OSError:
            pass
        try:
            worker.sock.close()
        except OSError:
            pass
        worker.proc.join(timeout=3)
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=2)
        worker.state = "dead"

    def __enter__(self) -> "ScaleOutServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _on_sighup(self, signum, frame) -> None:
        self._reload_requested = True
        try:
            self._wake_send.send(b"r")
        except OSError:
            pass

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop:
            for key, _mask in self._sel.select(timeout=0.2):
                kind, obj = key.data
                if kind == "listen":
                    self._on_accept()
                elif kind == "wake":
                    try:
                        self._wake_recv.recv(1 << 10)
                    except OSError:
                        pass
                elif kind == "conn":
                    self._on_conn_event(obj, _mask)
                elif kind == "worker":
                    self._on_worker_event(obj, _mask)
            self._tick()

    def _tick(self) -> None:
        now = time.monotonic()
        if self._reload_requested:
            self._reload_requested = False
            self._start_swap(None, {})
        # Request timeouts → 504; fan-out timeouts → partial responses.
        expired = [
            rid for rid, (kind, obj) in self._pending.items()
            if kind == "predict" and obj[2] <= now
        ]
        for rid in expired:
            _, (conn, worker, _deadline) = self._pending.pop(rid)
            worker.pending.discard(rid)
            self._respond_json(conn, 504, {
                "error": "worker did not answer in time",
                "status": "unavailable",
                "retriable": True,
            })
        for fanout in list({
            obj for kind, obj in self._pending.values() if kind == "fanout"
        }):
            if fanout.deadline <= now:
                for rid in list(fanout.waiting):
                    self._pending.pop(rid, None)
                    fanout.waiting[rid].pending.discard(rid)
                fanout.waiting.clear()
                self._finish_fanout(fanout, partial=True)
        if self._swap is not None and self._swap.deadline <= now:
            self._fail_swap("worker set did not become ready in time")
        # Half-closed clients past their drain deadline, reaped workers.
        for key in list(self._sel.get_map().values()):
            kind, obj = key.data
            if kind == "conn" and obj.half_closed and obj.close_deadline <= now:
                self._close_conn(obj)
        for worker in list(self._reap):
            worker.proc.join(timeout=0)
            if not worker.proc.is_alive():
                self._reap.remove(worker)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def _on_accept(self) -> None:
        while True:
            try:
                sock, addr = self._listen.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            conn = _Conn(sock, addr)
            self._sel.register(sock, selectors.EVENT_READ, ("conn", conn))

    def _conn_events(self, conn: _Conn) -> None:
        if conn.closed:
            return
        events = selectors.EVENT_READ
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        try:
            key = self._sel.get_key(conn.sock)
            if key.events != events:
                self._sel.modify(conn.sock, events, key.data)
        except KeyError:
            pass

    def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            self._sel.unregister(conn.sock)
        except KeyError:
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _on_conn_event(self, conn: _Conn, mask: int) -> None:
        if mask & selectors.EVENT_WRITE and conn.outbuf:
            try:
                sent = conn.sock.send(bytes(conn.outbuf))
                del conn.outbuf[:sent]
            except BlockingIOError:
                pass
            except OSError:
                self._close_conn(conn)
                return
            if not conn.outbuf and conn.close_after_write:
                if conn.discard > 0:
                    # 413 path: FIN our side, then drain the remainder of
                    # the oversized body so closing cannot RST the
                    # response out of the client's receive buffer.
                    try:
                        conn.sock.shutdown(socket.SHUT_WR)
                    except OSError:
                        self._close_conn(conn)
                        return
                    conn.half_closed = True
                    conn.close_deadline = time.monotonic() + 2.0
                else:
                    self._close_conn(conn)
                    return
        if mask & selectors.EVENT_READ:
            try:
                data = conn.sock.recv(1 << 16)
            except BlockingIOError:
                data = None
            except OSError:
                self._close_conn(conn)
                return
            if data == b"":
                self._close_conn(conn)
                return
            if data:
                if conn.discard > 0:
                    take = min(len(data), conn.discard)
                    conn.discard -= take
                    data = data[take:]
                    if conn.discard <= 0 and conn.half_closed:
                        self._close_conn(conn)
                        return
                if data:
                    conn.inbuf.extend(data)
        if not conn.closed:
            self._process_conn(conn)
            self._conn_events(conn)

    def _process_conn(self, conn: _Conn) -> None:
        """Parse as many complete requests as are buffered (stop while a
        dispatched request awaits its worker — responses stay ordered)."""
        while not conn.closed and not conn.busy:
            if conn.expect_body:
                if len(conn.inbuf) < conn.expect_body:
                    return
                body = bytes(conn.inbuf[:conn.expect_body])
                del conn.inbuf[:conn.expect_body]
                conn.expect_body = 0
                self._route(conn, body)
                continue
            head_end = conn.inbuf.find(b"\r\n\r\n")
            if head_end < 0:
                if len(conn.inbuf) > _MAX_HEADER_BYTES:
                    self._start_request(conn, "?", "?")
                    self._respond_json(
                        conn, 431, {"error": "request head too large"},
                        close=True,
                    )
                return
            head = bytes(conn.inbuf[:head_end])
            del conn.inbuf[:head_end + 4]
            if not self._parse_head(conn, head):
                return

    def _parse_head(self, conn: _Conn, head: bytes) -> bool:
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, path, _version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            self._start_request(conn, "?", "?")
            self._respond_json(
                conn, 400, {"error": "malformed request line"}, close=True
            )
            return False
        headers = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        self._start_request(conn, method, path)
        conn.req_keep_alive = headers.get("connection", "").lower() != "close"
        if "chunked" in headers.get("transfer-encoding", "").lower():
            self._respond_json(
                conn, 501, {"error": "chunked bodies are not supported"},
                close=True,
            )
            return False
        try:
            length = int(headers.get("content-length", 0))
        except ValueError:
            self._respond_json(
                conn, 400, {"error": "invalid Content-Length header"},
                close=True,
            )
            return False
        if length > self.max_body_bytes:
            conn.discard = min(length, _DRAIN_LIMIT)
            if conn.inbuf:
                take = min(len(conn.inbuf), conn.discard)
                del conn.inbuf[:take]
                conn.discard -= take
            self._respond_json(conn, 413, {
                "error": (
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit"
                )
            }, close=True)
            return False
        if length:
            conn.expect_body = length
            return True
        self._route(conn, b"")
        return True

    def _start_request(self, conn: _Conn, method: str, path: str) -> None:
        conn.req_method = method
        conn.req_path = path
        conn.req_started = time.perf_counter()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, conn: _Conn, body: bytes) -> None:
        method, path = conn.req_method, conn.req_path
        if method == "GET":
            if path in ("/healthz", "/health"):
                self._start_fanout(conn, "health")
            elif path == "/metrics":
                self._start_fanout(conn, "metrics")
            else:
                self._respond_json(
                    conn, 404, {"error": f"unknown path {path}"}
                )
        elif method == "POST":
            if path == "/predict":
                self._dispatch_predict(conn, body)
            elif path == "/admin/reload":
                try:
                    payload = json.loads(body.decode() or "{}")
                    if not isinstance(payload, dict):
                        raise ValueError("request body must be a JSON object")
                except (UnicodeDecodeError, ValueError) as exc:
                    self._respond_json(conn, 400, {"error": str(exc)})
                    return
                self._start_swap(conn, payload)
            else:
                self._respond_json(
                    conn, 404, {"error": f"unknown path {path}"}
                )
        else:
            self._respond_json(
                conn, 501, {"error": f"unsupported method {method}"}
            )

    def _dispatch_predict(self, conn: _Conn, body: bytes) -> None:
        ready = self._ready_workers()
        if not ready:
            self._respond_json(conn, 503, {
                "error": "no ready workers",
                "status": "unavailable",
                "retriable": True,
            })
            return
        worker = ready[self._rr % len(ready)]
        self._rr = (self._rr + 1) % max(1, len(ready))
        rid = self._next_id
        self._next_id += 1
        deadline = time.monotonic() + self._request_timeout
        self._pending[rid] = ("predict", (conn, worker, deadline))
        worker.pending.add(rid)
        conn.busy = True
        self._send_to_worker(worker, {"id": rid, "op": "predict"}, body)

    def _start_fanout(self, conn: Optional[_Conn], op: str) -> None:
        ready = self._ready_workers()
        fanout = _Fanout(op, conn, time.monotonic() + self._fanout_timeout)
        if not ready:
            self._finish_fanout(fanout, partial=True)
            return
        for worker in ready:
            rid = self._next_id
            self._next_id += 1
            self._pending[rid] = ("fanout", fanout)
            fanout.waiting[rid] = worker
            worker.pending.add(rid)
            self._send_to_worker(worker, {"id": rid, "op": op})

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _send_to_worker(
        self, worker: _Worker, header: Dict[str, object], body: bytes = b""
    ) -> None:
        worker.outbuf += encode_frame(header, body)
        events = selectors.EVENT_READ | selectors.EVENT_WRITE
        try:
            key = self._sel.get_key(worker.sock)
            if key.events != events:
                self._sel.modify(worker.sock, events, key.data)
        except KeyError:
            pass

    def _on_worker_event(self, worker: _Worker, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            if worker.outbuf:
                try:
                    sent = worker.sock.send(bytes(worker.outbuf))
                    del worker.outbuf[:sent]
                except BlockingIOError:
                    pass
                except OSError:
                    self._on_worker_death(worker)
                    return
            if not worker.outbuf:
                try:
                    key = self._sel.get_key(worker.sock)
                    self._sel.modify(
                        worker.sock, selectors.EVENT_READ, key.data
                    )
                except KeyError:
                    pass
        if mask & selectors.EVENT_READ:
            while True:
                try:
                    data = worker.sock.recv(1 << 16)
                except BlockingIOError:
                    break
                except OSError:
                    self._on_worker_death(worker)
                    return
                if not data:
                    self._on_worker_death(worker)
                    return
                worker.decoder.feed(data)
                if len(data) < (1 << 16):
                    break
            try:
                for header, body in worker.decoder.frames():
                    self._on_worker_frame(worker, header, body)
            except ProtocolError:
                self._on_worker_death(worker)

    def _on_worker_frame(
        self, worker: _Worker, header: Dict[str, object], body: bytes
    ) -> None:
        op = header.get("op")
        if op == "ready":
            worker.meta = header
            worker.state = "ready"
            self._check_swap()
            return
        if op == "error":
            if self._swap is not None and worker in self._swap.new:
                self._fail_swap(str(header.get("error", "worker boot failed")))
            else:
                self._on_worker_death(worker)
            return
        if op == "drained":
            self._retire_worker(worker)
            return
        if op == "pong":
            return
        rid = header.get("id")
        entry = self._pending.pop(rid, None)
        worker.pending.discard(rid)
        if entry is None:
            return  # timed out / connection gone
        kind, obj = entry
        if kind == "predict":
            conn, _worker, _deadline = obj
            status = int(header.get("status", 500))
            self._respond(conn, status, bytes(body) or b"{}")
        elif kind == "fanout":
            fanout = obj
            fanout.waiting.pop(rid, None)
            try:
                fanout.replies.append((worker, json.loads(body.decode() or "{}")))
            except (UnicodeDecodeError, ValueError):
                pass
            if not fanout.waiting:
                self._finish_fanout(fanout)

    def _on_worker_death(self, worker: _Worker) -> None:
        if worker.state == "dead":
            return
        expected = worker.state == "draining"
        worker.state = "dead"
        try:
            self._sel.unregister(worker.sock)
        except (KeyError, ValueError):
            pass
        try:
            worker.sock.close()
        except OSError:
            pass
        for rid in list(worker.pending):
            entry = self._pending.pop(rid, None)
            if entry is None:
                continue
            kind, obj = entry
            if kind == "predict":
                conn, _w, _d = obj
                self._respond_json(conn, 503, {
                    "error": f"worker {worker.id} died mid-request",
                    "status": "unavailable",
                    "retriable": True,
                })
            elif kind == "fanout":
                obj.waiting.pop(rid, None)
                if not obj.waiting:
                    self._finish_fanout(obj, partial=True)
        worker.pending.clear()
        if worker in self._workers:
            self._workers.remove(worker)
        if worker in self._retiring:
            self._retiring.remove(worker)
        if self._swap is not None and worker in self._swap.new and not expected:
            self._fail_swap(f"worker {worker.id} exited during boot")
            return
        self._reap.append(worker)

    def _retire_worker(self, worker: _Worker) -> None:
        """A draining worker confirmed it is done; reap it."""
        worker.state = "dead"
        try:
            self._sel.unregister(worker.sock)
        except (KeyError, ValueError):
            pass
        try:
            worker.sock.close()
        except OSError:
            pass
        if worker in self._retiring:
            self._retiring.remove(worker)
        self._reap.append(worker)

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    def _start_swap(
        self, conn: Optional[_Conn], payload: Dict[str, object]
    ) -> None:
        if self._swap is not None:
            if conn is not None:
                self._respond_json(
                    conn, 409, {"error": "a reload is already in progress"}
                )
            return
        requested = payload.get("artifact") or self._artifact_path
        path = _resolve_artifact(str(requested))
        if path is None:
            if conn is not None:
                self._respond_json(
                    conn, 400, {"error": f"artifact not found: {requested}"}
                )
            return
        try:
            count = int(payload.get("workers") or len(self._workers) or 1)
        except (TypeError, ValueError):
            self._respond_json(conn, 400, {"error": "workers must be an int"})
            return
        if count < 1:
            self._respond_json(conn, 400, {"error": "workers must be >= 1"})
            return
        swap = _Swap(conn, path, time.monotonic() + self._boot_timeout)
        generation = self._generation + 1
        for _ in range(count):
            worker = self._spawn_worker(path, generation)
            worker.sock.setblocking(False)
            self._sel.register(
                worker.sock, selectors.EVENT_READ, ("worker", worker)
            )
            swap.new.append(worker)
        self._swap = swap
        if conn is not None:
            conn.busy = True  # response lands when the swap resolves

    def _check_swap(self) -> None:
        swap = self._swap
        if swap is None or any(w.state != "ready" for w in swap.new):
            return
        # Every new worker is ready: switch routing atomically, then drain
        # the old set.  Drain frames queue FIFO behind any predicts already
        # dispatched to an old worker, so nothing in flight is lost.
        old = self._workers
        self._workers = swap.new
        self._generation = swap.new[0].generation
        self._artifact_path = swap.path
        self._artifact_sha = swap.new[0].meta.get("artifact_sha")
        self._rr = 0
        self._swap = None
        for worker in old:
            worker.state = "draining"
            self._retiring.append(worker)
            self._send_to_worker(worker, {"op": "drain"})
        if swap.conn is not None:
            self._respond_json(swap.conn, 200, {
                "status": "ok",
                "artifact_generation": self._generation,
                "artifact_sha": self._artifact_sha,
                "workers": len(self._workers),
            })

    def _fail_swap(self, reason: str) -> None:
        swap = self._swap
        if swap is None:
            return
        self._swap = None
        for worker in swap.new:
            try:
                self._sel.unregister(worker.sock)
            except (KeyError, ValueError):
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
            if worker.proc.is_alive():
                worker.proc.terminate()
            worker.state = "dead"
            self._reap.append(worker)
        if swap.conn is not None:
            self._respond_json(swap.conn, 500, {
                "error": f"reload failed: {reason}; previous workers "
                         f"keep serving",
                "artifact_generation": self._generation,
            })

    # ------------------------------------------------------------------
    # responses & aggregation
    # ------------------------------------------------------------------
    def _finish_fanout(self, fanout: _Fanout, partial: bool = False) -> None:
        if fanout.conn is None or fanout.conn.closed:
            return
        if fanout.op == "health":
            self._respond_json(
                fanout.conn, 200, self._health_payload(fanout, partial)
            )
        else:
            snapshots = [reply for _w, reply in fanout.replies]
            labels = [
                {"worker": str(w.id)} for w, _reply in fanout.replies
            ]
            merged = merge_snapshots(snapshots, gauge_labels=labels)
            text = self.registry.render_prometheus()
            if merged:
                text = text + render_snapshot_prometheus(merged)
            self._respond(
                fanout.conn, 200, text.encode(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )

    def _health_payload(
        self, fanout: _Fanout, partial: bool
    ) -> Dict[str, object]:
        from repro.serving.engine import InferenceEngine

        ready = self._ready_workers()
        metas = [reply.get("meta", {}) for _w, reply in fanout.replies]
        engines = [reply.get("engine", {}) for _w, reply in fanout.replies]
        meta0 = metas[0] if metas else {}
        status = "ok" if ready and not partial else "degraded"
        return {
            "status": status,
            "workers": len(ready),
            "artifact_generation": int(self._generation),
            "artifact_sha": self._artifact_sha,
            "mmapped": bool(metas) and all(m.get("mmapped") for m in metas),
            "formulation": meta0.get("formulation"),
            "network": meta0.get("network"),
            "schema_version": meta0.get("schema_version"),
            "incremental": meta0.get("incremental"),
            "compiled": meta0.get("compiled"),
            "index": meta0.get("index"),
            "nprobe": meta0.get("nprobe"),
            "pool_rows": meta0.get("pool_rows"),
            "engine": InferenceEngine.merge_snapshots(engines),
            "workers_detail": [
                {
                    "worker": w.id,
                    "pid": reply.get("meta", {}).get("pid"),
                    "generation": reply.get("meta", {}).get("generation"),
                    "engine": reply.get("engine", {}),
                }
                for w, reply in fanout.replies
            ],
            "server": {
                "rejected_oversize": self._rejected_oversize.value,
            },
        }

    def _respond_json(
        self, conn: _Conn, status: int, payload: Dict[str, object],
        close: bool = False,
    ) -> None:
        self._respond(
            conn, status, json.dumps(payload).encode(), close=close
        )

    def _respond(
        self, conn: _Conn, status: int, body: bytes,
        content_type: str = "application/json", close: bool = False,
    ) -> None:
        if conn.closed:
            return
        close = close or not conn.req_keep_alive
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        )
        conn.outbuf += head.encode() + body
        conn.close_after_write = close
        conn.busy = False
        self._record_request(conn, status)
        self._conn_events(conn)
        if not close:
            self._process_conn(conn)

    _ROUTES = ("/predict", "/healthz", "/health", "/metrics", "/admin/reload")

    def _record_request(self, conn: _Conn, status: int) -> None:
        route = conn.req_path if conn.req_path in self._ROUTES else "other"
        duration = time.perf_counter() - conn.req_started
        self._http_requests.labels(
            method=conn.req_method, path=route, status=str(status)
        ).inc()
        self._http_duration.labels(path=route).observe(duration)
        if status == 413:
            self._rejected_oversize.inc()
        if self.access_log:
            access_logger.info(json.dumps({
                "method": conn.req_method,
                "path": conn.req_path,
                "status": int(status),
                "latency_ms": round(duration * 1000.0, 3),
                "workers": len(self._ready_workers()),
            }, sort_keys=True))
