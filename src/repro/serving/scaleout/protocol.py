"""Length-prefixed framing between the front door and worker processes.

One frame is::

    u32 header_len | u32 body_len | header (JSON, UTF-8) | body (raw bytes)

(big-endian lengths).  The *header* carries routing and control fields —
``op`` (``predict`` / ``health`` / ``metrics`` / ``drain`` / ``ready`` /
``error`` / …), the request ``id`` the front door uses to match replies to
waiting HTTP connections, status codes, JSON-safe stats.  The *body* is an
opaque byte string: for ``predict`` frames it is the client's raw HTTP
body on the way in and the JSON response on the way out, so the front
door never parses rows — it stays an I/O loop, and all row handling CPU
lands on the workers.

Two consumption styles, matching the two sides of the socket:

* workers block — :func:`recv_frame` reads exactly one frame;
* the front door multiplexes — it feeds whatever bytes the selector hands
  it into a :class:`FrameDecoder` and drains complete frames.

Frames are bounded (:data:`MAX_FRAME_BYTES`) so a corrupted length prefix
fails loudly instead of allocating gigabytes.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Iterator, Optional, Tuple

_PREFIX = struct.Struct(">II")

#: Hard per-frame ceiling — far above any request the HTTP layer admits
#: (its own ``max_body_bytes`` is the real limit) but small enough that a
#: desynchronized stream cannot trigger a giant allocation.
MAX_FRAME_BYTES = 1 << 28  # 256 MiB

Frame = Tuple[Dict[str, object], bytes]


class ProtocolError(RuntimeError):
    """The peer sent bytes that cannot be a frame (or hung up mid-frame)."""


def encode_frame(header: Dict[str, object], body: bytes = b"") -> bytes:
    """Serialize one frame to bytes (the front door appends to outbufs)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    if len(header_bytes) + len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(header_bytes) + len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _PREFIX.pack(len(header_bytes), len(body)) + header_bytes + body


def send_frame(
    sock: socket.socket, header: Dict[str, object], body: bytes = b""
) -> None:
    """Blocking send of one frame (the worker side)."""
    sock.sendall(encode_frame(header, body))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes, or ``None`` on a clean EOF at a frame
    boundary (``n`` asked, zero received on the first read)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Frame]:
    """Blocking read of one frame; ``None`` on clean EOF (peer is gone)."""
    prefix = _recv_exact(sock, _PREFIX.size)
    if prefix is None:
        return None
    header_len, body_len = _PREFIX.unpack(prefix)
    if header_len + body_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame of {header_len + body_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    header_bytes = _recv_exact(sock, header_len) if header_len else b"{}"
    if header_bytes is None:
        raise ProtocolError("peer closed between prefix and header")
    body = _recv_exact(sock, body_len) if body_len else b""
    if body is None:
        raise ProtocolError("peer closed between header and body")
    return json.loads(header_bytes.decode()), body


class FrameDecoder:
    """Incremental frame decoder for the non-blocking front-door side.

    Feed it whatever ``recv`` returned; iterate :meth:`frames` for every
    complete frame buffered so far.  Partial frames stay buffered across
    feeds — exactly the state machine a selectors loop needs.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def frames(self) -> Iterator[Frame]:
        while True:
            if len(self._buffer) < _PREFIX.size:
                return
            header_len, body_len = _PREFIX.unpack_from(self._buffer)
            total = _PREFIX.size + header_len + body_len
            if header_len + body_len > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"declared frame of {header_len + body_len} bytes "
                    f"exceeds the {MAX_FRAME_BYTES}-byte frame limit"
                )
            if len(self._buffer) < total:
                return
            header_bytes = bytes(
                self._buffer[_PREFIX.size:_PREFIX.size + header_len]
            )
            body = bytes(self._buffer[_PREFIX.size + header_len:total])
            del self._buffer[:total]
            yield json.loads(header_bytes.decode() or "{}"), body
