"""Formulation-agnostic inductive inference over frozen training state.

The transductive pipelines score exactly the rows they were trained on.
:class:`InferenceEngine` closes the train/serve gap for every servable
formulation by delegating to the scorer the artifact's fitted formulation
provides (:meth:`~repro.formulations.FittedFormulation.make_scorer`):

* **instance** — unseen rows are preprocessed with the artifact's frozen
  statistics, linked into the frozen training pool via retrieval
  (PET-style, survey Sec. 4.2.4), and propagated incrementally: the pool's
  per-layer activations are cached once, each request computes only the
  B query rows — O(B·k·d), independent of pool size, for every network in
  the zoo.  The full-graph rebuild is kept purely as a correctness oracle
  (``incremental=False``); the two paths agree to floating-point round-off.
* **feature** — the feature-graph model is row-wise by construction; rows
  are tokenized with the frozen field statistics and scored directly.
* **multiplex / hetero** — unseen rows attach to *frozen value nodes* by
  vocabulary lookup: the artifact carries, per column, the mapping from
  value codes to pool value-node state (with binned numerical columns
  re-binned through the frozen quantile edges).  Never-seen values land in
  the UNK bucket (counted in ``stats["unk_values"]``) and still produce
  valid predictions; the vocabulary never grows at serve time.
* **hypergraph** — each unseen row attaches as a *new hyperedge* over the
  frozen value nodes: the artifact carries the incidence structure and the
  frozen row→value-node encoder, the scorer caches the value-node states
  once, and a query is the degree-normalized mean of its member nodes'
  cached states — O(B·n_features·d), independent of the training-table
  size, with the attached full-graph forward kept as the parity oracle
  (``incremental=False``).

The engine itself is formulation-blind: it validates rows, handles the
LRU prediction cache and stats, and softmaxes whatever logits the scorer
returns.  Registering a new formulation therefore requires no engine
edits.

Repeated rows are memoized in a bounded LRU cache keyed on the raw row
bytes, so hot rows (the head of a production traffic distribution) skip
the forward pass entirely.  Cached probability arrays are marked
read-only before they are stored, so a caller mutating a returned array
cannot silently corrupt the cache.  Batch scoring deduplicates rows
*within* the batch as well, which is what makes the micro-batcher's
coalescing worthwhile under skewed traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.serving.artifact import ModelArtifact
from repro.tensor.ops import softmax_rows


class InferenceEngine:
    """Score unseen rows against a :class:`~repro.serving.ModelArtifact`.

    Parameters
    ----------
    artifact:
        The frozen pipeline to serve.
    cache_size:
        Maximum number of distinct rows memoized in the LRU prediction
        cache; ``0`` disables caching.
    incremental:
        ``None`` (default) lets the formulation pick its best path — the
        cached-pool incremental path everywhere one exists.  ``False``
        forces the instance formulation's full-graph oracle; explicit
        values a formulation cannot honor raise ``ValueError`` (feature
        artifacts have no pool to propagate from; multiplex/hetero have no
        full-graph oracle).

    Notes
    -----
    Cache hits return the stored array itself (no copy, no forward pass);
    cached arrays are marked read-only so accidental mutation raises
    instead of corrupting the cache.  The engine is thread-safe: a lock
    serializes scoring, which matches the micro-batcher's single consumer
    model.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        cache_size: int = 256,
        incremental: Optional[bool] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.artifact = artifact
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple[bytes, bytes], np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "rows": 0,
            "cache_hits": 0,
            "forward_passes": 0,
            "forward_rows": 0,
        }
        self._scorer = artifact.fitted.make_scorer(artifact, incremental, self.stats)
        self.incremental = bool(self._scorer.incremental)

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.artifact.num_classes

    def _normalize(
        self, numerical: np.ndarray, categorical: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.artifact.preprocessor.normalize_rows(numerical, categorical)

    @staticmethod
    def _key(num_row: np.ndarray, cat_row: np.ndarray) -> Tuple[bytes, bytes]:
        return (num_row.tobytes(), cat_row.tobytes())

    # ------------------------------------------------------------------
    def _forward(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        """One vectorized forward pass over a (B, …) row batch → (B, C) probs."""
        logits = self._scorer.score(numerical, categorical)
        self.stats["forward_passes"] += 1
        self.stats["forward_rows"] += numerical.shape[0]
        probs = softmax_rows(logits, axis=1)
        # Rows of this array end up in the LRU cache and are returned by
        # reference; freeze them so caller mutation raises instead of
        # corrupting cached entries.
        probs.flags.writeable = False
        return probs

    # ------------------------------------------------------------------
    def predict_batch(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(B, C) class probabilities for a batch of raw rows.

        Rows already in the cache are served from it; the remaining
        *distinct* rows share a single vectorized forward pass.
        """
        numerical, categorical = self._normalize(numerical, categorical)
        n = numerical.shape[0]
        out = np.empty((n, self.num_classes))
        with self._lock:
            self.stats["rows"] += n
            keys = [self._key(numerical[i], categorical[i]) for i in range(n)]
            fresh: "OrderedDict[Tuple[bytes, bytes], int]" = OrderedDict()
            for i, key in enumerate(keys):
                if self.cache_size and key in self._cache:
                    self._cache.move_to_end(key)
                    out[i] = self._cache[key]
                    self.stats["cache_hits"] += 1
                elif key not in fresh:
                    fresh[key] = i
            if fresh:
                rows = list(fresh.values())
                probs = self._forward(numerical[rows], categorical[rows])
                for local, key in enumerate(fresh):
                    if self.cache_size:
                        self._cache[key] = probs[local]
                        self._cache.move_to_end(key)
                fresh_probs = dict(zip(fresh, probs))
                for i, key in enumerate(keys):
                    if key in fresh_probs:
                        out[i] = fresh_probs[key]
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return out

    def predict(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(C,) class probabilities for one raw row.

        A cache hit returns the stored (read-only) array itself — no
        forward pass.
        """
        numerical, categorical = self._normalize(numerical, categorical)
        if numerical.shape[0] != 1:
            raise ValueError("predict scores one row; use predict_batch")
        key = self._key(numerical[0], categorical[0])
        with self._lock:
            self.stats["rows"] += 1
            if self.cache_size and key in self._cache:
                self._cache.move_to_end(key)
                self.stats["cache_hits"] += 1
                return self._cache[key]
            probs = self._forward(numerical, categorical)[0]
            if self.cache_size:
                self._cache[key] = probs
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return probs

    def predict_labels(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return self.predict_batch(numerical, categorical).argmax(axis=1)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
