"""Inductive inference over a frozen training pool.

The transductive pipelines score exactly the rows they were trained on.
:class:`InferenceEngine` closes the train/serve gap for the row-wise
formulations:

* **instance** — unseen rows are preprocessed with the artifact's frozen
  statistics, linked into the frozen training pool via retrieval
  (PET-style, survey Sec. 4.2.4), and scored by the GNN in eval mode.
* **feature** — the feature-graph model is row-wise by construction; rows
  are tokenized with the frozen field statistics and scored directly.

Incremental query propagation
-----------------------------
Attach edges are *directed* pool→query, so no message ever flows from a
query into the pool: every pool node's activation at every GNN layer is
identical to a pool-only forward, whatever the request.  The engine
exploits that at construction time (the precompute step):

1. build the model **once** on the pool graph (memoized adjacency
   operators, weights loaded without wasted random init);
2. run **one** full forward over the pool and cache the node states
   entering every propagate step
   (:meth:`~repro.gnn.networks._NodeNetwork.pool_hidden_states` — for
   gated networks that is one entry per GRU step);
3. build a :class:`~repro.construction.retrieval.PoolIndex` so retrieval
   stops re-deriving pool norms per request.

Per request (the propagate step), only the B query rows are computed: the
model replays its plan on a tiny bipartite attach view — each query's k
retrieved neighbors plus a self loop, with the normalization each conv
family would derive on the induced graph (the directed attach edges leave
every pool degree untouched, so a query's in-degree is exactly k, plus
the self loop where the flavor uses one).  Per-request cost is
**O(B·k·d) — independent of pool size** — versus the full-graph path's
O(pool + E + B·k) graph rebuild, re-normalization and pool re-forward.
Because every conv layer speaks the same edge-wise ``propagate``
substrate, this holds for **all five** networks — GCN, GraphSAGE, GIN,
GAT and GatedGNN alike.  The full-graph path is kept purely as a
correctness oracle (``incremental=False``) — the two paths agree to
floating-point round-off.

Repeated rows are memoized in a bounded LRU cache keyed on the raw row
bytes, so hot rows (the head of a production traffic distribution) skip
the forward pass entirely.  Cached probability arrays are marked
read-only before they are stored, so a caller mutating a returned array
cannot silently corrupt the cache.  Batch scoring deduplicates rows
*within* the batch as well, which is what makes the micro-batcher's
coalescing worthwhile under skewed traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.construction.retrieval import PoolIndex
from repro.graph.homogeneous import Graph
from repro.serving.artifact import ModelArtifact
from repro.tensor.ops import softmax_rows


class InferenceEngine:
    """Score unseen rows against a :class:`~repro.serving.ModelArtifact`.

    Parameters
    ----------
    artifact:
        The frozen pipeline to serve.
    cache_size:
        Maximum number of distinct rows memoized in the LRU prediction
        cache; ``0`` disables caching.
    incremental:
        ``None``/``True`` (default) uses incremental query propagation —
        available for every instance-graph network; ``False`` forces the
        full-graph oracle path.  ``True`` still raises ``ValueError`` for
        feature-formulation artifacts, which have no pool graph to
        propagate from.

    Notes
    -----
    Cache hits return the stored array itself (no copy, no forward pass);
    cached arrays are marked read-only so accidental mutation raises
    instead of corrupting the cache.  The engine is thread-safe: a lock
    serializes scoring, which matches the micro-batcher's single consumer
    model.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        cache_size: int = 256,
        incremental: Optional[bool] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.artifact = artifact
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple[bytes, bytes], np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "rows": 0,
            "cache_hits": 0,
            "forward_passes": 0,
            "forward_rows": 0,
        }
        if artifact.formulation == "feature":
            if incremental:
                raise ValueError(
                    "feature-formulation artifacts have no pool graph to "
                    "propagate from; use incremental=None/False"
                )
            # Graph-free: build once, reuse for every request.
            self._model = artifact.build_model()
            self.incremental = False
        else:
            self._pool_x = np.asarray(artifact.pool_x, dtype=np.float64)
            self._pool_edges = artifact.pool_edge_index.astype(np.int64)
            self._pool_index = PoolIndex(
                self._pool_x,
                measure=str(artifact.config.get("metric", "euclidean")),
            )
            self.incremental = True if incremental is None else bool(incremental)
            if self.incremental:
                # One model for the engine's lifetime, built on the pool
                # graph, then the precompute step: one pool-only forward,
                # cached forever.  The oracle path (incremental=False)
                # instead rebuilds a model on the induced graph per
                # request, so it has no use for either.
                self._model = artifact.build_model(artifact.pool_graph())
                self._pool_hiddens = self._model.pool_hidden_states()

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.artifact.num_classes

    def _normalize(
        self, numerical: np.ndarray, categorical: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.artifact.preprocessor.normalize_rows(numerical, categorical)

    @staticmethod
    def _key(num_row: np.ndarray, cat_row: np.ndarray) -> Tuple[bytes, bytes]:
        return (num_row.tobytes(), cat_row.tobytes())

    # ------------------------------------------------------------------
    def _forward_full(
        self, features: np.ndarray, neighbors: np.ndarray
    ) -> np.ndarray:
        """Correctness-oracle path: rebuild the (pool + queries) graph.

        Pays O(pool + E) per request — kept solely as the reference the
        incremental path is tested against (``incremental=False``).
        """
        batch = features.shape[0]
        n_pool = self._pool_x.shape[0]
        k = neighbors.shape[1]
        query_ids = n_pool + np.arange(batch, dtype=np.int64)
        attach = np.stack([neighbors.reshape(-1), np.repeat(query_ids, k)])
        edge_index = np.concatenate([self._pool_edges, attach], axis=1)
        graph = Graph(
            n_pool + batch,
            edge_index,
            x=np.concatenate([self._pool_x, features], axis=0),
        )
        model = self.artifact.build_model(graph)
        return model().data[n_pool:]

    def _forward(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        """One vectorized forward pass over a (B, …) row batch → (B, C) probs."""
        features = self.artifact.preprocessor.transform(numerical, categorical)
        if self.artifact.formulation == "feature":
            model = self._model
            model.eval()
            logits = model(features).data
        else:
            n_pool = self._pool_x.shape[0]
            k = min(int(self.artifact.config["k"]), n_pool)
            # Directed pool→query attachment edges: queries aggregate from
            # their retrieved neighbors but leave every pool node's degree
            # (and hence the GNN's normalization over the pool) untouched.
            # Predictions are therefore exactly independent of which other
            # queries share the batch — safe to micro-batch and to memoize.
            neighbors = self._pool_index.top_k(features, k)
            if self.incremental:
                logits = self._model.propagate_queries(
                    features, neighbors, self._pool_hiddens
                )
            else:
                logits = self._forward_full(features, neighbors)
        self.stats["forward_passes"] += 1
        self.stats["forward_rows"] += features.shape[0]
        probs = softmax_rows(logits, axis=1)
        # Rows of this array end up in the LRU cache and are returned by
        # reference; freeze them so caller mutation raises instead of
        # corrupting cached entries.
        probs.flags.writeable = False
        return probs

    # ------------------------------------------------------------------
    def predict_batch(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(B, C) class probabilities for a batch of raw rows.

        Rows already in the cache are served from it; the remaining
        *distinct* rows share a single vectorized forward pass.
        """
        numerical, categorical = self._normalize(numerical, categorical)
        n = numerical.shape[0]
        out = np.empty((n, self.num_classes))
        with self._lock:
            self.stats["rows"] += n
            keys = [self._key(numerical[i], categorical[i]) for i in range(n)]
            fresh: "OrderedDict[Tuple[bytes, bytes], int]" = OrderedDict()
            for i, key in enumerate(keys):
                if self.cache_size and key in self._cache:
                    self._cache.move_to_end(key)
                    out[i] = self._cache[key]
                    self.stats["cache_hits"] += 1
                elif key not in fresh:
                    fresh[key] = i
            if fresh:
                rows = list(fresh.values())
                probs = self._forward(numerical[rows], categorical[rows])
                for local, key in enumerate(fresh):
                    if self.cache_size:
                        self._cache[key] = probs[local]
                        self._cache.move_to_end(key)
                fresh_probs = dict(zip(fresh, probs))
                for i, key in enumerate(keys):
                    if key in fresh_probs:
                        out[i] = fresh_probs[key]
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return out

    def predict(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(C,) class probabilities for one raw row.

        A cache hit returns the stored (read-only) array itself — no
        forward pass.
        """
        numerical, categorical = self._normalize(numerical, categorical)
        if numerical.shape[0] != 1:
            raise ValueError("predict scores one row; use predict_batch")
        key = self._key(numerical[0], categorical[0])
        with self._lock:
            self.stats["rows"] += 1
            if self.cache_size and key in self._cache:
                self._cache.move_to_end(key)
                self.stats["cache_hits"] += 1
                return self._cache[key]
            probs = self._forward(numerical, categorical)[0]
            if self.cache_size:
                self._cache[key] = probs
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return probs

    def predict_labels(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return self.predict_batch(numerical, categorical).argmax(axis=1)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
