"""Formulation-agnostic inductive inference over frozen training state.

The transductive pipelines score exactly the rows they were trained on.
:class:`InferenceEngine` closes the train/serve gap for every servable
formulation by delegating to the scorer the artifact's fitted formulation
provides (:meth:`~repro.formulations.FittedFormulation.make_scorer`):

* **instance** — unseen rows are preprocessed with the artifact's frozen
  statistics, linked into the frozen training pool via retrieval
  (PET-style, survey Sec. 4.2.4), and propagated incrementally: the pool's
  per-layer activations are cached once, each request computes only the
  B query rows — O(B·k·d), independent of pool size, for every network in
  the zoo.  The full-graph rebuild is kept purely as a correctness oracle
  (``incremental=False``); the two paths agree to floating-point round-off.
* **feature** — the feature-graph model is row-wise by construction; rows
  are tokenized with the frozen field statistics and scored directly.
* **multiplex / hetero** — unseen rows attach to *frozen value nodes* by
  vocabulary lookup: the artifact carries, per column, the mapping from
  value codes to pool value-node state (with binned numerical columns
  re-binned through the frozen quantile edges).  Never-seen values land in
  the UNK bucket (counted in ``stats["unk_values"]``) and still produce
  valid predictions; the vocabulary never grows at serve time.
* **hypergraph** — each unseen row attaches as a *new hyperedge* over the
  frozen value nodes: the artifact carries the incidence structure and the
  frozen row→value-node encoder, the scorer caches the value-node states
  once, and a query is the degree-normalized mean of its member nodes'
  cached states — O(B·n_features·d), independent of the training-table
  size, with the attached full-graph forward kept as the parity oracle
  (``incremental=False``).

The engine itself is formulation-blind: it validates rows, handles the
LRU prediction cache and stats, and softmaxes whatever logits the scorer
returns.  Registering a new formulation therefore requires no engine
edits.

Repeated rows are memoized in a bounded LRU cache keyed on the raw row
bytes, so hot rows (the head of a production traffic distribution) skip
the forward pass entirely.  Cached probability arrays are marked
read-only before they are stored, so a caller mutating a returned array
cannot silently corrupt the cache.  Batch scoring deduplicates rows
*within* the batch as well, which is what makes the micro-batcher's
coalescing worthwhile under skewed traffic.
"""

from __future__ import annotations

import inspect
import itertools
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.obs import MetricsRegistry, Tracer
from repro.obs.tracing import NULL_CONTEXT
from repro.serving.artifact import ModelArtifact
from repro.tensor.ops import softmax_rows

#: Engine counter keys, pre-seeded so ``stats`` always carries them in a
#: stable order (scorers add their own, e.g. ``unk_values``).
_STAT_KEYS = ("rows", "cache_hits", "forward_passes", "forward_rows")

_STAT_HELP = {
    "rows": "Rows submitted for scoring.",
    "cache_hits": "Rows served from the LRU prediction cache.",
    "forward_passes": "Vectorized scorer forward passes.",
    "forward_rows": "Distinct rows scored by forward passes.",
    "unk_values": "Lookups that landed in the UNK bucket.",
    "attach_edges": "Pool attach edges created for query rows.",
    "retrieval_probed_cells": "IVF cells probed by approximate retrieval.",
    "retrieval_candidates": "Candidate rows re-ranked by approximate retrieval.",
}


class InferenceEngine:
    """Score unseen rows against a :class:`~repro.serving.ModelArtifact`.

    Parameters
    ----------
    artifact:
        The frozen pipeline to serve.
    cache_size:
        Maximum number of distinct rows memoized in the LRU prediction
        cache; ``0`` disables caching.
    incremental:
        ``None`` (default) lets the formulation pick its best path — the
        cached-pool incremental path everywhere one exists.  ``False``
        forces the instance formulation's full-graph oracle; explicit
        values a formulation cannot honor raise ``ValueError`` (feature
        artifacts have no pool to propagate from; multiplex/hetero have no
        full-graph oracle).
    registry:
        A shared :class:`~repro.obs.MetricsRegistry` to report into (the
        prediction server passes its own so one ``/metrics`` scrape covers
        server, engine and batcher); ``None`` creates a private one.
    observability:
        ``False`` strips every metric/span and no registry exists.  The
        serving bench uses this to measure instrumentation overhead (kept
        < 5% of single-row p50).
    trace_every:
        Stage-span sampling rate: the first request and every
        ``trace_every``-th after it are traced through the per-stage
        spans; the others pay only the (always-on) end-to-end histogram.
        ``1`` traces everything, ``0`` disables stage tracing.  Sampling
        is what keeps instrumentation inside the < 5% overhead budget —
        the request-latency histogram stays exact because it never
        samples.
    compiled:
        ``True`` (default) lowers the scorer's query path to a flat
        compiled plan (:mod:`repro.serving.compiled`) at construction:
        pure-numpy kernels over preallocated reused buffers, no autograd
        Tensor wrappers or backward closures on the hot path, pool-side
        work folded into compile-time constants.  Best-effort — scorers
        whose path cannot be lowered (plug-in formulations, oracle modes)
        silently keep the interpreted autograd path.  ``self.compiled``
        reports which path serves; ``self.compile_ms`` the one-time
        lowering cost.  Per-request complexity is unchanged (the
        incremental paths were already O(B·k·d) / O(B·columns·d)); the
        constant factor drops because each request now executes only the
        query-dependent kernels.
    index / nprobe:
        Retrieval-index selection for formulations that attach queries by
        pool retrieval (the instance formulation): ``index="exact"`` keeps
        the exhaustive scan, ``index="ivf"`` serves the sub-linear
        inverted-file index with ``nprobe`` probed cells per query (see
        :mod:`repro.construction.retrieval`).  ``None`` (default) defers
        to the artifact config (``config["index"]``/``config["nprobe"]``),
        falling back to exact — so existing artifacts serve bit-identically.
        Explicit values are refused with ``ValueError`` when the
        formulation's scorer takes no ``index`` argument (nothing to
        retrieve from).  ``self.index`` reports the live backend (exact
        after an exotic-measure fallback), ``self.nprobe`` the probe
        budget, ``self.index_build_ms`` the one-time build cost; the
        ``repro_engine_retrieval_*`` counters and the sampled
        ``repro_engine_retrieval_recall`` gauge land in the registry when
        an approximate index serves.

    Notes
    -----
    Cache hits return the stored array itself (no copy, no forward pass);
    cached arrays are marked read-only so accidental mutation raises
    instead of corrupting the cache.  The engine is thread-safe: a lock
    serializes scoring, which matches the micro-batcher's single consumer
    model.  All ``stats`` mutations happen while that lock is held, so
    :meth:`snapshot` (which takes it) returns a view in which related
    counters are consistent — e.g. ``cache_hits + forward_rows`` always
    accounts for every single-row predict.

    Observability (when enabled): end-to-end latency lands in the
    ``repro_request_duration_seconds{formulation,endpoint}`` histogram
    (every request); sampled requests are traced through the
    ``cache → score(encode → attach → plan_execute|propagate) → head``
    stages (``repro_stage_duration_seconds{formulation,stage}``) —
    compiled execution reports the ``plan_execute`` stage where the
    interpreted path reports ``propagate``.  ``stats``
    stays a plain dict — mutated only under the engine lock, so
    increments cost the same as before instrumentation — and is exported
    to the registry through collection-time callbacks
    (``repro_engine_<key>_total``); drift gauges — UNK-hit rate, cache
    hit rate, pool-attach fan-out — are derived the same way.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        cache_size: int = 256,
        incremental: Optional[bool] = None,
        registry: Optional[MetricsRegistry] = None,
        observability: bool = True,
        trace_every: int = 32,
        compiled: bool = True,
        index: Optional[str] = None,
        nprobe: Optional[int] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.artifact = artifact
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple[bytes, bytes], np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = dict.fromkeys(_STAT_KEYS, 0)
        if observability:
            self.registry = registry if registry is not None else MetricsRegistry()
            self._init_observability(trace_every)
        else:
            self.registry = None
            self._tracer = None
            self._request_hists = {}
            self._trace_every = 0
        make_scorer = artifact.fitted.make_scorer
        scorer_kwargs = {}
        if index is not None or nprobe is not None:
            # Plug-in formulations keep the original 3-argument make_scorer
            # signature; only pass index kwargs where they are understood,
            # and refuse explicit requests a formulation cannot honor.
            params = inspect.signature(make_scorer).parameters
            accepts_index = "index" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
            )
            if not accepts_index:
                raise ValueError(
                    f"formulation {artifact.formulation!r} does not retrieve "
                    "from a pool; index/nprobe selection does not apply"
                )
            scorer_kwargs = {"index": index, "nprobe": nprobe}
        self._scorer = make_scorer(
            artifact, incremental, self.stats, **scorer_kwargs
        )
        self.incremental = bool(self._scorer.incremental)
        #: live retrieval-index backend ("exact"/"ivf"), or None for
        #: formulations that do not retrieve from a pool.
        self.index: Optional[str] = getattr(self._scorer, "index", None)
        self.nprobe: Optional[int] = getattr(self._scorer, "nprobe", None)
        self.index_build_ms = float(getattr(self._scorer, "index_build_ms", 0.0))
        self.compiled = False
        self.compile_ms = 0.0
        if compiled:
            started = time.perf_counter()
            self.compiled = bool(self._scorer.enable_compiled())
            self.compile_ms = (time.perf_counter() - started) * 1000.0
        if self._tracer is not None:
            self._scorer.bind_tracer(self._tracer)
            # The scorer's __init__ has now setdefault'ed its own keys
            # (unk_values, attach_edges, …); export the complete set.
            self._export_stats()

    def _init_observability(self, trace_every: int) -> None:
        labels = {"formulation": str(self.artifact.formulation)}
        self._labels = labels
        self._trace_every = max(0, int(trace_every))
        self._trace_tick = itertools.count()
        self._tracer = Tracer(self.registry, const_labels=labels)
        family = self.registry.histogram(
            "repro_request_duration_seconds",
            "End-to-end engine request latency.",
            labelnames=("formulation", "endpoint"),
        )
        self._request_hists = {
            endpoint: family.labels(endpoint=endpoint, **labels)
            for endpoint in ("predict", "predict_batch")
        }

    def _export_stats(self) -> None:
        """Expose the ``stats`` dict on the registry via callbacks.

        The hot path keeps mutating a plain dict under the engine lock
        (one dict ``+=`` per counter — the cheapest thing Python offers);
        the registry reads the live values only at collection time, the
        same custom-collector idiom real Prometheus clients use for
        counters owned by existing code.
        """
        labels = self._labels
        stats = self.stats
        for key in stats:
            self.registry.counter(
                f"repro_engine_{key}_total", _STAT_HELP.get(key, ""),
                labelnames=("formulation",),
            ).labels(**labels).set_function(lambda k=key: stats[k])

        def _rate(num: str, den: str):
            def compute() -> float:
                total = stats.get(den, 0)
                return stats.get(num, 0) / total if total else 0.0
            return compute

        # Drift gauges, derived at collection time from the live counters:
        # UNK-hit rate rising means the frozen vocabulary is aging out of
        # the traffic; cache-hit rate falling means the hot-row set moved;
        # attach fan-out is the pool linkage the average query still finds.
        self.registry.gauge(
            "repro_engine_unk_rate",
            "UNK-bucket lookups per scored row (drift signal).",
            labelnames=("formulation",),
        ).labels(**labels).set_function(_rate("unk_values", "rows"))
        self.registry.gauge(
            "repro_engine_cache_hit_rate",
            "LRU cache hits per scored row.",
            labelnames=("formulation",),
        ).labels(**labels).set_function(_rate("cache_hits", "rows"))
        self.registry.gauge(
            "repro_engine_attach_fanout",
            "Pool attach edges per forward-scored row.",
            labelnames=("formulation",),
        ).labels(**labels).set_function(_rate("attach_edges", "forward_rows"))
        self.registry.gauge(
            "repro_engine_cache_entries",
            "Rows currently memoized in the LRU cache.",
            labelnames=("formulation",),
        ).labels(**labels).set_function(lambda: len(self._cache))
        self.registry.gauge(
            "repro_engine_compiled",
            "1 when the compiled plan serves the hot path, 0 interpreted.",
            labelnames=("formulation",),
        ).labels(**labels).set_function(
            lambda: 1.0 if self.compiled else 0.0
        )
        scorer = self._scorer
        if getattr(scorer, "retrieval_recall", None) is not None:
            self.registry.gauge(
                "repro_engine_retrieval_recall",
                "Sampled recall@k of the approximate retrieval index "
                "against the exact scan.",
                labelnames=("formulation",),
            ).labels(**labels).set_function(
                lambda: float(scorer.retrieval_recall)
            )

    # ------------------------------------------------------------------
    def _root_span(self, name: str):
        """A sampled request-level span (the first request always traces,
        then one in every ``trace_every``)."""
        if self._trace_every and not (
            next(self._trace_tick) % self._trace_every
        ):
            return self._tracer.span(name)
        return NULL_CONTEXT

    def _span(self, name: str):
        """A stage span — records only inside a sampled request (i.e.
        when this thread already has an open span)."""
        tracer = self._tracer
        if tracer is None or tracer.current() is None:
            return NULL_CONTEXT
        return tracer.span(name)

    def _observe_request(self, endpoint: str, started: float) -> None:
        hist = self._request_hists.get(endpoint)
        if hist is not None:
            hist.observe(time.perf_counter() - started)

    def snapshot(self) -> Dict[str, float]:
        """Locked, consistent copy of the engine counters.

        Taken under the engine lock — the same lock every predict mutates
        ``stats`` under — so no in-flight request can tear the view
        (``/healthz`` reads this, never the live dict).
        """
        with self._lock:
            return dict(self.stats)

    @staticmethod
    def merge_snapshots(snapshots) -> Dict[str, float]:
        """Sum per-process engine counter snapshots into fleet totals.

        Engine stats are all monotonic counters, so summation is the
        correct cross-worker aggregation — the scale-out front door uses
        this to report one fleet-wide ``engine`` block on ``/healthz``.
        """
        merged: Dict[str, float] = {}
        for snap in snapshots:
            for key, value in snap.items():
                merged[key] = merged.get(key, 0.0) + float(value)
        return merged

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.artifact.num_classes

    def _normalize(
        self, numerical: np.ndarray, categorical: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.artifact.preprocessor.normalize_rows(numerical, categorical)

    @staticmethod
    def _key(num_row: np.ndarray, cat_row: np.ndarray) -> Tuple[bytes, bytes]:
        return (num_row.tobytes(), cat_row.tobytes())

    # ------------------------------------------------------------------
    def _forward(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        """One vectorized forward pass over a (B, …) row batch → (B, C) probs."""
        logits = self._scorer.score(numerical, categorical)
        self.stats["forward_passes"] += 1
        self.stats["forward_rows"] += numerical.shape[0]
        with self._span("head"):
            probs = softmax_rows(logits, axis=1)
        # Rows of this array end up in the LRU cache and are returned by
        # reference; freeze them so caller mutation raises instead of
        # corrupting cached entries.
        probs.flags.writeable = False
        return probs

    # ------------------------------------------------------------------
    def predict_batch(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(B, C) class probabilities for a batch of raw rows.

        Rows already in the cache are served from it; the remaining
        *distinct* rows share a single vectorized forward pass.
        """
        started = time.perf_counter()
        with self._root_span("predict_batch"):
            numerical, categorical = self._normalize(numerical, categorical)
            n = numerical.shape[0]
            out = np.empty((n, self.num_classes))
            with self._lock:
                self.stats["rows"] += n
                with self._span("cache"):
                    keys = [
                        self._key(numerical[i], categorical[i]) for i in range(n)
                    ]
                    fresh: "OrderedDict[Tuple[bytes, bytes], int]" = OrderedDict()
                    hits = 0
                    for i, key in enumerate(keys):
                        if self.cache_size and key in self._cache:
                            self._cache.move_to_end(key)
                            out[i] = self._cache[key]
                            hits += 1
                        elif key not in fresh:
                            fresh[key] = i
                    if hits:
                        self.stats["cache_hits"] += hits
                if fresh:
                    rows = list(fresh.values())
                    probs = self._forward(numerical[rows], categorical[rows])
                    for local, key in enumerate(fresh):
                        if self.cache_size:
                            self._cache[key] = probs[local]
                            self._cache.move_to_end(key)
                    fresh_probs = dict(zip(fresh, probs))
                    for i, key in enumerate(keys):
                        if key in fresh_probs:
                            out[i] = fresh_probs[key]
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
        self._observe_request("predict_batch", started)
        return out

    def predict(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(C,) class probabilities for one raw row.

        A cache hit returns the stored (read-only) array itself — no
        forward pass.
        """
        started = time.perf_counter()
        with self._root_span("predict"):
            numerical, categorical = self._normalize(numerical, categorical)
            if numerical.shape[0] != 1:
                raise ValueError("predict scores one row; use predict_batch")
            key = self._key(numerical[0], categorical[0])
            with self._lock:
                self.stats["rows"] += 1
                with self._span("cache"):
                    hit = self.cache_size and key in self._cache
                if hit:
                    self._cache.move_to_end(key)
                    self.stats["cache_hits"] += 1
                    probs = self._cache[key]
                else:
                    probs = self._forward(numerical, categorical)[0]
                    if self.cache_size:
                        self._cache[key] = probs
                        while len(self._cache) > self.cache_size:
                            self._cache.popitem(last=False)
        self._observe_request("predict", started)
        return probs

    def predict_labels(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return self.predict_batch(numerical, categorical).argmax(axis=1)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
