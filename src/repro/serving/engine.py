"""Inductive inference over a frozen training pool.

The transductive pipelines score exactly the rows they were trained on.
:class:`InferenceEngine` closes the train/serve gap for the row-wise
formulations:

* **instance** — unseen rows are preprocessed with the artifact's frozen
  statistics, linked into the frozen training pool via
  :func:`repro.construction.retrieval.retrieve_neighbors` (PET-style
  retrieval, survey Sec. 4.2.4), and scored by running the GNN in eval mode
  over the induced (pool + queries) graph.  Pool nodes never change, and
  query nodes never connect to each other, so requests are independent.
* **feature** — the feature-graph model is row-wise by construction; rows
  are tokenized with the frozen field statistics and scored directly.

Repeated rows are memoized in a bounded LRU cache keyed on the raw row
bytes, so hot rows (the head of a production traffic distribution) skip
the forward pass entirely.  Batch scoring deduplicates rows *within* the
batch as well, which is what makes the micro-batcher's coalescing
worthwhile under skewed traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.construction.retrieval import retrieve_neighbors
from repro.graph.homogeneous import Graph
from repro.serving.artifact import ModelArtifact


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class InferenceEngine:
    """Score unseen rows against a :class:`~repro.serving.ModelArtifact`.

    Parameters
    ----------
    artifact:
        The frozen pipeline to serve.
    cache_size:
        Maximum number of distinct rows memoized in the LRU prediction
        cache; ``0`` disables caching.

    Notes
    -----
    Cached probability arrays are returned *by reference* (a cache hit is
    the identical array, no copy, no forward pass) — treat them as
    read-only.  The engine is thread-safe: a lock serializes scoring, which
    matches the micro-batcher's single consumer model.
    """

    def __init__(self, artifact: ModelArtifact, cache_size: int = 256) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.artifact = artifact
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple[bytes, bytes], np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "rows": 0,
            "cache_hits": 0,
            "forward_passes": 0,
            "forward_rows": 0,
        }
        if artifact.formulation == "feature":
            # Graph-free: build once, reuse for every request.
            self._model = artifact.build_model()
        else:
            self._model = None
            self._pool_x = np.asarray(artifact.pool_x, dtype=np.float64)
            self._pool_edges = artifact.pool_edge_index.astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.artifact.num_classes

    def _normalize(
        self, numerical: np.ndarray, categorical: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.artifact.preprocessor.normalize_rows(numerical, categorical)

    @staticmethod
    def _key(num_row: np.ndarray, cat_row: np.ndarray) -> Tuple[bytes, bytes]:
        return (num_row.tobytes(), cat_row.tobytes())

    # ------------------------------------------------------------------
    def _forward(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        """One vectorized forward pass over a (B, …) row batch → (B, C) probs."""
        features = self.artifact.preprocessor.transform(numerical, categorical)
        if self.artifact.formulation == "feature":
            model = self._model
            model.eval()
            logits = model(features).data
        else:
            batch = features.shape[0]
            n_pool = self._pool_x.shape[0]
            k = min(int(self.artifact.config["k"]), n_pool)
            neighbors = retrieve_neighbors(
                features,
                self._pool_x,
                k,
                measure=str(self.artifact.config.get("metric", "euclidean")),
            )
            # Directed pool→query attachment edges: queries aggregate from
            # their retrieved neighbors but leave every pool node's degree
            # (and hence the GNN's normalization over the pool) untouched.
            # Predictions are therefore exactly independent of which other
            # queries share the batch — safe to micro-batch and to memoize.
            query_ids = n_pool + np.arange(batch, dtype=np.int64)
            attach = np.stack(
                [neighbors.reshape(-1), np.repeat(query_ids, k)]
            )
            edge_index = np.concatenate([self._pool_edges, attach], axis=1)
            graph = Graph(
                n_pool + batch,
                edge_index,
                x=np.concatenate([self._pool_x, features], axis=0),
            )
            model = self.artifact.build_model(graph)
            logits = model().data[n_pool:]
        self.stats["forward_passes"] += 1
        self.stats["forward_rows"] += features.shape[0]
        return _softmax(logits)

    # ------------------------------------------------------------------
    def predict_batch(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(B, C) class probabilities for a batch of raw rows.

        Rows already in the cache are served from it; the remaining
        *distinct* rows share a single vectorized forward pass.
        """
        numerical, categorical = self._normalize(numerical, categorical)
        n = numerical.shape[0]
        out = np.empty((n, self.num_classes))
        with self._lock:
            self.stats["rows"] += n
            keys = [self._key(numerical[i], categorical[i]) for i in range(n)]
            fresh: "OrderedDict[Tuple[bytes, bytes], int]" = OrderedDict()
            for i, key in enumerate(keys):
                if self.cache_size and key in self._cache:
                    self._cache.move_to_end(key)
                    out[i] = self._cache[key]
                    self.stats["cache_hits"] += 1
                elif key not in fresh:
                    fresh[key] = i
            if fresh:
                rows = list(fresh.values())
                probs = self._forward(numerical[rows], categorical[rows])
                for local, key in enumerate(fresh):
                    if self.cache_size:
                        self._cache[key] = probs[local]
                        self._cache.move_to_end(key)
                fresh_probs = dict(zip(fresh, probs))
                for i, key in enumerate(keys):
                    if key in fresh_probs:
                        out[i] = fresh_probs[key]
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return out

    def predict(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """(C,) class probabilities for one raw row.

        A cache hit returns the stored array itself — no forward pass.
        """
        numerical, categorical = self._normalize(numerical, categorical)
        if numerical.shape[0] != 1:
            raise ValueError("predict scores one row; use predict_batch")
        key = self._key(numerical[0], categorical[0])
        with self._lock:
            self.stats["rows"] += 1
            if self.cache_size and key in self._cache:
                self._cache.move_to_end(key)
                self.stats["cache_hits"] += 1
                return self._cache[key]
            probs = self._forward(numerical, categorical)[0]
            if self.cache_size:
                self._cache[key] = probs
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return probs

    def predict_labels(
        self,
        numerical: np.ndarray,
        categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return self.predict_batch(numerical, categorical).argmax(axis=1)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
