"""The Formulation protocol and registry (survey Phase 1 as a plug point).

The survey treats *graph formulation* — what becomes a node — as a design
axis alongside construction, representation and training.  This module
makes that axis first-class: each formulation implements

* :meth:`Formulation.fit` — run phases 1+2 on a dataset and freeze the
  result as a :class:`FittedFormulation`;
* :meth:`FittedFormulation.build_model` — instantiate the architecture the
  formulation trains (and that serving rebuilds for weight loading);
* :meth:`FittedFormulation.artifact_payload` /
  :meth:`Formulation.from_payload` — the formulation-specific serve-time
  state (retrieval pool, value-node vocabularies, …) as flat arrays plus
  JSON-safe meta, persisted inside a :class:`repro.serving.ModelArtifact`;
* :meth:`FittedFormulation.make_scorer` — the serve-time scoring strategy
  (:class:`RowScorer`) the :class:`repro.serving.InferenceEngine` drives.

``repro.pipeline.run_pipeline`` and the serving stack dispatch purely
through the registry, so registering a new formulation requires **no**
edits to either — implement the protocol, call :func:`register`.
"""

from __future__ import annotations

import abc
import functools
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import nn
from repro.datasets.preprocessing import TabularPreprocessor
from repro.datasets.tabular import TabularDataset
from repro.obs.tracing import NULL_CONTEXT, Tracer


def _timed_score(inner):
    """Wrap a scorer's ``score`` in a ``"score"`` tracing span.

    Applied once per concrete scorer class by
    :meth:`RowScorer.__init_subclass__`, so *every* formulation — current
    and future plug-ins — gets its scorer boundary timed for free; the
    finer stages (encode / attach / propagate) are the formulation's own
    :meth:`RowScorer.stage` calls nested inside this span.
    """

    @functools.wraps(inner)
    def score(self, numerical, categorical):
        tracer = self._tracer
        # Stage spans record only inside a sampled request — when the
        # engine opened a root span on this thread.  Unsampled requests
        # skip all span machinery (the < 5% overhead budget).
        if tracer is None or tracer.current() is None:
            return inner(self, numerical, categorical)
        with tracer.span("score"):
            return inner(self, numerical, categorical)

    score._obs_timed = True
    return score


class RowScorer(abc.ABC):
    """Serve-time scoring strategy produced by a fitted formulation.

    ``incremental`` reports whether the scorer propagates only query rows
    against cached pool-side state (as opposed to rebuilding a full graph
    per request).  Scorers receive *validated* raw row arrays (the engine
    runs ``preprocessor.normalize_rows`` first) and return logits.

    Observability: the engine binds its :class:`~repro.obs.Tracer` via
    :meth:`bind_tracer` after construction; on requests the engine samples
    for tracing, ``score`` is automatically timed as the ``"score"``
    stage, and implementations wrap their internal phases in
    ``with self.stage("encode"): ...`` — a no-op (reusable null context)
    when no tracer is bound or the request is unsampled, so scorers stay
    usable without any observability wiring.
    """

    incremental: bool = False
    #: class-level default — unbound scorers trace nothing
    _tracer: Optional[Tracer] = None
    #: compiled plan executor (see :mod:`repro.serving.compiled`); ``None``
    #: means the interpreted autograd path is in charge
    _compiled = None

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        fn = cls.__dict__.get("score")
        if fn is not None and not getattr(fn, "_obs_timed", False):
            cls.score = _timed_score(fn)

    def bind_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach the engine's tracer; stages recorded from now on."""
        self._tracer = tracer

    def stage(self, name: str):
        """Context manager timing one internal stage.

        A reusable no-op when no tracer is bound *or* the current request
        was not sampled for tracing (no open span on this thread).
        """
        tracer = self._tracer
        if tracer is None or tracer.current() is None:
            return NULL_CONTEXT
        return tracer.span(name)

    def compile_plan(self):
        """Lower this scorer's query path to a compiled plan executor.

        Returns an executor (object with a ``.plan`` and a ``run``
        method the scorer's ``score`` knows how to feed) or ``None`` when
        the path cannot be lowered.  The default returns ``None``, so
        plug-in formulations keep serving through the interpreted autograd
        path without any extra work.
        """
        return None

    def enable_compiled(self) -> bool:
        """Build the compiled plan once; report whether scoring uses it."""
        if self._compiled is None:
            self._compiled = self.compile_plan()
        return self._compiled is not None

    @abc.abstractmethod
    def score(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        """Logits ``(B, out_dim)`` for a batch of raw rows."""


class FittedFormulation(abc.ABC):
    """Frozen phases-1+2 state: graph, preprocessing, hyperparameters.

    Lives on both sides of the artifact boundary: :meth:`Formulation.fit`
    builds one from a dataset (training), :meth:`Formulation.from_payload`
    rebuilds one from deserialized artifact arrays (serving).
    """

    #: registry name; class attribute set by each implementation
    name: str = ""
    #: whether this formulation's fitted state can serve unseen rows
    servable: bool = True

    def __init__(
        self,
        config: Dict[str, object],
        preprocessor: Optional[TabularPreprocessor],
    ) -> None:
        self.config = dict(config)
        self.preprocessor = preprocessor

    # -- pipeline side --------------------------------------------------
    @abc.abstractmethod
    def build_model(self, rng, graph=None) -> nn.Module:
        """Instantiate the architecture this formulation trains/serves.

        ``graph`` optionally overrides the construction graph (the serving
        engine's full-graph oracle path builds on an induced graph).
        """

    def forward_fn(self, model: nn.Module) -> Callable[[], object]:
        """Zero-argument transductive forward over the training table."""
        return model

    def logits(self, model: nn.Module) -> np.ndarray:
        """Eval-mode transductive logits over the training table."""
        model.eval()
        return self.forward_fn(model)().data

    @property
    def aux_features(self) -> Optional[np.ndarray]:
        """Node-feature matrix for reconstruction-style auxiliary tasks."""
        return None

    @property
    def features(self) -> Optional[np.ndarray]:
        """Transductive feature matrix, when the formulation keeps one."""
        return None

    # -- serving side ---------------------------------------------------
    @property
    def model_builder(self) -> str:
        """Architecture-builder name recorded as the artifact's ``network``."""
        raise NotImplementedError

    @property
    def pool_rows(self) -> Optional[int]:
        """Rows in the frozen serving pool, if the formulation has one."""
        return None

    def artifact_payload(
        self,
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """(arrays, json-safe meta) for the artifact's formulation state."""
        raise NotImplementedError(
            f"formulation {self.name!r} does not export serving artifacts"
        )

    def make_scorer(self, artifact, incremental: Optional[bool], stats: Dict[str, int]) -> RowScorer:
        """Build the scorer the inference engine delegates requests to.

        ``incremental=None`` lets the formulation pick its best path;
        explicit ``True``/``False`` must be honored or rejected with a
        ``ValueError``.  ``stats`` is the engine's counter dict — scorers
        may add their own counters (e.g. ``unk_values``).
        """
        raise NotImplementedError(
            f"formulation {self.name!r} does not support serving"
        )


class Formulation(abc.ABC):
    """One leaf of the formulation axis: a name plus fit/rehydrate logic."""

    name: str = ""
    fitted_cls: type = FittedFormulation

    @property
    def servable(self) -> bool:
        return bool(self.fitted_cls.servable)

    @abc.abstractmethod
    def fit(
        self,
        dataset: TabularDataset,
        train_mask: Optional[np.ndarray],
        config: Dict[str, object],
    ) -> FittedFormulation:
        """Run phases 1+2 (formulation + construction) and freeze the result."""

    def from_payload(
        self,
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, object],
        config: Dict[str, object],
        preprocessor: Optional[TabularPreprocessor],
    ) -> FittedFormulation:
        """Rehydrate a fitted formulation from artifact payload state."""
        return self.fitted_cls.from_payload(arrays, meta, config, preprocessor)


_REGISTRY: Dict[str, Formulation] = {}


def register(formulation: Formulation) -> Formulation:
    """Add a formulation to the registry; names must be unique."""
    if not formulation.name:
        raise ValueError("formulation must define a non-empty name")
    if formulation.name in _REGISTRY:
        raise ValueError(f"formulation {formulation.name!r} already registered")
    _REGISTRY[formulation.name] = formulation
    return formulation


def unregister(name: str) -> None:
    """Remove a registered formulation (tests / plug-in teardown)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> Formulation:
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown formulation {name!r}; choose from {available()}"
        )
    return _REGISTRY[name]


def available() -> Tuple[str, ...]:
    """Registered formulation names, in registration order."""
    return tuple(_REGISTRY)


def servable() -> Tuple[str, ...]:
    """Names of formulations whose artifacts can serve unseen rows."""
    return tuple(n for n, f in _REGISTRY.items() if f.servable)
