"""Multiplex formulation: one same-feature-value layer per column (TabGNN).

Phases 1+2: every categorical column (and, optionally, every quantile-
binned numerical column) contributes one relation layer connecting
instances that share a value; :class:`~repro.models.TabGNN` encodes each
relation with a GCN and fuses them by attention.

Serving — value-node vocabularies with an UNK bucket
----------------------------------------------------
The fitted formulation freezes, per relation, the **vocabulary** mapping
each observed value to the pool rows possessing it (plus, for binned
columns, the quantile edges that map raw numbers to values).  An unseen
row's value is looked up in the frozen vocabulary and the query aggregates
the cached pool-side conv messages of that group; a *never-seen* value
falls into the UNK bucket — no pool group, the query's own transformed
state flows through instead (exactly the self-loop an isolated training
node has) — so out-of-vocabulary values yield valid predictions without
growing the vocabulary.  Because GCN over an uncapped value clique equals
the group mean, training-table rows served this way reproduce their
transductive logits to round-off (degree-capped groups — the rule's
scalability guard — are served with the same group-mean semantics and may
deviate slightly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro import nn
from repro.construction.intrinsic import (
    ValueColumnSpec,
    multiplex_from_dataset,
    value_column_specs,
)
from repro.datasets.preprocessing import TabularPreprocessor
from repro.formulations.base import FittedFormulation, Formulation, RowScorer
from repro.graph.multiplex import MultiplexGraph
from repro.models import TabGNN

Vocabulary = Dict[int, np.ndarray]  # value code -> pool member row indices


def _build_vocabularies(specs: List[ValueColumnSpec]) -> List[Vocabulary]:
    vocabs: List[Vocabulary] = []
    for spec in specs:
        vocab: Vocabulary = {}
        for value in np.unique(spec.codes):
            if value < 0:
                continue
            vocab[int(value)] = np.nonzero(spec.codes == value)[0].astype(np.int64)
        vocabs.append(vocab)
    return vocabs


class MultiplexScorer(RowScorer):
    """Vocabulary-lookup scoring against cached pool relation messages."""

    incremental = True

    def __init__(
        self,
        artifact,
        fitted: "FittedMultiplex",
        incremental: Optional[bool],
        stats: Dict[str, int],
    ) -> None:
        if incremental is False:
            raise ValueError(
                "multiplex artifacts serve through frozen value-node "
                "vocabularies; there is no full-graph oracle path "
                "(incremental=False)"
            )
        self._artifact = artifact
        self._fitted = fitted
        self._stats = stats
        stats.setdefault("unk_values", 0)
        stats.setdefault("attach_edges", 0)
        self.model = artifact.build_model()
        self.pool_messages = self.model.pool_message_states()
        self._n_pool = fitted.graph.num_nodes

    def _member_operator(
        self, codes: np.ndarray, vocab: Vocabulary
    ) -> sp.csr_matrix:
        """(B, n_pool) row-mean operator over each query's value group."""
        indptr = [0]
        indices: List[np.ndarray] = []
        data: List[np.ndarray] = []
        total = 0
        for code in codes:
            members = vocab.get(int(code)) if code >= 0 else None
            if code >= 0 and members is None:
                self._stats["unk_values"] += 1
            if members is not None:
                indices.append(members)
                data.append(np.full(members.shape[0], 1.0 / members.shape[0]))
                total += members.shape[0]
            indptr.append(total)
        return sp.csr_matrix(
            (
                np.concatenate(data) if data else np.zeros(0),
                np.concatenate(indices) if indices else np.zeros(0, np.int64),
                np.asarray(indptr, dtype=np.int64),
            ),
            shape=(codes.shape[0], self._n_pool),
        )

    def score(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        with self.stage("encode"):
            features = self._artifact.preprocessor.transform(numerical, categorical)
        if self._compiled is not None:
            # Compiled path skips the sparse-operator build entirely: the
            # executor resolves raw value codes against its vocabulary
            # lookups (keeping unk/attach accounting identical) and feeds
            # the plan precomputed group means.
            with self.stage("attach"):
                codes = [
                    spec.encode(numerical, categorical)
                    for spec in self._fitted.specs
                ]
            with self.stage("plan_execute"):
                return self._compiled.run(features, codes, self._stats)
        with self.stage("attach"):
            operators = [
                self._member_operator(spec.encode(numerical, categorical), vocab)
                for spec, vocab in zip(self._fitted.specs, self._fitted.vocabularies)
            ]
            self._stats["attach_edges"] += int(sum(op.nnz for op in operators))
        with self.stage("propagate"):
            return self.model.propagate_queries(
                features, operators, self.pool_messages
            )

    def compile_plan(self):
        from repro.serving.compiled import compile_multiplex

        return compile_multiplex(
            self.model, self._fitted.vocabularies, self.pool_messages
        )


class FittedMultiplex(FittedFormulation):
    name = "multiplex"

    def __init__(
        self,
        graph: MultiplexGraph,
        specs: List[ValueColumnSpec],
        vocabularies: List[Vocabulary],
        preprocessor: TabularPreprocessor,
        config: Dict[str, object],
        capped_groups: int = 0,
    ) -> None:
        super().__init__(config, preprocessor)
        self.graph = graph
        self.specs = list(specs)
        self.vocabularies = list(vocabularies)
        #: value groups whose training cliques were degree-capped by
        #: ``max_group_degree``.  0 ⇒ served training rows reproduce the
        #: transductive logits exactly; > 0 ⇒ members of those groups are
        #: served with group-mean semantics and may deviate slightly.
        self.capped_groups = int(capped_groups)

    def build_model(self, rng, graph=None) -> nn.Module:
        return TabGNN(
            self.graph if graph is None else graph,
            int(self.config["hidden_dim"]),
            int(self.config["out_dim"]),
            rng,
            num_layers=int(self.config.get("num_layers", 2)),
        )

    @property
    def model_builder(self) -> str:
        return "tabgnn"

    @property
    def pool_rows(self) -> Optional[int]:
        return int(self.graph.num_nodes)

    def artifact_payload(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        arrays: Dict[str, np.ndarray] = {
            "x": np.asarray(self.graph.x, dtype=np.float64)
        }
        columns: List[Dict[str, object]] = []
        for i, (spec, vocab) in enumerate(zip(self.specs, self.vocabularies)):
            arrays[f"rel{i}::edge_index"] = self.graph.layer(spec.name).edge_index
            keys = np.array(sorted(vocab), dtype=np.int64)
            members = [vocab[int(k)] for k in keys]
            arrays[f"rel{i}::vocab_keys"] = keys
            arrays[f"rel{i}::vocab_offsets"] = np.cumsum(
                [0] + [m.shape[0] for m in members]
            ).astype(np.int64)
            arrays[f"rel{i}::vocab_members"] = (
                np.concatenate(members) if members else np.zeros(0, np.int64)
            )
            if spec.bin_edges is not None:
                arrays[f"rel{i}::bin_edges"] = np.asarray(
                    spec.bin_edges, dtype=np.float64
                )
            columns.append(spec.to_meta())
        meta = {
            "pool_rows": int(self.graph.num_nodes),
            "columns": columns,
            "capped_groups": self.capped_groups,
        }
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays, meta, config, preprocessor) -> "FittedMultiplex":
        x = np.asarray(arrays["x"], dtype=np.float64)
        specs: List[ValueColumnSpec] = []
        vocabularies: List[Vocabulary] = []
        layers: Dict[str, np.ndarray] = {}
        for i, column in enumerate(meta["columns"]):
            specs.append(ValueColumnSpec.from_meta(
                column, bin_edges=arrays.get(f"rel{i}::bin_edges")
            ))
            keys = arrays[f"rel{i}::vocab_keys"]
            offsets = arrays[f"rel{i}::vocab_offsets"]
            members = arrays[f"rel{i}::vocab_members"].astype(np.int64)
            vocabularies.append({
                int(key): members[offsets[j]:offsets[j + 1]]
                for j, key in enumerate(keys)
            })
            layers[str(column["name"])] = arrays[f"rel{i}::edge_index"]
        graph = MultiplexGraph.from_layers(x.shape[0], layers, x=x)
        return cls(
            graph, specs, vocabularies, preprocessor, config,
            capped_groups=int(meta.get("capped_groups", 0)),
        )

    def make_scorer(self, artifact, incremental, stats) -> MultiplexScorer:
        return MultiplexScorer(artifact, self, incremental, stats)


class MultiplexFormulation(Formulation):
    name = "multiplex"
    fitted_cls = FittedMultiplex

    def fit(self, dataset, train_mask, config) -> FittedMultiplex:
        n_bins = int(config.get("n_bins", 5))
        include_bins = bool(config.get("include_numerical_bins", True))
        cap = config.get("max_group_degree", 30)
        specs = value_column_specs(
            dataset, n_bins=n_bins, include_numerical_bins=include_bins
        )
        graph = multiplex_from_dataset(
            dataset, n_bins=n_bins, include_numerical_bins=include_bins,
            max_group_degree=cap, specs=specs,
        )
        vocabularies = _build_vocabularies(specs)
        capped_groups = 0
        if cap is not None:
            capped_groups = sum(
                int(members.shape[0] - 1 > cap)
                for vocab in vocabularies
                for members in vocab.values()
            )
        # The node features are dataset.to_matrix(); an unmasked onehot fit
        # reproduces that transform exactly for serve-time rows.
        preprocessor = TabularPreprocessor(mode="onehot").fit(dataset)
        return self.fitted_cls(
            graph, specs, vocabularies, preprocessor, config,
            capped_groups=capped_groups,
        )
