"""First-class graph formulations (survey Phase 1) behind one registry.

Each formulation — instance, feature, multiplex, hetero, hypergraph —
implements the :class:`~repro.formulations.base.Formulation` protocol:
``fit`` runs phases 1+2 and freezes the result, the fitted object builds
its model, exports/rehydrates its serve-time payload (retrieval pool,
value-node vocabularies, …) and produces the scorer the inference engine
drives.  ``run_pipeline`` and ``repro.serving`` dispatch purely through
:func:`get`, so adding a formulation is :func:`register` plus the
protocol — no pipeline or engine edits.
"""

from repro.formulations.base import (
    FittedFormulation,
    Formulation,
    RowScorer,
    available,
    get,
    register,
    servable,
    unregister,
)
from repro.formulations.instance import InstanceFormulation
from repro.formulations.feature import FeatureFormulation
from repro.formulations.multiplex import MultiplexFormulation
from repro.formulations.hetero import HeteroFormulation
from repro.formulations.hypergraph import HypergraphFormulation

# Registration order defines repro.pipeline.FORMULATIONS.
for _formulation in (
    InstanceFormulation(),
    FeatureFormulation(),
    MultiplexFormulation(),
    HeteroFormulation(),
    HypergraphFormulation(),
):
    register(_formulation)
del _formulation

__all__ = [
    "Formulation",
    "FittedFormulation",
    "RowScorer",
    "register",
    "unregister",
    "get",
    "available",
    "servable",
    "InstanceFormulation",
    "FeatureFormulation",
    "MultiplexFormulation",
    "HeteroFormulation",
    "HypergraphFormulation",
]
