"""Hetero formulation: feature values as typed nodes (GCT/HSGNN/GraphFC).

Phases 1+2: every categorical column (and, optionally, every quantile-
binned numerical column) becomes a node *type* whose nodes are the
column's distinct values, connected to the instances possessing them;
:class:`~repro.gnn.hetero.HeteroGNN` runs typed message passing.

Serving — value-node vocabularies with an UNK bucket
----------------------------------------------------
Instances receive messages *only* from value-node types, and value-node
states never depend on query rows, so one pool forward caches everything:
a query row attaches to the frozen value node for each of its values by
vocabulary lookup (for binned columns, through the frozen quantile edges)
and replays the per-layer update with those cached states — training-table
rows reproduce their transductive logits exactly.  A never-seen value
(code outside the training cardinality) falls into the UNK bucket: no
edge, zero message for that column — the same treatment a missing cell
gets transductively — so predictions stay valid and the vocabulary never
grows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.construction.intrinsic import (
    ValueColumnSpec,
    hetero_from_dataset,
    value_column_specs,
)
from repro.datasets.preprocessing import StandardScaler, TabularPreprocessor
from repro.formulations.base import FittedFormulation, Formulation, RowScorer
from repro.graph.heterogeneous import HeteroGraph
from repro.models import HeteroTabClassifier

_GRAPH = "graph::"


class HeteroScorer(RowScorer):
    """Value-node lookup scoring against cached typed pool states."""

    incremental = True

    def __init__(
        self,
        artifact,
        fitted: "FittedHetero",
        incremental: Optional[bool],
        stats: Dict[str, int],
    ) -> None:
        if incremental is False:
            raise ValueError(
                "hetero artifacts serve through frozen value-node "
                "vocabularies; there is no full-graph oracle path "
                "(incremental=False)"
            )
        self._fitted = fitted
        self._stats = stats
        stats.setdefault("unk_values", 0)
        stats.setdefault("attach_edges", 0)
        self.model = artifact.build_model()
        self.pool_states = self.model.network.pool_states()

    def score(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        with self.stage("encode"):
            features = self._fitted.instance_features(numerical)
        with self.stage("attach"):
            value_ids: Dict[str, np.ndarray] = {}
            unk = attached = 0
            for spec in self._fitted.specs:
                ids = spec.encode(numerical, categorical)
                unknown = ids >= spec.cardinality
                unk += int(np.count_nonzero(unknown))
                ids = np.where(unknown, -1, ids)  # UNK bucket: no attach edge
                attached += int(np.count_nonzero(ids >= 0))
                value_ids[spec.name] = ids
            self._stats["unk_values"] += unk
            self._stats["attach_edges"] += attached
        if self._compiled is not None:
            with self.stage("plan_execute"):
                return self._compiled.run(features, value_ids)
        with self.stage("propagate"):
            return self.model.network.propagate_queries(
                features, value_ids, self.pool_states
            )

    def compile_plan(self):
        from repro.serving.compiled import compile_hetero

        return compile_hetero(self.model.network, self.pool_states)


class FittedHetero(FittedFormulation):
    name = "hetero"

    def __init__(
        self,
        graph: HeteroGraph,
        specs: List[ValueColumnSpec],
        scaler_mean: np.ndarray,
        scaler_std: np.ndarray,
        preprocessor: TabularPreprocessor,
        config: Dict[str, object],
    ) -> None:
        super().__init__(config, preprocessor)
        self.graph = graph
        self.specs = list(specs)
        self.scaler_mean = np.asarray(scaler_mean, dtype=np.float64)
        self.scaler_std = np.asarray(scaler_std, dtype=np.float64)

    def instance_features(self, numerical: np.ndarray) -> np.ndarray:
        """Query-row instance-node features via the frozen scaler.

        Mirrors the construction-time featurization exactly: missing cells
        are zero-imputed *before* standardization; featureless datasets use
        a constant one, matching every pool instance node.
        """
        if self.scaler_mean.size == 0:
            return np.ones((numerical.shape[0], 1))
        cleaned = np.nan_to_num(
            np.asarray(numerical, dtype=np.float64), nan=0.0
        )
        return (cleaned - self.scaler_mean) / self.scaler_std

    def build_model(self, rng, graph=None) -> nn.Module:
        return HeteroTabClassifier(
            rng=rng,
            hidden_dim=int(self.config["hidden_dim"]),
            num_layers=int(self.config.get("num_layers", 2)),
            graph=self.graph if graph is None else graph,
            out_dim=int(self.config["out_dim"]),
        )

    @property
    def model_builder(self) -> str:
        return "hetero_gnn"

    @property
    def pool_rows(self) -> Optional[int]:
        target = self.graph.target_type or "instance"
        return int(self.graph.node_counts[target])

    def artifact_payload(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        graph_arrays, graph_meta = self.graph.state()
        arrays = {_GRAPH + name: value for name, value in graph_arrays.items()}
        arrays["scaler_mean"] = self.scaler_mean
        arrays["scaler_std"] = self.scaler_std
        columns: List[Dict[str, object]] = []
        for i, spec in enumerate(self.specs):
            if spec.bin_edges is not None:
                arrays[f"col{i}::bin_edges"] = np.asarray(
                    spec.bin_edges, dtype=np.float64
                )
            columns.append(spec.to_meta())
        meta = {
            "pool_rows": self.pool_rows,
            "columns": columns,
            "graph": graph_meta,
        }
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays, meta, config, preprocessor) -> "FittedHetero":
        graph = HeteroGraph.from_state(
            {
                name[len(_GRAPH):]: value
                for name, value in arrays.items()
                if name.startswith(_GRAPH)
            },
            meta["graph"],
        )
        specs = [
            ValueColumnSpec.from_meta(
                column, bin_edges=arrays.get(f"col{i}::bin_edges")
            )
            for i, column in enumerate(meta["columns"])
        ]
        return cls(
            graph,
            specs,
            arrays["scaler_mean"],
            arrays["scaler_std"],
            preprocessor,
            config,
        )

    def make_scorer(self, artifact, incremental, stats) -> HeteroScorer:
        return HeteroScorer(artifact, self, incremental, stats)


class HeteroFormulation(Formulation):
    name = "hetero"
    fitted_cls = FittedHetero

    def fit(self, dataset, train_mask, config) -> FittedHetero:
        n_bins = int(config.get("n_bins", 5))
        include_bins = bool(config.get("include_numerical_bins", True))
        specs = value_column_specs(
            dataset, n_bins=n_bins, include_numerical_bins=include_bins
        )
        graph = hetero_from_dataset(
            dataset, n_bins=n_bins, include_numerical_bins=include_bins,
            specs=specs,
        )
        if dataset.num_numerical:
            # Mirror the construction-time instance featurization: zero-
            # impute, then standardize with full-table statistics.
            scaler = StandardScaler().fit(
                np.nan_to_num(dataset.numerical, nan=0.0)
            )
            mean, std = scaler.mean_, scaler.std_
        else:
            mean = std = np.zeros(0)
        preprocessor = TabularPreprocessor(mode="onehot").fit(dataset)
        return self.fitted_cls(graph, specs, mean, std, preprocessor, config)
