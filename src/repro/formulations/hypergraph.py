"""Hypergraph formulation: rows as hyperedges over value nodes (HCL/PET).

Phases 1+2: every (column, value) pair — categorical values directly,
numerical columns quantile-binned (binary 0/1 columns become membership
flags) — is a value node, and each table row is one hyperedge joining the
nodes its cells hit; :class:`~repro.models.HypergraphClassifier` runs HGNN
convolutions over the value nodes and classifies rows through the
node→hyperedge mean readout.

Serving — attach the query as a new hyperedge
---------------------------------------------
The same frozen-pool recipe the value-node formulations use: the artifact
freezes the incidence structure and the fitted
:class:`~repro.construction.intrinsic.HypergraphSpec` (global value-id
offsets, cardinalities, quantile edges), the scorer caches the value-node
states once, and each query row attaches as a **new hyperedge** over the
frozen value nodes — a directed node→query-hyperedge mean through the
same :class:`~repro.graph.homogeneous.EdgeView` substrate the conv layers
propagate on.  Attach edges are directed, so value-node states are
request-invariant and scoring is O(B·n_features·d), independent of the
training-table size.  Training rows rejoin exactly the value nodes they
occupied transductively, so their served logits reproduce the full-graph
forward to round-off; never-seen categorical codes get **no membership**
(the UNK fallback — same zero-message treatment a missing cell gets,
counted in ``stats["unk_values"]``).  ``incremental=False`` keeps a
full-graph oracle: rebuild the model on the incidence with query columns
appended (:meth:`~repro.graph.Hypergraph.with_hyperedges`) and read the
query rows off the ordinary spmm forward.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro import nn
from repro.construction.intrinsic import (
    HypergraphSpec,
    hypergraph_from_dataset,
    hypergraph_spec_from_dataset,
)
from repro.datasets.preprocessing import TabularPreprocessor
from repro.formulations.base import FittedFormulation, Formulation, RowScorer
from repro.graph.hypergraph import Hypergraph
from repro.models import HypergraphClassifier

_GRAPH = "graph::"
_ENC = "enc::"


class HypergraphScorer(RowScorer):
    """Query-as-new-hyperedge scoring over frozen value-node states."""

    def __init__(
        self,
        artifact,
        fitted: "FittedHypergraph",
        incremental: Optional[bool],
        stats: Dict[str, int],
    ) -> None:
        self._artifact = artifact
        self._fitted = fitted
        self._stats = stats
        stats.setdefault("unk_values", 0)
        stats.setdefault("attach_edges", 0)
        self.incremental = True if incremental is None else bool(incremental)
        if self.incremental:
            # One model on the frozen hypergraph, then the precompute step:
            # one node-state forward, cached for the scorer's lifetime.  The
            # oracle path rebuilds a model on the attached incidence per
            # request instead, so it has no use for either.
            self.model = artifact.build_model()
            self.node_states = self.model.pool_node_states()

    def score(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        with self.stage("encode"):
            member_ids = self._fitted.spec.encode(
                numerical, categorical, self._stats
            )
            self._stats["attach_edges"] += int(np.count_nonzero(member_ids >= 0))
        if self.incremental:
            with self.stage("attach"):
                view = self._fitted.graph.attach_view(member_ids)
            if self._compiled is not None:
                with self.stage("plan_execute"):
                    return self._compiled.run(view, member_ids.shape[0])
            with self.stage("propagate"):
                return self.model.propagate_queries(view, self.node_states)
        with self.stage("attach"):
            attached = self._fitted.graph.with_hyperedges(member_ids)
            model = self._artifact.build_model(graph=attached)
        with self.stage("propagate"):
            return model().data[self._fitted.graph.num_hyperedges:]

    def compile_plan(self):
        if not self.incremental:
            return None  # the rebuild-per-request oracle stays interpreted
        from repro.serving.compiled import compile_hypergraph

        return compile_hypergraph(self.model, self.node_states)


class FittedHypergraph(FittedFormulation):
    name = "hypergraph"

    def __init__(
        self,
        hypergraph: Hypergraph,
        spec: HypergraphSpec,
        preprocessor: Optional[TabularPreprocessor],
        config: Dict[str, object],
    ) -> None:
        super().__init__(config, preprocessor)
        self.graph = hypergraph
        self.spec = spec

    def build_model(self, rng, graph=None) -> nn.Module:
        return HypergraphClassifier(
            rng=rng,
            hidden_dim=int(self.config["hidden_dim"]),
            num_layers=int(self.config.get("num_layers", 2)),
            hypergraph=self.graph if graph is None else graph,
            out_dim=int(self.config["out_dim"]),
        )

    # -- serving --------------------------------------------------------
    @property
    def model_builder(self) -> str:
        return "hypergraph_gnn"

    @property
    def pool_rows(self) -> Optional[int]:
        return int(self.graph.num_hyperedges)

    def artifact_payload(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        graph_arrays, graph_meta = self.graph.state()
        spec_arrays, spec_meta = self.spec.state()
        arrays = {_GRAPH + name: value for name, value in graph_arrays.items()}
        arrays.update({_ENC + name: value for name, value in spec_arrays.items()})
        meta = {
            "pool_rows": self.pool_rows,
            "graph": graph_meta,
            "encoder": spec_meta,
        }
        return arrays, meta

    @classmethod
    def from_payload(cls, arrays, meta, config, preprocessor) -> "FittedHypergraph":
        graph = Hypergraph.from_state(
            {
                name[len(_GRAPH):]: value
                for name, value in arrays.items()
                if name.startswith(_GRAPH)
            },
            meta["graph"],
        )
        spec = HypergraphSpec.from_state(
            {
                name[len(_ENC):]: value
                for name, value in arrays.items()
                if name.startswith(_ENC)
            },
            meta["encoder"],
        )
        return cls(graph, spec, preprocessor, config)

    def make_scorer(self, artifact, incremental, stats) -> HypergraphScorer:
        return HypergraphScorer(artifact, self, incremental, stats)


class HypergraphFormulation(Formulation):
    name = "hypergraph"
    fitted_cls = FittedHypergraph

    def fit(self, dataset, train_mask, config) -> FittedHypergraph:
        n_bins = int(config.get("n_bins", 5))
        include_bins = bool(config.get("include_numerical_bins", True))
        spec = hypergraph_spec_from_dataset(
            dataset, n_bins=n_bins, include_numerical_bins=include_bins
        )
        hypergraph = hypergraph_from_dataset(
            dataset, n_bins=n_bins, include_numerical_bins=include_bins,
            spec=spec,
        )
        # Serve-time rows are validated (and missing cells normalized)
        # through the fitted preprocessor; the spec does the featurization.
        preprocessor = TabularPreprocessor(mode="onehot").fit(dataset)
        return self.fitted_cls(hypergraph, spec, preprocessor, config)
