"""Hypergraph formulation: rows as hyperedges over value nodes (HCL/PET).

The classifier scores a row through its *hyperedge* — the set of value
nodes the row joins — which is bound to the training incidence structure;
there is no frozen-pool attach semantics for an unseen hyperedge yet, so
this formulation trains and evaluates transductively but does not export
serving artifacts (``servable = False``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.construction.intrinsic import hypergraph_from_dataset
from repro.formulations.base import FittedFormulation, Formulation
from repro.models import HypergraphClassifier


class FittedHypergraph(FittedFormulation):
    name = "hypergraph"
    servable = False

    def __init__(self, hypergraph, config) -> None:
        super().__init__(config, preprocessor=None)
        self.graph = hypergraph

    def build_model(self, rng, graph=None) -> nn.Module:
        return HypergraphClassifier(
            rng=rng,
            hidden_dim=int(self.config["hidden_dim"]),
            hypergraph=self.graph if graph is None else graph,
            out_dim=int(self.config["out_dim"]),
        )


class HypergraphFormulation(Formulation):
    name = "hypergraph"
    fitted_cls = FittedHypergraph

    def fit(self, dataset, train_mask, config) -> FittedHypergraph:
        hypergraph = hypergraph_from_dataset(
            dataset, n_bins=int(config.get("n_bins", 5))
        )
        return self.fitted_cls(hypergraph, config)
