"""Feature-graph formulation: columns as nodes, row-wise scoring.

Phases 1+2 (Fi-GNN / T2G-Former style): tokenize *fields* — one
standardized column per original feature (numerical + ordinal codes) with
statistics frozen on the training split — and learn the field-pair graph
inside :class:`~repro.models.FeatureGraphClassifier`.  The model is
row-wise by construction, so serving needs no pool: rows are tokenized
with the frozen field statistics and scored directly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import nn
from repro.datasets.preprocessing import TabularPreprocessor
from repro.formulations.base import FittedFormulation, Formulation, RowScorer
from repro.models import FeatureGraphClassifier


class FeatureScorer(RowScorer):
    """Direct row-wise scoring; the model is built once and reused."""

    incremental = False

    def __init__(self, artifact, incremental: Optional[bool], stats) -> None:
        if incremental:
            raise ValueError(
                "feature-formulation artifacts have no pool graph to "
                "propagate from; use incremental=None/False"
            )
        self._artifact = artifact
        self.model = artifact.build_model()

    def score(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        with self.stage("encode"):
            features = self._artifact.preprocessor.transform(numerical, categorical)
        if self._compiled is not None:
            with self.stage("plan_execute"):
                return self._compiled.run(features)
        with self.stage("propagate"):
            self.model.eval()
            return self.model(features).data

    def compile_plan(self):
        from repro.serving.compiled import compile_feature

        return compile_feature(self.model)


class FittedFeature(FittedFormulation):
    name = "feature"

    def __init__(
        self,
        preprocessor: TabularPreprocessor,
        config: Dict[str, object],
        features: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(config, preprocessor)
        self._features = features  # transductive field matrix (training side)

    def build_model(self, rng, graph=None) -> nn.Module:
        in_dim = (
            self._features.shape[1]
            if self._features is not None
            else self.preprocessor.num_output_features
        )
        return FeatureGraphClassifier(
            in_dim,
            int(self.config["out_dim"]),
            rng,
            embed_dim=int(self.config["embed_dim"]),
            num_layers=int(self.config.get("num_layers", 2)),
        )

    def forward_fn(self, model: nn.Module) -> Callable[[], object]:
        if self._features is None:
            raise RuntimeError(
                "this fitted formulation was rehydrated from an artifact and "
                "carries no transductive feature matrix"
            )
        features = self._features
        return lambda: model(features)

    @property
    def features(self) -> Optional[np.ndarray]:
        return self._features

    @property
    def model_builder(self) -> str:
        return "feature_graph"

    def artifact_payload(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        return {}, {}

    @classmethod
    def from_payload(cls, arrays, meta, config, preprocessor) -> "FittedFeature":
        return cls(preprocessor, config)

    def make_scorer(self, artifact, incremental, stats) -> FeatureScorer:
        return FeatureScorer(artifact, incremental, stats)


class FeatureFormulation(Formulation):
    name = "feature"
    fitted_cls = FittedFeature

    def fit(self, dataset, train_mask, config) -> FittedFeature:
        # Feature-graph methods tokenize *fields* (one node per original
        # column, Fi-GNN/T2G-Former style), not one-hot indicator columns.
        preprocessor = TabularPreprocessor(mode="fields").fit(
            dataset, row_mask=train_mask
        )
        features = preprocessor.transform_dataset(dataset)
        return self.fitted_cls(preprocessor, config, features=features)
