"""Instance-graph formulation: rows as nodes, kNN construction, retrieval serving.

Phases 1+2 (LUNAR / GNN4MV style): one-hot featurize with statistics frozen
on the training split, build a symmetric kNN graph, train any Table 5
network on it.  Serving (PET style, survey Sec. 4.2.4): unseen rows link
into the frozen training pool via retrieval and are scored incrementally —
the pool's per-layer activations are cached once and only the query rows
propagate, O(B·k·d) per request for every network in the zoo.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro import nn
from repro.construction.retrieval import PoolIndex
from repro.construction.rules import knn_graph
from repro.datasets.preprocessing import TabularPreprocessor
from repro.datasets.tabular import TabularDataset
from repro.formulations.base import FittedFormulation, Formulation, RowScorer
from repro.gnn.networks import build_network
from repro.graph.homogeneous import Graph


class InstanceScorer(RowScorer):
    """Retrieval-attach scoring against the frozen training pool.

    ``incremental=None/True`` (default) caches the pool's per-layer
    activations at construction and propagates only the query rows per
    request; ``incremental=False`` keeps the full-graph rebuild purely as a
    correctness oracle.

    Retrieval rides a pluggable :class:`~repro.construction.PoolIndex`
    backend: ``index="exact"`` (default) is the exhaustive scan,
    ``index="ivf"`` the sub-linear inverted-file index (``nprobe`` probed
    cells per query).  Selection resolves engine kwarg > artifact config
    (``config["index"]`` / ``config["nprobe"]``) > exact.  The scorer
    reports the live backend (``self.index`` — "exact" when an exotic
    measure forced the fallback), the one-time build cost
    (``self.index_build_ms``) and, for approximate backends, a sampled
    recall-vs-exact gauge (``self.retrieval_recall``, refreshed every
    ``_RECALL_EVERY``-th attach on a few rows of the live batch).
    """

    #: refresh the sampled recall gauge on every Nth attach stage.
    _RECALL_EVERY = 64
    #: how many rows of the sampled batch are re-ranked exactly.
    _RECALL_ROWS = 4

    def __init__(
        self,
        artifact,
        fitted: "FittedInstance",
        incremental: Optional[bool],
        stats: Dict[str, int],
        index: Optional[str] = None,
        nprobe: Optional[int] = None,
    ) -> None:
        self._artifact = artifact
        self._graph = fitted.graph
        self._stats = stats
        stats.setdefault("attach_edges", 0)
        self._pool_x = np.asarray(fitted.graph.x, dtype=np.float64)
        self._pool_edges = fitted.graph.edge_index.astype(np.int64)
        self._k = min(int(fitted.config["k"]), self._pool_x.shape[0])
        if index is None:
            index = str(fitted.config.get("index", "exact"))
        if nprobe is None and fitted.config.get("nprobe") is not None:
            nprobe = int(fitted.config["nprobe"])
        if index == "exact":
            nprobe = None  # the exhaustive scan has no probe budget
        backend_opts = {} if nprobe is None else {"nprobe": int(nprobe)}
        started = time.perf_counter()
        self._pool_index = PoolIndex(
            self._pool_x,
            measure=str(fitted.config.get("metric", "euclidean")),
            backend=index,
            **backend_opts,
        )
        self.index_build_ms = (time.perf_counter() - started) * 1000.0
        self.index = self._pool_index.backend_name
        self.nprobe = int(nprobe) if nprobe is not None else None
        self.retrieval_recall: Optional[float] = None
        self._attach_tick = 0
        if self._pool_index.is_approximate:
            stats.setdefault("retrieval_probed_cells", 0)
            stats.setdefault("retrieval_candidates", 0)
            self.retrieval_recall = 1.0
        self.incremental = True if incremental is None else bool(incremental)
        if self.incremental:
            # One model for the scorer's lifetime, built on the pool graph,
            # then the precompute step: one pool-only forward, cached
            # forever.  The oracle path instead rebuilds a model on the
            # induced graph per request, so it has no use for either.
            self.model = artifact.build_model(self._graph)
            self.pool_hiddens = self.model.pool_hidden_states()

    def _forward_full(self, features: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
        """Correctness-oracle path: rebuild the (pool + queries) graph.

        Pays O(pool + E) per request — kept solely as the reference the
        incremental path is tested against (``incremental=False``).
        """
        batch = features.shape[0]
        n_pool = self._pool_x.shape[0]
        k = neighbors.shape[1]
        query_ids = n_pool + np.arange(batch, dtype=np.int64)
        attach = np.stack([neighbors.reshape(-1), np.repeat(query_ids, k)])
        edge_index = np.concatenate([self._pool_edges, attach], axis=1)
        graph = Graph(
            n_pool + batch,
            edge_index,
            x=np.concatenate([self._pool_x, features], axis=0),
        )
        model = self._artifact.build_model(graph)
        return model().data[n_pool:]

    def score(self, numerical: np.ndarray, categorical: np.ndarray) -> np.ndarray:
        with self.stage("encode"):
            features = self._artifact.preprocessor.transform(numerical, categorical)
        # Directed pool→query attachment edges: queries aggregate from
        # their retrieved neighbors but leave every pool node's degree
        # (and hence the GNN's normalization over the pool) untouched.
        # Predictions are therefore exactly independent of which other
        # queries share the batch — safe to micro-batch and to memoize.
        with self.stage("attach"):
            neighbors = self._pool_index.top_k(features, self._k)
            self._stats["attach_edges"] += int(neighbors.size)
            if self._pool_index.is_approximate:
                self._observe_retrieval(features, neighbors)
        if self._compiled is not None:
            with self.stage("plan_execute"):
                return self._compiled.run(features, neighbors)
        with self.stage("propagate"):
            if self.incremental:
                return self.model.propagate_queries(
                    features, neighbors, self.pool_hiddens
                )
            return self._forward_full(features, neighbors)

    def _observe_retrieval(
        self, features: np.ndarray, neighbors: np.ndarray
    ) -> None:
        """Sync approximate-retrieval counters and the sampled recall gauge.

        Runs under the engine lock (``score`` always does), so the stats
        writes are consistent with the engine's own counters.  The probe
        counters mirror the :class:`PoolIndex` cumulative stats; recall is
        re-measured on a few rows of every ``_RECALL_EVERY``-th batch by
        re-ranking them through the exact oracle — cheap enough to stay in
        the hot path, fresh enough to catch a drifting index.
        """
        probe_stats = self._pool_index.stats
        self._stats["retrieval_probed_cells"] = int(probe_stats["probed_cells"])
        self._stats["retrieval_candidates"] = int(probe_stats["candidates"])
        self._attach_tick += 1
        if (self._attach_tick - 1) % self._RECALL_EVERY:
            return
        rows = min(self._RECALL_ROWS, features.shape[0])
        exact = self._pool_index.exact_top_k(features[:rows], self._k)
        hits = sum(
            len(set(neighbors[i]) & set(exact[i])) for i in range(rows)
        )
        self.retrieval_recall = hits / float(rows * self._k)

    def compile_plan(self):
        if not self.incremental:
            return None  # the full-graph oracle stays interpreted
        from repro.serving.compiled import compile_instance

        return compile_instance(self.model, self._graph, self.pool_hiddens, self._k)


class FittedInstance(FittedFormulation):
    name = "instance"

    def __init__(
        self,
        graph: Graph,
        preprocessor: TabularPreprocessor,
        config: Dict[str, object],
    ) -> None:
        super().__init__(config, preprocessor)
        self.graph = graph

    def build_model(self, rng, graph: Optional[Graph] = None) -> nn.Module:
        return build_network(
            str(self.config["network"]),
            self.graph if graph is None else graph,
            int(self.config["hidden_dim"]),
            int(self.config["out_dim"]),
            rng,
            num_layers=int(self.config.get("num_layers", 2)),
        )

    @property
    def aux_features(self) -> Optional[np.ndarray]:
        return self.graph.x

    @property
    def features(self) -> Optional[np.ndarray]:
        return self.graph.x

    @property
    def model_builder(self) -> str:
        return str(self.config["network"])

    @property
    def pool_rows(self) -> Optional[int]:
        return int(self.graph.num_nodes)

    def artifact_payload(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        arrays = {
            "x": np.asarray(self.graph.x, dtype=np.float64),
            "edge_index": self.graph.edge_index.astype(np.int64),
        }
        return arrays, {"pool_rows": int(self.graph.num_nodes)}

    @classmethod
    def from_payload(cls, arrays, meta, config, preprocessor) -> "FittedInstance":
        x = np.asarray(arrays["x"], dtype=np.float64)
        graph = Graph(x.shape[0], arrays["edge_index"].astype(np.int64), x=x)
        return cls(graph, preprocessor, config)

    def make_scorer(
        self, artifact, incremental, stats, index=None, nprobe=None
    ) -> InstanceScorer:
        return InstanceScorer(
            artifact, self, incremental, stats, index=index, nprobe=nprobe
        )


class InstanceFormulation(Formulation):
    name = "instance"
    fitted_cls = FittedInstance

    def fit(self, dataset, train_mask, config) -> FittedInstance:
        # Standardization statistics are fit once on the training split and
        # frozen (train/serve parity): the same transform the serving
        # engine later applies to unseen rows produced these node features.
        preprocessor = TabularPreprocessor(mode="onehot").fit(
            dataset, row_mask=train_mask
        )
        x = preprocessor.transform_dataset(dataset)
        graph = knn_graph(
            x,
            k=int(config["k"]),
            metric=str(config.get("metric", "euclidean")),
            y=dataset.y,
        )
        return self.fitted_cls(graph, preprocessor, config)
