"""PET-lite [27]: retrieval graph + label-channel propagation.

Formulation (survey Tables 2 & 6, "Label Adjustment"): for each target row,
relevant rows are *retrieved* from the training pool and connected
(Sec. 4.2.4 retrieval-based construction); training labels then propagate
as an explicit input channel — each training row's one-hot label is
appended to its features (zeros for val/test rows), so the GNN can carry
auxiliary label information from retrieved neighbors to the target, PET's
defining mechanism.

``use_label_channel=False`` is the ablation arm measured in the Table 6
benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.construction.retrieval import retrieval_augmented_graph
from repro.gnn.networks import GCN
from repro.tensor import Tensor


class PET(nn.Module):
    """Retrieval-graph classifier with a propagated label channel."""

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        train_mask: np.ndarray,
        num_classes: int,
        rng: np.random.Generator,
        k: int = 10,
        hidden_dim: int = 32,
        use_label_channel: bool = True,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.train_mask = np.asarray(train_mask, dtype=bool)
        self.use_label_channel = use_label_channel
        self.num_classes = num_classes

        self.graph = retrieval_augmented_graph(x, self.train_mask, k=k, y=y)
        features = x
        if use_label_channel:
            label_channel = np.zeros((len(y), num_classes))
            train_rows = np.nonzero(self.train_mask)[0]
            label_channel[train_rows, y[train_rows]] = 1.0
            features = np.concatenate([x, label_channel], axis=1)
        self.graph.x = features
        self.network = GCN(self.graph, (hidden_dim,), num_classes, rng,
                           dropout=dropout)

    def forward(self) -> Tensor:
        return self.network()

    def embed(self) -> Tensor:
        return self.network.embed()

    def loss(self, y: np.ndarray, mask: Optional[np.ndarray] = None,
             label_dropout: float = 0.5,
             rng: Optional[np.random.Generator] = None) -> Tensor:
        """Supervised CE with *label dropout* on the label channel.

        PET must not learn to copy a row's own label channel (train rows
        carry their own labels as input).  Randomly zeroing a fraction of
        the channel during training forces reliance on *retrieved
        neighbors'* labels instead — the mechanism that generalizes to test
        rows, whose own channel is all-zero.
        """
        mask = self.train_mask if mask is None else mask
        if self.use_label_channel and label_dropout > 0:
            rng = rng or np.random.default_rng(0)
            features = self.graph.x.copy()
            drop = rng.random(len(features)) < label_dropout
            features[drop, -self.num_classes:] = 0.0
            logits = self.network(Tensor(features))
        else:
            logits = self.network()
        return nn.cross_entropy(logits, y, mask=mask)
