"""Feature-graph row classifier (T2G-Former [152] / Table2Graph [173] lite).

Formulation (survey Table 2): homogeneous *feature graph* with a *learned*
structure.  Each row tokenizes its features (value × learned field vector +
field bias — the feature-tokenizer of [46]), a shared learnable field-pair
graph (direct parametrization, softmax-normalized) propagates between the
field tokens, and an attention readout produces the row representation.

The learned adjacency is retrievable for inspection
(:meth:`interaction_graph`), mirroring T2G-Former's interpretable
"Graph Estimator".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.gnn.readout import AttentionReadout
from repro.tensor import Tensor, ops
from repro.tensor import init as tinit


class FeatureGraphClassifier(nn.Module):
    """Tokenized features + learned field graph + attention readout."""

    def __init__(
        self,
        num_features: int,
        out_dim: int,
        rng: np.random.Generator,
        embed_dim: int = 16,
        num_layers: int = 2,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if num_features < 2:
            raise ValueError("a feature graph needs at least two features")
        self.num_features = num_features
        self.embed_dim = embed_dim
        # Feature tokenizer: token_j = value_j * w_j + b_j.
        self.token_weight = nn.Parameter(tinit.normal((num_features, embed_dim), 0.3, rng))
        self.token_bias = nn.Parameter(tinit.normal((num_features, embed_dim), 0.1, rng))
        self.edge_logits = nn.Parameter(rng.normal(0.0, 0.1, size=(num_features, num_features)))
        self.propagations = nn.ModuleList(
            [nn.Linear(embed_dim, embed_dim, rng) for _ in range(num_layers)]
        )
        self.readout = AttentionReadout(embed_dim, rng)
        self.head = nn.MLP(embed_dim, (embed_dim,), out_dim, rng, dropout=dropout)

    def tokens(self, x: np.ndarray) -> Tensor:
        """Per-row field tokens, shape (rows, features, embed_dim)."""
        x = np.nan_to_num(np.asarray(x, dtype=np.float64), nan=0.0)
        if x.shape[1] != self.num_features:
            raise ValueError(f"expected {self.num_features} columns, got {x.shape[1]}")
        values = Tensor(x.reshape(x.shape[0], self.num_features, 1))
        scaled = ops.mul(values, self.token_weight)  # broadcast (F, D)
        return ops.add(scaled, self.token_bias)

    def interaction_graph(self) -> Tensor:
        """Row-normalized learned field-pair adjacency (self excluded)."""
        mask = Tensor(np.eye(self.num_features) * -1e9)
        return ops.softmax(ops.add(self.edge_logits, mask), axis=1)

    def forward(self, x: np.ndarray) -> Tensor:
        h = self.tokens(x)
        rows = h.shape[0]
        adjacency = self.interaction_graph()
        for linear in self.propagations:
            flat = linear(h.reshape(rows * self.num_features, self.embed_dim))
            transformed = flat.reshape(rows, self.num_features, self.embed_dim)
            messages = ops.matmul(adjacency, transformed)
            h = ops.relu(ops.add(h, messages))  # residual update
        pooled = self.readout(h)
        return self.head(pooled)

    def embed(self, x: np.ndarray) -> Tensor:
        h = self.tokens(x)
        rows = h.shape[0]
        adjacency = self.interaction_graph()
        for linear in self.propagations:
            flat = linear(h.reshape(rows * self.num_features, self.embed_dim))
            transformed = flat.reshape(rows, self.num_features, self.embed_dim)
            h = ops.relu(ops.add(h, ops.matmul(adjacency, transformed)))
        return self.readout(h)
