"""IDGL [16]: iterative deep graph learning.

Formulation (survey Tables 2 & 4): homogeneous instance graph learned by a
*metric-based* (weighted-cosine) learner; graph learning and node embedding
refine each other iteratively — round t's adjacency is computed from round
t-1's embeddings, blended with the feature-based adjacency.  Graph
regularizers (smoothness + connectivity + sparsity, survey Table 7) keep
the learned structure well behaved.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.construction.learned import MetricGraphLearner, dense_gcn_norm
from repro.gnn.dense import DenseGCNConv
from repro.tensor import Tensor, ops
from repro.training.tasks import degree_regularizer, sparsity_regularizer


class IDGL(nn.Module):
    """Iterative metric graph learning with a dense two-layer GCN."""

    def __init__(
        self,
        x: np.ndarray,
        out_dim: int,
        rng: np.random.Generator,
        hidden_dim: int = 32,
        num_iterations: int = 2,
        k: Optional[int] = 20,
        blend: float = 0.5,
        smoothness_weight: float = 0.1,
        degree_weight: float = 0.05,
        sparsity_weight: float = 0.01,
    ) -> None:
        super().__init__()
        if num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        self.x = np.asarray(x, dtype=np.float64)
        d = self.x.shape[1]
        self.num_iterations = num_iterations
        self.blend = blend
        self.smoothness_weight = smoothness_weight
        self.degree_weight = degree_weight
        self.sparsity_weight = sparsity_weight
        self.feature_learner = MetricGraphLearner(d, rng, num_heads=4, k=k)
        self.embedding_learner = MetricGraphLearner(hidden_dim, rng, num_heads=4, k=k)
        self.conv1 = DenseGCNConv(d, hidden_dim, rng)
        self.conv2 = DenseGCNConv(hidden_dim, out_dim, rng)
        self._last_adjacency: Optional[Tensor] = None

    def forward(self) -> Tensor:
        features = Tensor(self.x)
        adjacency = self.feature_learner(features)
        hidden = ops.relu(self.conv1(features, adjacency))
        for _ in range(self.num_iterations - 1):
            refined = self.embedding_learner(hidden)
            adjacency = ops.add(
                ops.mul(Tensor(self.blend), adjacency),
                ops.mul(Tensor(1.0 - self.blend), refined),
            )
            hidden = ops.relu(self.conv1(features, adjacency))
        self._last_adjacency = adjacency
        return self.conv2(hidden, adjacency)

    def embed(self) -> Tensor:
        features = Tensor(self.x)
        adjacency = self.feature_learner(features)
        return ops.relu(self.conv1(features, adjacency))

    def loss(self, y: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        """Supervised CE + the IDGL graph regularization bundle."""
        logits = self.forward()
        total = nn.cross_entropy(logits, y, mask=mask)
        adjacency = self._last_adjacency
        if self.smoothness_weight > 0:
            # Dirichlet smoothness on the *dense* learned graph:
            # tr(X^T L X) = sum_ij A_ij ||x_i - x_j||^2 / 2, computed densely.
            features = Tensor(self.x)
            sq_norms = ops.sum(ops.mul(features, features), axis=1, keepdims=True)
            gram = ops.matmul(features, ops.transpose(features))
            pair_sq = ops.sub(ops.add(sq_norms, ops.transpose(sq_norms)),
                              ops.mul(Tensor(2.0), gram))
            smooth = ops.mean(ops.mul(adjacency, pair_sq))
            total = ops.add(total, ops.mul(Tensor(self.smoothness_weight), smooth))
        if self.degree_weight > 0:
            total = ops.add(
                total, ops.mul(Tensor(self.degree_weight), degree_regularizer(adjacency))
            )
        if self.sparsity_weight > 0:
            total = ops.add(
                total,
                ops.mul(Tensor(self.sparsity_weight), sparsity_regularizer(adjacency)),
            )
        return total
