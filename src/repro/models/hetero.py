"""GCT/HSGNN/GraphFC-lite: heterogeneous classifier over value-typed nodes.

Thin model wrapper: build the general heterogeneous graph intrinsically
(instances + one node type per categorical column) and classify instance
nodes with :class:`~repro.gnn.HeteroGNN`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.construction.intrinsic import hetero_from_dataset
from repro.datasets.tabular import TabularDataset
from repro.gnn.hetero import HeteroGNN
from repro.tensor import Tensor


class HeteroTabClassifier(nn.Module):
    """Instance-node classifier on the value-typed heterogeneous graph."""

    def __init__(
        self,
        dataset: Optional[TabularDataset] = None,
        rng: Optional[np.random.Generator] = None,
        hidden_dim: int = 32,
        num_layers: int = 2,
        include_numerical_bins: bool = False,
        dropout: float = 0.0,
        graph=None,
        out_dim: Optional[int] = None,
    ) -> None:
        """Build from a dataset (intrinsic construction) or a prebuilt graph.

        Passing ``graph``/``out_dim`` skips the dataset entirely — the path
        serving artifacts use to rebuild the architecture from a
        deserialized :class:`~repro.graph.HeteroGraph`.
        """
        super().__init__()
        if graph is None and dataset is None:
            raise ValueError("provide either a dataset or a prebuilt graph")
        if out_dim is None:
            if dataset is None:
                raise ValueError("out_dim is required with a prebuilt graph")
            out_dim = dataset.num_classes if dataset.task != "regression" else 1
        if graph is None:
            graph = hetero_from_dataset(
                dataset, include_numerical_bins=include_numerical_bins
            )
        self.graph = graph
        self.network = HeteroGNN(
            self.graph, hidden_dim, out_dim, rng,
            num_layers=num_layers, dropout=dropout,
        )

    def forward(self) -> Tensor:
        return self.network()

    def embed(self) -> Tensor:
        return self.network.embed()

    def loss(self, y: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        return nn.cross_entropy(self.forward(), y, mask=mask)
