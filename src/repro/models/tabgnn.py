"""TabGNN [51]: multiplex graph neural network for tabular prediction.

Formulation (survey Table 2): heterogeneous-multiplex instance graph, one
layer per categorical column via the same-feature-value rule, raw features
as initial node vectors, end-to-end training.

Per relation, a GCN encodes the instances; relation embeddings are fused by
a learned attention over relations (``fusion="attention"``) or a plain mean
(``fusion="mean"`` — the ablation arm of benchmark Table 6), concatenated
with the raw-feature projection, and classified by an MLP head.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.gnn.conv import GCNConv
from repro.graph.multiplex import MultiplexGraph
from repro.tensor import Tensor, ops

FUSIONS = ("attention", "mean")


class TabGNN(nn.Module):
    """Multiplex-graph classifier with per-relation encoders and fusion."""

    def __init__(
        self,
        graph: MultiplexGraph,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        num_layers: int = 2,
        fusion: str = "attention",
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if fusion not in FUSIONS:
            raise ValueError(f"fusion must be one of {FUSIONS}")
        if graph.x is None:
            raise ValueError("multiplex graph must carry node features")
        if graph.num_layers == 0:
            raise ValueError("multiplex graph has no relation layers")
        self.graph = graph
        self.fusion = fusion
        self.x = Tensor(graph.x)
        in_dim = graph.x.shape[1]

        self._adjacencies = [layer.gcn_adjacency() for layer in graph.layers()]
        self.relation_encoders = nn.ModuleList()
        for _ in range(graph.num_layers):
            convs = nn.ModuleList()
            prev = in_dim
            for _ in range(num_layers):
                convs.append(GCNConv(prev, hidden_dim, rng))
                prev = hidden_dim
            self.relation_encoders.append(convs)
        self.attention_vector = nn.Parameter(rng.normal(0.0, 0.1, size=hidden_dim))
        self.self_proj = nn.Linear(in_dim, hidden_dim, rng)
        self.head = nn.MLP(2 * hidden_dim, (hidden_dim,), out_dim, rng, dropout=dropout)
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None

    def relation_embeddings(self) -> list[Tensor]:
        """One (n, hidden) embedding per relation layer."""
        outputs = []
        for convs, adj in zip(self.relation_encoders, self._adjacencies):
            h = self.x
            for i, conv in enumerate(convs):
                h = conv(h, adj)
                if i < len(convs) - 1:
                    h = ops.relu(h)
            outputs.append(h)
        return outputs

    def relation_attention(self, embeddings: list[Tensor]) -> Tensor:
        """Per-instance softmax weights over relations, shape (n, R)."""
        scores = [
            ops.sum(ops.mul(ops.tanh(h), self.attention_vector), axis=1, keepdims=True)
            for h in embeddings
        ]
        return ops.softmax(ops.concat(scores, axis=1), axis=1)

    def embed(self) -> Tensor:
        embeddings = self.relation_embeddings()
        if self.fusion == "attention":
            alpha = self.relation_attention(embeddings)  # (n, R)
            fused = None
            for r, h in enumerate(embeddings):
                weighted = ops.mul(h, alpha[:, r : r + 1])
                fused = weighted if fused is None else ops.add(fused, weighted)
        else:
            fused = embeddings[0]
            for h in embeddings[1:]:
                fused = ops.add(fused, h)
            fused = ops.mul(Tensor(1.0 / len(embeddings)), fused)
        self_h = ops.relu(self.self_proj(self.x))
        combined = ops.concat([fused, self_h], axis=1)
        if self.dropout is not None:
            combined = self.dropout(combined)
        return combined

    def forward(self) -> Tensor:
        return self.head(self.embed())
