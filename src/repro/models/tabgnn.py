"""TabGNN [51]: multiplex graph neural network for tabular prediction.

Formulation (survey Table 2): heterogeneous-multiplex instance graph, one
layer per categorical column via the same-feature-value rule, raw features
as initial node vectors, end-to-end training.

Per relation, a GCN encodes the instances; relation embeddings are fused by
a learned attention over relations (``fusion="attention"``) or a plain mean
(``fusion="mean"`` — the ablation arm of benchmark Table 6), concatenated
with the raw-feature projection, and classified by an MLP head.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.gnn.conv import GCNConv
from repro.graph.multiplex import MultiplexGraph
from repro.tensor import Tensor, ops

FUSIONS = ("attention", "mean")


class TabGNN(nn.Module):
    """Multiplex-graph classifier with per-relation encoders and fusion."""

    def __init__(
        self,
        graph: MultiplexGraph,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        num_layers: int = 2,
        fusion: str = "attention",
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if fusion not in FUSIONS:
            raise ValueError(f"fusion must be one of {FUSIONS}")
        if graph.x is None:
            raise ValueError("multiplex graph must carry node features")
        if graph.num_layers == 0:
            raise ValueError("multiplex graph has no relation layers")
        self.graph = graph
        self.fusion = fusion
        self.x = Tensor(graph.x)
        in_dim = graph.x.shape[1]

        self._adjacencies = [layer.gcn_adjacency() for layer in graph.layers()]
        self.relation_encoders = nn.ModuleList()
        for _ in range(graph.num_layers):
            convs = nn.ModuleList()
            prev = in_dim
            for _ in range(num_layers):
                convs.append(GCNConv(prev, hidden_dim, rng))
                prev = hidden_dim
            self.relation_encoders.append(convs)
        self.attention_vector = nn.Parameter(rng.normal(0.0, 0.1, size=hidden_dim))
        self.self_proj = nn.Linear(in_dim, hidden_dim, rng)
        self.head = nn.MLP(2 * hidden_dim, (hidden_dim,), out_dim, rng, dropout=dropout)
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None

    def relation_embeddings(self) -> list[Tensor]:
        """One (n, hidden) embedding per relation layer."""
        outputs = []
        for convs, adj in zip(self.relation_encoders, self._adjacencies):
            h = self.x
            for i, conv in enumerate(convs):
                h = conv(h, adj)
                if i < len(convs) - 1:
                    h = ops.relu(h)
            outputs.append(h)
        return outputs

    def relation_attention(self, embeddings: list[Tensor]) -> Tensor:
        """Per-instance softmax weights over relations, shape (n, R)."""
        scores = [
            ops.sum(ops.mul(ops.tanh(h), self.attention_vector), axis=1, keepdims=True)
            for h in embeddings
        ]
        return ops.softmax(ops.concat(scores, axis=1), axis=1)

    def _fuse(self, embeddings: list[Tensor], x: Tensor) -> Tensor:
        """Fusion + raw-feature projection shared by ``embed`` and the
        serving-time query path: attention (or mean) over relation
        embeddings, concatenated with the projected raw features."""
        if self.fusion == "attention":
            alpha = self.relation_attention(embeddings)  # (n, R)
            fused = None
            for r, h in enumerate(embeddings):
                weighted = ops.mul(h, alpha[:, r : r + 1])
                fused = weighted if fused is None else ops.add(fused, weighted)
        else:
            fused = embeddings[0]
            for h in embeddings[1:]:
                fused = ops.add(fused, h)
            fused = ops.mul(Tensor(1.0 / len(embeddings)), fused)
        self_h = ops.relu(self.self_proj(x))
        return ops.concat([fused, self_h], axis=1)

    def embed(self) -> Tensor:
        combined = self._fuse(self.relation_embeddings(), self.x)
        if self.dropout is not None:
            combined = self.dropout(combined)
        return combined

    def forward(self) -> Tensor:
        return self.head(self.embed())

    # -- incremental query scoring (serving) ---------------------------
    def pool_message_states(self) -> list[list[np.ndarray]]:
        """Per relation, per conv layer: the pool's *transformed* states.

        ``states[r][i]`` is ``linear_i(h_i)`` over the frozen pool — the
        per-node messages entering relation ``r``'s i-th GCN aggregation.
        A query row attached to a same-value group aggregates exactly these
        rows, so the whole pool side of serving is computed once here.
        """
        states: list[list[np.ndarray]] = []
        for convs, adj in zip(self.relation_encoders, self._adjacencies):
            h = self.x
            entries: list[np.ndarray] = []
            for i, conv in enumerate(convs):
                z = conv.linear(h)
                entries.append(z.data)
                h = ops.spmm(adj, z)
                if i < len(convs) - 1:
                    h = ops.relu(h)
            states.append(entries)
        return states

    def propagate_queries(
        self,
        features: np.ndarray,
        member_ops: list,
        pool_messages: list[list[np.ndarray]],
    ) -> np.ndarray:
        """Logits ``(B, out_dim)`` for query rows attached by value lookup.

        ``member_ops[r]`` is a ``(B, n_pool)`` sparse row-mean operator:
        row ``q`` holds ``1/|g|`` over the pool members sharing query
        ``q``'s value in relation ``r`` (an all-zero row when the value is
        unseen or missing).  Queries with a group aggregate the cached pool
        messages of that group; queries without one fall back to their own
        transformed state — exactly the self-loop a node with no same-value
        partner has in the training graph.  For uncapped value groups this
        reproduces a training row's transductive logits to round-off,
        because GCN over a value clique is precisely the group mean.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.x.shape[1]:
            raise ValueError(
                f"features must be (B, {self.x.shape[1]}), got {features.shape}"
            )
        if len(member_ops) != len(self.relation_encoders):
            raise ValueError(
                f"expected {len(self.relation_encoders)} relation operators, "
                f"got {len(member_ops)}"
            )
        embeddings: list[Tensor] = []
        for convs, op, messages in zip(
            self.relation_encoders, member_ops, pool_messages
        ):
            has_group = np.asarray(op.sum(axis=1)).reshape(-1) > 0.5
            h = features
            for i, conv in enumerate(convs):
                own = conv.linear(Tensor(h)).data
                combined = np.where(has_group[:, None], op @ messages[i], own)
                h = np.maximum(combined, 0.0) if i < len(convs) - 1 else combined
            embeddings.append(Tensor(h))
        return self.head(self._fuse(embeddings, Tensor(features))).data
