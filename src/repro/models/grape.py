"""GRAPE [157]: bipartite instance-feature message passing.

Formulation (survey Table 2): heterogeneous-bipartite graph, intrinsic
edges carrying cell values, constant instance init / one-hot feature init;
imputation = edge-value regression, label prediction = node classification.

The encoder alternates value-aware aggregation:

* feature→instance: each instance averages ``W [h_feat || value]`` over its
  observed cells;
* instance→feature: symmetric update for feature nodes.

Both heads share the encoder, so the survey's "imputation jointly trained
with prediction" integration is the default.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import nn
from repro.graph.bipartite import BipartiteGraph
from repro.tensor import Tensor, ops


class _BipartiteLayer(nn.Module):
    """One round of value-aware instance↔feature message passing."""

    def __init__(self, inst_dim: int, feat_dim: int, out_dim: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.to_instance = nn.Linear(feat_dim + 1, out_dim, rng)
        self.to_feature = nn.Linear(inst_dim + 1, out_dim, rng)
        self.self_instance = nn.Linear(inst_dim, out_dim, rng)
        self.self_feature = nn.Linear(feat_dim, out_dim, rng)

    def forward(
        self,
        h_inst: Tensor,
        h_feat: Tensor,
        graph: BipartiteGraph,
    ) -> Tuple[Tensor, Tensor]:
        values = Tensor(graph.edge_value.reshape(-1, 1))
        # feature -> instance
        feat_on_edges = ops.gather_rows(h_feat, graph.edge_feature)
        msg_to_inst = self.to_instance(ops.concat([feat_on_edges, values], axis=1))
        agg_inst = ops.segment_mean(msg_to_inst, graph.edge_instance, graph.num_instances)
        new_inst = ops.relu(ops.add(self.self_instance(h_inst), agg_inst))
        # instance -> feature
        inst_on_edges = ops.gather_rows(h_inst, graph.edge_instance)
        msg_to_feat = self.to_feature(ops.concat([inst_on_edges, values], axis=1))
        agg_feat = ops.segment_mean(msg_to_feat, graph.edge_feature, graph.num_features)
        new_feat = ops.relu(ops.add(self.self_feature(h_feat), agg_feat))
        return new_inst, new_feat


class GRAPE(nn.Module):
    """Bipartite GNN with an edge-imputation head and a label head."""

    def __init__(
        self,
        graph: BipartiteGraph,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        num_layers: int = 2,
        dropout: float = 0.0,
        instance_init: str = "ones",
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if instance_init not in ("ones", "features"):
            raise ValueError("instance_init must be 'ones' or 'features'")
        self.graph = graph
        # GRAPE's original inits: instances = constant 1, features = one-hot
        # identity (through a learned embedding).  ``instance_init="features"``
        # is the IGRM-style variant that starts instances from their
        # zero-filled observed rows — markedly better on strongly clustered
        # data (see benchmarks/bench_sec54_imputation.py).
        if instance_init == "ones":
            self._inst_init = np.ones((graph.num_instances, 1))
        else:
            self._inst_init = np.nan_to_num(graph.observed_matrix(), nan=0.0)
        inst_dim = self._inst_init.shape[1]
        self.feature_embedding = nn.Embedding(graph.num_features, hidden_dim, rng)
        layers = [_BipartiteLayer(inst_dim, hidden_dim, hidden_dim, rng)]
        for _ in range(num_layers - 1):
            layers.append(_BipartiteLayer(hidden_dim, hidden_dim, hidden_dim, rng))
        self.layers = nn.ModuleList(layers)
        self.edge_head = nn.MLP(2 * hidden_dim, (hidden_dim,), 1, rng)
        self.node_head = nn.MLP(hidden_dim, (hidden_dim,), out_dim, rng, dropout=dropout)

    def encode(self, graph: Optional[BipartiteGraph] = None) -> Tuple[Tensor, Tensor]:
        graph = graph or self.graph
        h_inst = Tensor(self._inst_init)
        h_feat = self.feature_embedding(np.arange(graph.num_features))
        for layer in self.layers:
            h_inst, h_feat = layer(h_inst, h_feat, graph)
        return h_inst, h_feat

    def predict_edges(
        self,
        instances: np.ndarray,
        features: np.ndarray,
        graph: Optional[BipartiteGraph] = None,
    ) -> Tensor:
        """Predicted cell values for arbitrary (instance, feature) pairs."""
        h_inst, h_feat = self.encode(graph)
        hi = ops.gather_rows(h_inst, np.asarray(instances, dtype=np.int64))
        hf = ops.gather_rows(h_feat, np.asarray(features, dtype=np.int64))
        return self.edge_head(ops.concat([hi, hf], axis=1)).reshape(-1)

    def forward(self) -> Tensor:
        """Instance-label logits."""
        h_inst, _ = self.encode()
        return self.node_head(h_inst)

    def embed(self) -> Tensor:
        h_inst, _ = self.encode()
        return h_inst

    # ------------------------------------------------------------------
    # losses
    # ------------------------------------------------------------------
    def imputation_loss(
        self,
        drop_rate: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> Tensor:
        """Edge-dropout reconstruction: hide a random ``drop_rate`` of the
        observed edges from message passing and predict their values from
        the remaining structure.

        Training on *visible* edges would leak the target (an edge's value
        participates in its own endpoint's aggregation), so GRAPE masks the
        targets out of the encoder's view — this is what makes the learned
        imputer generalize to genuinely missing cells.
        """
        if not 0.0 < drop_rate < 1.0:
            raise ValueError("drop_rate must be in (0, 1)")
        rng = rng or np.random.default_rng(0)
        num_edges = self.graph.num_edges
        hide = rng.random(num_edges) < drop_rate
        if not hide.any() or hide.all():
            hide = np.zeros(num_edges, dtype=bool)
            hide[rng.integers(0, num_edges)] = True
        visible = BipartiteGraph(
            self.graph.num_instances,
            self.graph.num_features,
            self.graph.edge_instance[~hide],
            self.graph.edge_feature[~hide],
            self.graph.edge_value[~hide],
        )
        pred = self.predict_edges(
            self.graph.edge_instance[hide], self.graph.edge_feature[hide], graph=visible
        )
        return nn.mse_loss(pred, self.graph.edge_value[hide])

    def label_loss(self, y: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        return nn.cross_entropy(self.forward(), y, mask=mask)

    def impute_table(self) -> np.ndarray:
        """Dense table with missing cells replaced by edge predictions."""
        table = self.graph.observed_matrix()
        missing = np.isnan(table)
        rows, cols = np.nonzero(missing)
        if rows.size:
            preds = self.predict_edges(rows, cols).data
            table[rows, cols] = preds
        return table
