"""SLAPS [33]: self-supervision improves structure learning.

Formulation (survey Tables 2, 4, 7): homogeneous instance graph *learned*
by a neural generator (kNN-initialized), dense GCN classifier, and a
denoising-autoencoder self-supervision branch that trains the generator on
all instances — including unlabelled ones — mitigating the supervision
starvation of structure learning.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.construction.learned import NeuralGraphLearner
from repro.construction.rules import knn_edges
from repro.gnn.dense import DenseGNN
from repro.tensor import Tensor, ops


class SLAPS(nn.Module):
    """Neural graph learner + dense GCN + DAE auxiliary."""

    def __init__(
        self,
        x: np.ndarray,
        out_dim: int,
        rng: np.random.Generator,
        hidden_dim: int = 32,
        k: int = 15,
        dae_mask_rate: float = 0.2,
        dae_weight: float = 1.0,
        knn_blend: float = 0.3,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.x = np.asarray(x, dtype=np.float64)
        n, d = self.x.shape
        if not 1 <= k < n:
            raise ValueError("k must be in [1, n)")
        self.dae_weight = dae_weight
        self._rng = rng

        # kNN prior adjacency for the generator initialization.
        edge_index = knn_edges(self.x, k)
        prior = np.zeros((n, n))
        prior[edge_index[1], edge_index[0]] = 1.0
        prior = np.maximum(prior, prior.T)
        self.learner = NeuralGraphLearner(
            d, hidden_dim, rng, k=k, init_adjacency=prior, blend=knn_blend
        )
        self.gnn = DenseGNN(d, (hidden_dim,), out_dim, rng, dropout=dropout)
        self.decoder = nn.Linear(hidden_dim, d, rng)
        self._dae_mask_rate = dae_mask_rate
        self._hidden_dim = hidden_dim

    def adjacency(self) -> Tensor:
        return self.learner(Tensor(self.x))

    def forward(self) -> Tensor:
        """Class logits for every instance."""
        adj = self.adjacency()
        return self.gnn(Tensor(self.x), adj)

    def embed(self) -> Tensor:
        adj = self.adjacency()
        h = Tensor(self.x)
        for conv in self.gnn.convs[:-1]:
            h = ops.relu(conv(h, adj))
        return h

    def dae_loss(self) -> Tensor:
        """Denoising branch: reconstruct masked feature cells through the
        learned graph (one dense GCN hop + linear decoder)."""
        corrupt = self._rng.random(self.x.shape) < self._dae_mask_rate
        corrupted = Tensor(np.where(corrupt, 0.0, self.x))
        adj = self.learner(corrupted)
        h = corrupted
        h = ops.relu(self.gnn.convs[0](h, adj))
        decoded = self.decoder(h)
        diff = ops.sub(decoded, Tensor(self.x))
        masked = ops.mul(diff, Tensor(corrupt.astype(np.float64)))
        return ops.div(
            ops.sum(ops.mul(masked, masked)), Tensor(float(max(1, corrupt.sum())))
        )

    def loss(self, y: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        """Joint objective: supervised CE + weighted DAE self-supervision."""
        supervised = nn.cross_entropy(self.forward(), y, mask=mask)
        if self.dae_weight <= 0:
            return supervised
        return ops.add(supervised, ops.mul(Tensor(self.dae_weight), self.dae_loss()))
