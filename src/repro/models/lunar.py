"""LUNAR [44]: learnable unified neighborhood-based anomaly ranking.

Formulation (survey Tables 2 & 6): homogeneous kNN instance graph where
*messages are the neighbor distances themselves* — the "Distance
Preservation" specialized design.  A shared network maps each node's vector
of k nearest-neighbor distances to an anomaly score; training uses negative
sampling (synthetic anomalies labelled 1, data labelled 0), which
generalizes LOF/kNN detectors into a learnable GNN.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.construction.rules import pairwise_distances
from repro.tensor import Tensor


def _knn_distance_features(
    queries: np.ndarray, reference: np.ndarray, k: int, exclude_self: bool
) -> np.ndarray:
    """Sorted distances from each query row to its k nearest reference rows."""
    stacked = np.concatenate([queries, reference], axis=0)
    dist = pairwise_distances(stacked, "euclidean")[: len(queries), len(queries):]
    if exclude_self:
        # Queries are rows of `reference`: drop the zero self-distance.
        np.fill_diagonal(dist, np.inf)
    part = np.partition(dist, kth=k - 1, axis=1)[:, :k]
    return np.sort(part, axis=1)


class LUNAR(nn.Module):
    """kNN-distance message network with negative-sampling training."""

    def __init__(
        self,
        k: int = 10,
        hidden_dim: int = 32,
        seed: int = 0,
        negative_rate: float = 1.0,
        noise_scale: float = 0.2,
        epochs: int = 150,
        lr: float = 0.01,
    ) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.negative_rate = negative_rate
        self.noise_scale = noise_scale
        self.epochs = epochs
        self.lr = lr
        self._rng = np.random.default_rng(seed)
        self.scorer = nn.MLP(k, (hidden_dim, hidden_dim), 1, np.random.default_rng(seed))
        self._train_x: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _negative_samples(self, x: np.ndarray) -> np.ndarray:
        """Synthetic anomalies: uniform box noise + jittered data points."""
        n = max(1, int(len(x) * self.negative_rate))
        lo, hi = x.min(axis=0), x.max(axis=0)
        span = np.maximum(hi - lo, 1e-6)
        uniform = self._rng.uniform(lo - 0.1 * span, hi + 0.1 * span, size=(n // 2 + 1, x.shape[1]))
        jitter_idx = self._rng.integers(0, len(x), size=n - len(uniform) + 1)
        jitter = x[jitter_idx] + self._rng.normal(
            0.0, self.noise_scale * span, size=(len(jitter_idx), x.shape[1])
        )
        return np.concatenate([uniform, jitter], axis=0)[:n]

    def fit(self, x: np.ndarray) -> "LUNAR":
        """Train the scorer on normal data versus synthetic anomalies."""
        x = np.asarray(x, dtype=np.float64)
        if len(x) <= self.k:
            raise ValueError("need more rows than k")
        self._train_x = x
        positives = _knn_distance_features(x, x, self.k, exclude_self=True)
        optimizer = nn.Adam(self.scorer.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            negatives_x = self._negative_samples(x)
            negatives = _knn_distance_features(negatives_x, x, self.k, exclude_self=False)
            feats = np.concatenate([positives, negatives], axis=0)
            labels = np.concatenate([np.zeros(len(positives)), np.ones(len(negatives))])
            logits = self.scorer(Tensor(feats)).reshape(-1)
            loss = nn.binary_cross_entropy_with_logits(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        self.scorer.eval()
        return self

    def score(self, x: Optional[np.ndarray] = None) -> np.ndarray:
        """Anomaly scores (higher = more anomalous)."""
        if self._train_x is None:
            raise RuntimeError("fit must be called before score")
        if x is None:
            feats = _knn_distance_features(self._train_x, self._train_x, self.k, True)
        else:
            feats = _knn_distance_features(
                np.asarray(x, dtype=np.float64), self._train_x, self.k, False
            )
        logits = self.scorer(Tensor(feats)).data.reshape(-1)
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))

    def baseline_knn_score(self, x: Optional[np.ndarray] = None) -> np.ndarray:
        """The classical (non-learned) mean-kNN-distance detector, for ablation."""
        if self._train_x is None:
            raise RuntimeError("fit must be called before score")
        if x is None:
            feats = _knn_distance_features(self._train_x, self._train_x, self.k, True)
        else:
            feats = _knn_distance_features(
                np.asarray(x, dtype=np.float64), self._train_x, self.k, False
            )
        return feats.mean(axis=1)
