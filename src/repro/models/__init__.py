"""Specialized GNN4TDL models (survey Sec. 4.3.3, Tables 2 & 6).

One faithful representative per method family:

* :class:`TabGNN` — multiplex same-feature-value graphs, per-relation GNNs,
  attention fusion (TabGNN [51]).
* :class:`GRAPE` — bipartite instance-feature graph; imputation as edge
  prediction, label prediction as node classification (GRAPE [157]).
* :class:`FiGNN` — fully-connected feature graph over embedded fields with
  gated updates and attentional readout for CTR (Fi-GNN [83]).
* :class:`LUNAR` — kNN graph with neighbor distances as messages; negative
  sampling trains an anomaly scorer (LUNAR [44]).
* :class:`SLAPS` — neural graph structure learner + dense GCN classifier +
  denoising-autoencoder auxiliary (SLAPS [33]).
* :class:`IDGL` — iterative metric graph learning interleaved with GCN
  embedding updates (IDGL [16]).
* :class:`FATE` — permutation-invariant feature aggregation enabling
  feature extrapolation to unseen columns (FATE [142]).
* :class:`FeatureGraphClassifier` — tokenized features + learned feature
  graph + readout (T2G-Former / Table2Graph-lite).
* :class:`HypergraphClassifier` — rows-as-hyperedges HGNN (HCL-lite).
* :class:`HeteroTabClassifier` — feature values as typed nodes (GCT/
  HSGNN/GraphFC-lite).
* :class:`CAREGNN` — similarity-aware neighbor filtering against
  camouflage (CARE-GNN [25], the "Neighbor Sampling" design of Table 6).
* :class:`KNNGraphClassifier` — the plain instance-kNN-graph + Table 5
  network combination most applied papers use.
"""

from repro.models.tabgnn import TabGNN
from repro.models.grape import GRAPE
from repro.models.fignn import FiGNN
from repro.models.lunar import LUNAR
from repro.models.slaps import SLAPS
from repro.models.idgl import IDGL
from repro.models.fate import FATE
from repro.models.feature_graph import FeatureGraphClassifier
from repro.models.hyper import HypergraphClassifier
from repro.models.hetero import HeteroTabClassifier
from repro.models.knn_gnn import KNNGraphClassifier
from repro.models.care import CAREGNN
from repro.models.pet import PET

__all__ = [
    "TabGNN",
    "GRAPE",
    "FiGNN",
    "LUNAR",
    "SLAPS",
    "IDGL",
    "FATE",
    "FeatureGraphClassifier",
    "HypergraphClassifier",
    "HeteroTabClassifier",
    "KNNGraphClassifier",
    "CAREGNN",
    "PET",
]
