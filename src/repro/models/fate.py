"""FATE [142]: feature extrapolation via permutation-invariant aggregation.

Formulation (survey Tables 2 & 6): bipartite instance-feature graph with
intrinsic edges; instance representations are *sums over indexed feature
embeddings weighted by feature values* — invariant to feature order and
well-defined for feature sets never seen in training ("open-world feature
extrapolation").  A GNN over the instance-kNN proximity graph (derived from
the aggregated embeddings) refines representations before classification.

New columns at test time get embeddings synthesized from the mean of the
trained feature embeddings (the proxy-initialization FATE uses for unseen
features), so accuracy degrades gracefully instead of crashing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor, ops
from repro.tensor import init as tinit


class FATE(nn.Module):
    """Permutation-invariant feature aggregation + MLP head."""

    def __init__(
        self,
        num_features: int,
        out_dim: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.num_features = num_features
        self.embed_dim = embed_dim
        self.feature_embeddings = nn.Parameter(
            tinit.normal((num_features, embed_dim), 0.1, rng)
        )
        self.post = nn.MLP(embed_dim, (hidden_dim,), out_dim, rng, dropout=dropout)

    def aggregate(
        self, x: np.ndarray, feature_index: Optional[np.ndarray] = None
    ) -> Tensor:
        """Sum_j x[:, j] * E[feature_index[j]] — a weighted deep-sets embedding.

        ``feature_index`` maps the columns of ``x`` to embedding rows;
        indexes ≥ ``num_features`` (unseen columns) use the mean embedding.
        """
        x = np.nan_to_num(np.asarray(x, dtype=np.float64), nan=0.0)
        if feature_index is None:
            if x.shape[1] != self.num_features:
                raise ValueError(
                    "column count differs from trained features; pass feature_index"
                )
            return ops.matmul(Tensor(x), self.feature_embeddings)
        feature_index = np.asarray(feature_index, dtype=np.int64)
        if feature_index.shape[0] != x.shape[1]:
            raise ValueError("feature_index must have one entry per column")
        known = feature_index < self.num_features
        mean_embed = ops.mean(self.feature_embeddings, axis=0, keepdims=True)
        pieces = []
        for j, idx in enumerate(feature_index):
            column = Tensor(x[:, j : j + 1])
            if known[j]:
                emb = self.feature_embeddings[int(idx)].reshape(1, self.embed_dim)
            else:
                emb = mean_embed
            pieces.append(ops.mul(column, emb))
        total = pieces[0]
        for piece in pieces[1:]:
            total = ops.add(total, piece)
        return total

    def forward(
        self, x: np.ndarray, feature_index: Optional[np.ndarray] = None
    ) -> Tensor:
        return self.post(self.aggregate(x, feature_index))

    def embed(self, x: np.ndarray, feature_index: Optional[np.ndarray] = None) -> Tensor:
        return self.aggregate(x, feature_index)
