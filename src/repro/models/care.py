"""CARE-GNN-lite [25]: similarity-aware neighbor filtering against camouflage.

Formulation (survey Tables 2 & 6, "Neighbor Sampling"): a multi-relational
instance graph where fraudsters *camouflage* by connecting to benign nodes.
CARE-GNN's defense is a label-supervised similarity measure that filters
each node's neighbors per relation before aggregation, keeping only the
most similar fraction.

This lite version replaces the original's reinforcement-learned per-relation
thresholds with a fixed keep-ratio ``rho`` (the ablation knob), keeping the
defining mechanism: a learned, label-aware similarity prunes camouflage
edges, and the auxiliary similarity loss trains it directly on labeled
pairs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.graph.multiplex import MultiplexGraph
from repro.tensor import Tensor, ops


class CAREGNN(nn.Module):
    """Multi-relational classifier with learned neighbor filtering."""

    def __init__(
        self,
        graph: MultiplexGraph,
        hidden_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        rho: float = 0.5,
        filter_neighbors: bool = True,
    ) -> None:
        super().__init__()
        if graph.x is None:
            raise ValueError("graph must carry node features")
        if not 0.0 < rho <= 1.0:
            raise ValueError("rho must be in (0, 1]")
        self.graph = graph
        self.rho = rho
        self.filter_neighbors = filter_neighbors
        self.x = Tensor(graph.x)
        in_dim = graph.x.shape[1]
        self.similarity_encoder = nn.MLP(in_dim, (hidden_dim,), hidden_dim, rng)
        self.relation_linears = nn.ModuleList(
            [nn.Linear(in_dim, hidden_dim, rng) for _ in graph.relations]
        )
        self.self_linear = nn.Linear(in_dim, hidden_dim, rng)
        self.head = nn.Linear(hidden_dim, out_dim, rng)
        self._edge_indexes = [graph.layer(r).edge_index for r in graph.relations]

    # ------------------------------------------------------------------
    def _similarity_embeddings(self) -> Tensor:
        z = self.similarity_encoder(self.x)
        norms = ops.power(
            ops.add(ops.sum(ops.mul(z, z), axis=1, keepdims=True), Tensor(1e-12)), 0.5
        )
        return ops.div(z, norms)

    def _filtered_operator(self, edge_index: np.ndarray, sims: np.ndarray):
        """Keep the top-``rho`` most similar incoming edges per node."""
        import scipy.sparse as sp

        src, dst = edge_index
        keep = np.ones(len(src), dtype=bool)
        if self.filter_neighbors and len(src):
            order = np.lexsort((-sims, dst))
            sorted_dst = dst[order]
            boundaries = np.searchsorted(
                sorted_dst, np.arange(self.graph.num_nodes + 1)
            )
            keep = np.zeros(len(src), dtype=bool)
            for node in range(self.graph.num_nodes):
                lo, hi = boundaries[node], boundaries[node + 1]
                if hi <= lo:
                    continue
                count = max(1, int(np.ceil((hi - lo) * self.rho)))
                keep[order[lo:lo + count]] = True
        matrix = sp.csr_matrix(
            (np.ones(int(keep.sum())), (dst[keep], src[keep])),
            shape=(self.graph.num_nodes, self.graph.num_nodes),
        )
        degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
        inv = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)
        return (sp.diags(inv) @ matrix).tocsr()

    def forward(self) -> Tensor:
        z = self._similarity_embeddings()
        z_data = z.data
        out = self.self_linear(self.x)
        for linear, edge_index in zip(self.relation_linears, self._edge_indexes):
            if edge_index.shape[1] == 0:
                continue
            sims = np.sum(z_data[edge_index[0]] * z_data[edge_index[1]], axis=1)
            operator = self._filtered_operator(edge_index, sims)
            out = ops.add(out, ops.spmm(operator, linear(self.x)))
        return self.head(ops.relu(out))

    def embed(self) -> Tensor:
        z = self._similarity_embeddings()
        z_data = z.data
        out = self.self_linear(self.x)
        for linear, edge_index in zip(self.relation_linears, self._edge_indexes):
            if edge_index.shape[1] == 0:
                continue
            sims = np.sum(z_data[edge_index[0]] * z_data[edge_index[1]], axis=1)
            operator = self._filtered_operator(edge_index, sims)
            out = ops.add(out, ops.spmm(operator, linear(self.x)))
        return ops.relu(out)

    # ------------------------------------------------------------------
    def similarity_loss(
        self,
        y: np.ndarray,
        train_mask: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        samples: int = 256,
    ) -> Tensor:
        """Label-aware similarity supervision (CARE-GNN's L_simi).

        Samples labeled edge pairs; the cosine similarity of the similarity
        embeddings should be high for same-label pairs and low otherwise.
        """
        rng = rng or np.random.default_rng(0)
        y = np.asarray(y)
        train_mask = np.asarray(train_mask, dtype=bool)
        all_edges = np.concatenate(
            [e for e in self._edge_indexes if e.shape[1]], axis=1
        )
        both_labeled = train_mask[all_edges[0]] & train_mask[all_edges[1]]
        candidates = all_edges[:, both_labeled]
        if candidates.shape[1] == 0:
            raise ValueError("no fully-labeled edges to supervise similarity")
        take = min(samples, candidates.shape[1])
        pick = rng.choice(candidates.shape[1], size=take, replace=False)
        pairs = candidates[:, pick]
        targets = (y[pairs[0]] == y[pairs[1]]).astype(np.float64)
        z = self._similarity_embeddings()
        zi = ops.gather_rows(z, pairs[0])
        zj = ops.gather_rows(z, pairs[1])
        logits = ops.mul(Tensor(4.0), ops.sum(ops.mul(zi, zj), axis=1))
        return nn.binary_cross_entropy_with_logits(logits, targets)

    def loss(
        self,
        y: np.ndarray,
        train_mask: np.ndarray,
        class_weights: Optional[np.ndarray] = None,
        similarity_weight: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ) -> Tensor:
        """Joint objective: weighted CE + the similarity supervision."""
        main = nn.cross_entropy(
            self.forward(), y, mask=train_mask, class_weights=class_weights
        )
        if similarity_weight <= 0:
            return main
        aux = self.similarity_loss(y, train_mask, rng=rng)
        return ops.add(main, ops.mul(Tensor(similarity_weight), aux))
