"""The workhorse combination most applied GNN4TDL papers use: a rule-based
kNN instance graph plus a standard GNN (survey Sec. 4.1.1 instance graphs).

Wraps construction + network + head behind a fit/predict interface so
benches and examples can use it like any baseline classifier, while still
exposing the underlying graph and network for inspection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.construction.rules import knn_graph
from repro.datasets.preprocessing import train_val_test_masks
from repro.gnn.networks import build_network
from repro.metrics import accuracy
from repro.training.trainer import Trainer


class KNNGraphClassifier:
    """kNN-graph node classification with a configurable Table 5 backbone."""

    def __init__(
        self,
        k: int = 10,
        network: str = "gcn",
        hidden_dim: int = 32,
        num_layers: int = 2,
        metric: str = "euclidean",
        lr: float = 0.01,
        max_epochs: int = 200,
        patience: int = 30,
        dropout: float = 0.0,
        weight_decay: float = 5e-4,
        seed: int = 0,
    ) -> None:
        self.k = k
        self.network_name = network
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.metric = metric
        self.lr = lr
        self.max_epochs = max_epochs
        self.patience = patience
        self.dropout = dropout
        self.weight_decay = weight_decay
        self.seed = seed
        self.graph = None
        self.model: Optional[nn.Module] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        train_mask: Optional[np.ndarray] = None,
        val_mask: Optional[np.ndarray] = None,
    ) -> "KNNGraphClassifier":
        """Transductive fit: the graph spans *all* rows; the loss uses only
        ``train_mask`` rows (semi-supervised, survey Sec. 2.5d)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.classes_ = np.unique(y)
        labels = np.searchsorted(self.classes_, y)
        rng = np.random.default_rng(self.seed)
        if train_mask is None:
            train_mask, val_mask, _ = train_val_test_masks(
                len(y), 0.7, 0.15, rng, stratify=labels
            )
        self.graph = knn_graph(x, k=self.k, metric=self.metric, y=labels)
        self.model = build_network(
            self.network_name,
            self.graph,
            self.hidden_dim,
            len(self.classes_),
            rng,
            num_layers=self.num_layers,
            dropout=self.dropout,
        )
        optimizer = nn.Adam(
            self.model.parameters(), lr=self.lr, weight_decay=self.weight_decay
        )
        trainer = Trainer(
            self.model, optimizer, max_epochs=self.max_epochs, patience=self.patience
        )

        def loss_fn():
            return nn.cross_entropy(self.model(), labels, mask=train_mask)

        val_fn = None
        if val_mask is not None and val_mask.any():
            def val_fn():
                pred = self.model().data.argmax(axis=1)
                return accuracy(labels[val_mask], pred[val_mask])

        trainer.fit(loss_fn, val_fn)
        return self

    def predict_proba(self, index: Optional[np.ndarray] = None) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit must be called before predict")
        logits = self.model().data
        logits = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs if index is None else probs[index]

    def predict(self, index: Optional[np.ndarray] = None) -> np.ndarray:
        return self.classes_[self.predict_proba(index).argmax(axis=1)]
