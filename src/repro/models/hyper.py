"""HCL-lite: hypergraph classifier over rows-as-hyperedges (survey Sec. 4.1.3).

Thin model wrapper: build the feature-value hypergraph intrinsically from a
:class:`~repro.datasets.TabularDataset` and classify hyperedges (rows) with
:class:`~repro.gnn.HypergraphGNN`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.construction.intrinsic import hypergraph_from_dataset
from repro.datasets.tabular import TabularDataset
from repro.gnn.hyper import HypergraphGNN
from repro.tensor import Tensor


class HypergraphClassifier(nn.Module):
    """Rows-as-hyperedges HGNN classifier for tabular data."""

    def __init__(
        self,
        dataset: Optional[TabularDataset] = None,
        rng: Optional[np.random.Generator] = None,
        hidden_dim: int = 32,
        num_layers: int = 2,
        n_bins: int = 5,
        dropout: float = 0.0,
        hypergraph=None,
        out_dim: Optional[int] = None,
    ) -> None:
        super().__init__()
        if hypergraph is None and dataset is None:
            raise ValueError("provide either a dataset or a prebuilt hypergraph")
        if out_dim is None:
            if dataset is None:
                raise ValueError("out_dim is required with a prebuilt hypergraph")
            out_dim = dataset.num_classes if dataset.task != "regression" else 1
        if hypergraph is None:
            hypergraph = hypergraph_from_dataset(dataset, n_bins=n_bins)
        self.hypergraph = hypergraph
        self.network = HypergraphGNN(
            self.hypergraph, hidden_dim, out_dim, rng,
            num_layers=num_layers, dropout=dropout,
        )

    def forward(self) -> Tensor:
        return self.network()

    def embed(self) -> Tensor:
        return self.network.embed()

    def pool_node_states(self) -> np.ndarray:
        """Frozen value-node states for incremental serving (see network)."""
        return self.network.pool_node_states()

    def propagate_queries(self, attach_view, node_states: np.ndarray) -> np.ndarray:
        """Logits for query rows attached as new hyperedges (see network)."""
        return self.network.propagate_queries(attach_view, node_states)

    def loss(self, y: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        return nn.cross_entropy(self.forward(), y, mask=mask)
