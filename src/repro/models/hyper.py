"""HCL-lite: hypergraph classifier over rows-as-hyperedges (survey Sec. 4.1.3).

Thin model wrapper: build the feature-value hypergraph intrinsically from a
:class:`~repro.datasets.TabularDataset` and classify hyperedges (rows) with
:class:`~repro.gnn.HypergraphGNN`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.construction.intrinsic import hypergraph_from_dataset
from repro.datasets.tabular import TabularDataset
from repro.gnn.hyper import HypergraphGNN
from repro.tensor import Tensor


class HypergraphClassifier(nn.Module):
    """Rows-as-hyperedges HGNN classifier for tabular data."""

    def __init__(
        self,
        dataset: TabularDataset,
        rng: np.random.Generator,
        hidden_dim: int = 32,
        num_layers: int = 2,
        n_bins: int = 5,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.hypergraph = hypergraph_from_dataset(dataset, n_bins=n_bins)
        out_dim = dataset.num_classes if dataset.task != "regression" else 1
        self.network = HypergraphGNN(
            self.hypergraph, hidden_dim, out_dim, rng,
            num_layers=num_layers, dropout=dropout,
        )

    def forward(self) -> Tensor:
        return self.network()

    def embed(self) -> Tensor:
        return self.network.embed()

    def loss(self, y: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        return nn.cross_entropy(self.forward(), y, mask=mask)
