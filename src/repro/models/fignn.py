"""Fi-GNN [83]: feature-interaction GNN for CTR prediction.

Formulation (survey Table 2): homogeneous *feature graph*, one node per
field, fully-connected rule, one-hot/embedded initial features, graph-level
task.  Each table row owns the same fully-connected graph over its embedded
fields; messages pass between fields, node states update through a GRU, and
an attentional scorer reads out the click logit.

Edge importance is a learnable field-pair matrix (softmax-normalized per
destination), the simplification of Fi-GNN's bilinear edge attention that
keeps the model's defining property: pairwise field interactions are
modelled *explicitly and structurally*, unlike the MLP baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.datasets.tabular import TabularDataset
from repro.tensor import Tensor, ops


class FiGNN(nn.Module):
    """Gated feature-graph network over embedded categorical fields."""

    def __init__(
        self,
        cardinalities: Sequence[int],
        embed_dim: int,
        rng: np.random.Generator,
        num_steps: int = 2,
        num_numerical: int = 0,
        out_dim: int = 1,
    ) -> None:
        super().__init__()
        if not cardinalities and num_numerical == 0:
            raise ValueError("Fi-GNN needs at least one field")
        self.cardinalities = list(cardinalities)
        self.num_numerical = num_numerical
        self.num_fields = len(self.cardinalities) + num_numerical
        self.embed_dim = embed_dim
        self.num_steps = num_steps
        self.out_dim = out_dim

        self.field_embeddings = nn.ModuleList(
            [nn.Embedding(card, embed_dim, rng) for card in self.cardinalities]
        )
        if num_numerical:
            # Each numerical field: value scales a learned field vector.
            self.numerical_embedding = nn.Parameter(
                rng.normal(0.0, 0.1, size=(num_numerical, embed_dim))
            )
        self.edge_logits = nn.Parameter(
            rng.normal(0.0, 0.1, size=(self.num_fields, self.num_fields))
        )
        self.message = nn.Linear(embed_dim, embed_dim, rng)
        self.gru = nn.GRUCell(embed_dim, embed_dim, rng)
        self.score = nn.Linear(embed_dim, out_dim, rng)
        self.gate = nn.Linear(embed_dim, 1, rng)

    # ------------------------------------------------------------------
    def field_states(self, dataset: TabularDataset) -> Tensor:
        """Initial field-node states, shape (rows, fields, embed_dim)."""
        states = []
        for j, embedding in enumerate(self.field_embeddings):
            codes = np.maximum(dataset.categorical[:, j], 0)
            states.append(embedding(codes))
        if self.num_numerical:
            values = np.nan_to_num(dataset.numerical, nan=0.0)
            for j in range(self.num_numerical):
                vec = self.numerical_embedding[j].reshape(1, self.embed_dim)
                states.append(ops.mul(Tensor(values[:, j : j + 1]), vec))
        return ops.stack(states, axis=1)

    def interaction_matrix(self) -> Tensor:
        """Softmax-normalized field-pair weights with the diagonal masked."""
        mask = Tensor(np.eye(self.num_fields) * -1e9)
        return ops.softmax(ops.add(self.edge_logits, mask), axis=1)

    def forward(self, dataset: TabularDataset) -> Tensor:
        h = self.field_states(dataset)  # (rows, F, D)
        rows = h.shape[0]
        adjacency = self.interaction_matrix()  # (F, F)
        for _ in range(self.num_steps):
            transformed = self.message(h.reshape(rows * self.num_fields, self.embed_dim))
            transformed = transformed.reshape(rows, self.num_fields, self.embed_dim)
            messages = ops.matmul(adjacency, transformed)  # broadcast over rows
            h_flat = h.reshape(rows * self.num_fields, self.embed_dim)
            m_flat = messages.reshape(rows * self.num_fields, self.embed_dim)
            h = self.gru(m_flat, h_flat).reshape(rows, self.num_fields, self.embed_dim)
        # Attentional scoring readout: sigmoid-gated per-field scores summed.
        h_flat = h.reshape(rows * self.num_fields, self.embed_dim)
        field_scores = self.score(h_flat).reshape(rows, self.num_fields, self.out_dim)
        gates = ops.sigmoid(self.gate(h_flat)).reshape(rows, self.num_fields, 1)
        logits = ops.sum(ops.mul(field_scores, gates), axis=1)
        if self.out_dim == 1:
            return logits.reshape(rows)
        return logits

    def predict_proba(self, dataset: TabularDataset) -> np.ndarray:
        logits = self.forward(dataset).data
        if self.out_dim == 1:
            return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
        shifted = logits - logits.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=1, keepdims=True)
