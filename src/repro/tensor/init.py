"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the library is exactly reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.autograd import Tensor


def _fan_in_fan_out(shape: tuple) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer needs at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out


def zeros(shape, requires_grad: bool = True) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = True) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def constant(shape, value: float, requires_grad: bool = True) -> Tensor:
    return Tensor(np.full(shape, float(value)), requires_grad=requires_grad)


def uniform(shape, low: float, high: float, rng: np.random.Generator,
            requires_grad: bool = True) -> Tensor:
    return Tensor(rng.uniform(low, high, size=shape), requires_grad=requires_grad)


def normal(shape, std: float, rng: np.random.Generator,
           requires_grad: bool = True) -> Tensor:
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=requires_grad)


def glorot_uniform(shape, rng: np.random.Generator, gain: float = 1.0,
                   requires_grad: bool = True) -> Tensor:
    """Xavier/Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, -bound, bound, rng, requires_grad=requires_grad)


def glorot_normal(shape, rng: np.random.Generator, gain: float = 1.0,
                  requires_grad: bool = True) -> Tensor:
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return normal(shape, std, rng, requires_grad=requires_grad)


def kaiming_uniform(shape, rng: np.random.Generator,
                    requires_grad: bool = True) -> Tensor:
    """He uniform init for ReLU networks: U(-a, a), a = sqrt(6 / fan_in)."""
    fan_in, _ = _fan_in_fan_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return uniform(shape, -bound, bound, rng, requires_grad=requires_grad)


def kaiming_normal(shape, rng: np.random.Generator,
                   requires_grad: bool = True) -> Tensor:
    fan_in, _ = _fan_in_fan_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return normal(shape, std, rng, requires_grad=requires_grad)
