"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the computational substrate for the whole library: a
small but complete autograd engine (:class:`~repro.tensor.autograd.Tensor`)
plus the sparse and segment operations that graph neural networks need
(``spmm``, ``gather_rows``, ``segment_sum``, ``segment_softmax``).

The paper's methods are all expressible with dense matmul, sparse-dense
matmul, per-edge gather/scatter and standard elementwise math, so this
engine substitutes for PyTorch/PyG without changing any algorithmic
behaviour.
"""

from repro.tensor.autograd import Tensor, no_grad, is_grad_enabled
from repro.tensor import init
from repro.tensor.ops import (
    add,
    concat,
    dropout_mask,
    exp,
    gather_rows,
    leaky_relu,
    log,
    log_softmax,
    matmul,
    maximum,
    mean,
    mul,
    relu,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    sigmoid,
    softmax,
    softmax_rows,
    spmm,
    stack,
    sum as tsum,
    tanh,
    where,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "init",
    "add",
    "concat",
    "dropout_mask",
    "exp",
    "gather_rows",
    "leaky_relu",
    "log",
    "log_softmax",
    "matmul",
    "maximum",
    "mean",
    "mul",
    "relu",
    "segment_max",
    "segment_mean",
    "segment_softmax",
    "segment_sum",
    "sigmoid",
    "softmax",
    "softmax_rows",
    "spmm",
    "stack",
    "tsum",
    "tanh",
    "where",
]
