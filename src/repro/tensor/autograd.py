"""Core reverse-mode autodiff: the :class:`Tensor` class.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
produced it.  Calling :meth:`Tensor.backward` on a scalar-valued tensor
walks the recorded graph in reverse topological order and accumulates
gradients into every tensor with ``requires_grad=True``.

Design notes
------------
* All data is stored as ``float64`` unless the caller explicitly passes an
  integer array (used only for index tensors, which never require grad).
* Broadcasting is fully supported: gradients flowing into a broadcast
  operand are summed over the broadcast axes (see :func:`unbroadcast`).
* The graph is dynamic (define-by-run) and freed after ``backward`` unless
  ``retain_graph=True``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded for autodiff."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    The inverse of numpy broadcasting: if a tensor of shape ``shape`` was
    broadcast to ``grad.shape`` during the forward pass, the gradient of the
    original tensor is the sum of ``grad`` over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data: ArrayLike) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype.kind in "iub":
            return data
        return data.astype(np.float64, copy=False)
    arr = np.asarray(data)
    if arr.dtype.kind in "iub":
        return arr.astype(np.float64)
    return arr.astype(np.float64)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; coerced to ``float64`` (integer arrays passed as
        ``np.ndarray`` are kept as-is for use as indices).
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    name:
        Optional debugging label.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        """Coerce ``value`` to a (non-differentiable) Tensor if it is not one."""
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_tag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    def _set_history(
        self,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> None:
        """Record provenance if grad mode is on and any parent needs grad."""
        if not is_grad_enabled():
            return
        parents = tuple(parents)
        if any(p.requires_grad for p in parents):
            self.requires_grad = True
            self._prev = parents
            self._backward = backward

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ``1.0`` and is only optional for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)

        # Topological order via iterative DFS (avoids recursion limits on
        # deep training graphs).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # operators (implemented in ops.py, bound lazily to avoid circularity)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.tensor import ops

        return ops.add(self, Tensor.ensure(other))

    def __radd__(self, other):
        from repro.tensor import ops

        return ops.add(Tensor.ensure(other), self)

    def __sub__(self, other):
        from repro.tensor import ops

        return ops.sub(self, Tensor.ensure(other))

    def __rsub__(self, other):
        from repro.tensor import ops

        return ops.sub(Tensor.ensure(other), self)

    def __mul__(self, other):
        from repro.tensor import ops

        return ops.mul(self, Tensor.ensure(other))

    def __rmul__(self, other):
        from repro.tensor import ops

        return ops.mul(Tensor.ensure(other), self)

    def __truediv__(self, other):
        from repro.tensor import ops

        return ops.div(self, Tensor.ensure(other))

    def __rtruediv__(self, other):
        from repro.tensor import ops

        return ops.div(Tensor.ensure(other), self)

    def __neg__(self):
        from repro.tensor import ops

        return ops.neg(self)

    def __pow__(self, exponent: float):
        from repro.tensor import ops

        return ops.power(self, float(exponent))

    def __matmul__(self, other):
        from repro.tensor import ops

        return ops.matmul(self, Tensor.ensure(other))

    def __getitem__(self, key):
        from repro.tensor import ops

        return ops.getitem(self, key)

    # Convenience methods mirroring the functional API.
    def sum(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None):
        from repro.tensor import ops

        return ops.transpose(self, axes=axes)

    @property
    def T(self):
        return self.transpose()

    def exp(self):
        from repro.tensor import ops

        return ops.exp(self)

    def log(self):
        from repro.tensor import ops

        return ops.log(self)

    def sqrt(self):
        from repro.tensor import ops

        return ops.power(self, 0.5)

    def abs(self):
        from repro.tensor import ops

        return ops.absolute(self)

    def clip(self, low: float, high: float):
        from repro.tensor import ops

        return ops.clip(self, low, high)

    def relu(self):
        from repro.tensor import ops

        return ops.relu(self)

    def sigmoid(self):
        from repro.tensor import ops

        return ops.sigmoid(self)

    def tanh(self):
        from repro.tensor import ops

        return ops.tanh(self)
