"""Differentiable operations on :class:`~repro.tensor.autograd.Tensor`.

Every function builds a new tensor, computes the forward value with plain
numpy, and registers a closure that maps the output gradient to input
gradients.  Broadcasting is handled uniformly through
:func:`~repro.tensor.autograd.unbroadcast`.

The segment operations (``segment_sum``/``segment_mean``/``segment_softmax``)
are the message-passing primitives: a graph with ``E`` edges is processed by
gathering node states to edges (:func:`gather_rows`) and scattering edge
messages back to nodes (:func:`segment_sum`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.tensor.autograd import Tensor, unbroadcast

Axis = Union[None, int, Tuple[int, ...]]


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data + b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad, b.shape))

    out._set_history((a, b), backward)
    return out


def sub(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data - b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(-grad, b.shape))

    out._set_history((a, b), backward)
    return out


def mul(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data * b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * a.data, b.shape))

    out._set_history((a, b), backward)
    return out


def div(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data / b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad / b.data, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(-grad * a.data / (b.data**2), b.shape))

    out._set_history((a, b), backward)
    return out


def neg(a: Tensor) -> Tensor:
    out = Tensor(-a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(-grad)

    out._set_history((a,), backward)
    return out


def power(a: Tensor, exponent: float) -> Tensor:
    with np.errstate(invalid="ignore", divide="ignore"):
        out_data = np.power(a.data, exponent)
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            with np.errstate(invalid="ignore", divide="ignore"):
                local = exponent * np.power(a.data, exponent - 1.0)
            local = np.where(np.isfinite(local), local, 0.0)
            a._accumulate(grad * local)

    out._set_history((a,), backward)
    return out


def absolute(a: Tensor) -> Tensor:
    out = Tensor(np.abs(a.data))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * np.sign(a.data))

    out._set_history((a,), backward)
    return out


def clip(a: Tensor, low: float, high: float) -> Tensor:
    out = Tensor(np.clip(a.data, low, high))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            mask = ((a.data > low) & (a.data < high)).astype(np.float64)
            a._accumulate(grad * mask)

    out._set_history((a,), backward)
    return out


def maximum(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(np.maximum(a.data, b.data))

    def backward(grad: np.ndarray) -> None:
        a_ge = (a.data >= b.data).astype(np.float64)
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * a_ge, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * (1.0 - a_ge), b.shape))

    out._set_history((a, b), backward)
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection; ``condition`` is a constant boolean array."""
    cond = np.asarray(condition, dtype=bool)
    out = Tensor(np.where(cond, a.data, b.data))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * (~cond), b.shape))

    out._set_history((a, b), backward)
    return out


# ----------------------------------------------------------------------
# linear algebra
# ----------------------------------------------------------------------
def matmul(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data @ b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            ga = grad @ np.swapaxes(b.data, -1, -2)
            a._accumulate(unbroadcast(ga, a.shape))
        if b.requires_grad:
            gb = np.swapaxes(a.data, -1, -2) @ grad
            b._accumulate(unbroadcast(gb, b.shape))

    out._set_history((a, b), backward)
    return out


def spmm(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Sparse @ dense product where the sparse matrix is a constant.

    Used for fixed-structure graph aggregation: ``matrix`` is typically a
    (normalized) adjacency and ``x`` the node-feature tensor.  The gradient
    is ``matrix.T @ grad``.
    """
    matrix = matrix.tocsr()
    out = Tensor(matrix @ x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(matrix.T @ grad)

    out._set_history((x,), backward)
    return out


# ----------------------------------------------------------------------
# elementwise nonlinearities
# ----------------------------------------------------------------------
def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * out_data)

    out._set_history((a,), backward)
    return out


def log(a: Tensor) -> Tensor:
    with np.errstate(divide="ignore", invalid="ignore"):
        out = Tensor(np.log(a.data))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad / a.data)

    out._set_history((a,), backward)
    return out


def relu(a: Tensor) -> Tensor:
    out = Tensor(np.maximum(a.data, 0.0))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * (a.data > 0.0))

    out._set_history((a,), backward)
    return out


def leaky_relu(a: Tensor, negative_slope: float = 0.2) -> Tensor:
    out = Tensor(np.where(a.data > 0.0, a.data, negative_slope * a.data))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            local = np.where(a.data > 0.0, 1.0, negative_slope)
            a._accumulate(grad * local)

    out._set_history((a,), backward)
    return out


def elu(a: Tensor, alpha: float = 1.0) -> Tensor:
    exp_part = alpha * (np.exp(np.minimum(a.data, 0.0)) - 1.0)
    out = Tensor(np.where(a.data > 0.0, a.data, exp_part))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            local = np.where(a.data > 0.0, 1.0, exp_part + alpha)
            a._accumulate(grad * local)

    out._set_history((a,), backward)
    return out


def sigmoid(a: Tensor) -> Tensor:
    out_data = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * out_data * (1.0 - out_data))

    out._set_history((a,), backward)
    return out


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * (1.0 - out_data**2))

    out._set_history((a,), backward)
    return out


def softmax_rows(data: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax on a plain numpy array.

    The single softmax implementation in the library: :func:`softmax` wraps
    it with gradient bookkeeping and the serving engine calls it directly
    on logits that never need gradients.
    """
    data = np.asarray(data, dtype=np.float64)
    shifted = data - data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    out_data = softmax_rows(a.data, axis=axis)
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            a._accumulate(out_data * (grad - dot))

    out._set_history((a,), backward)
    return out


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            softmax_data = np.exp(out_data)
            a._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    out._set_history((a,), backward)
    return out


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def _expand_reduced(grad: np.ndarray, shape: tuple, axis: Axis, keepdims: bool) -> np.ndarray:
    if axis is None:
        return np.broadcast_to(grad, shape)
    if not keepdims:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        axes = tuple(ax % len(shape) for ax in axes)
        for ax in sorted(axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape)


def sum(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    out = Tensor(a.data.sum(axis=axis, keepdims=keepdims))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.shape, axis, keepdims).copy())

    out._set_history((a,), backward)
    return out


def mean(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    out = Tensor(a.data.mean(axis=axis, keepdims=keepdims))
    count = a.data.size if axis is None else np.prod(
        [a.shape[ax] for ax in ((axis,) if isinstance(axis, int) else axis)]
    )

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            expanded = _expand_reduced(grad, a.shape, axis, keepdims)
            a._accumulate(expanded / count)

    out._set_history((a,), backward)
    return out


def max(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    out_data = a.data.max(axis=axis, keepdims=keepdims)
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            expanded_out = _expand_reduced(out_data, a.shape, axis, keepdims)
            mask = (a.data == expanded_out).astype(np.float64)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            expanded_grad = _expand_reduced(grad, a.shape, axis, keepdims)
            a._accumulate(expanded_grad * mask / counts)

    out._set_history((a,), backward)
    return out


# ----------------------------------------------------------------------
# shape manipulation
# ----------------------------------------------------------------------
def reshape(a: Tensor, shape: tuple) -> Tensor:
    out = Tensor(a.data.reshape(shape))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad.reshape(a.shape))

    out._set_history((a,), backward)
    return out


def transpose(a: Tensor, axes: Optional[tuple] = None) -> Tensor:
    out = Tensor(a.data.transpose(axes))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            if axes is None:
                a._accumulate(grad.transpose())
            else:
                inverse = np.argsort(axes)
                a._accumulate(grad.transpose(inverse))

    out._set_history((a,), backward)
    return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [Tensor.ensure(t) for t in tensors]
    out = Tensor(np.concatenate([t.data for t in tensors], axis=axis))
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    out._set_history(tensors, backward)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [Tensor.ensure(t) for t in tensors]
    out = Tensor(np.stack([t.data for t in tensors], axis=axis))

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    out._set_history(tensors, backward)
    return out


def getitem(a: Tensor, key) -> Tensor:
    out = Tensor(a.data[key])

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data, dtype=np.float64)
            np.add.at(full, key, grad)
            a._accumulate(full)

    out._set_history((a,), backward)
    return out


# ----------------------------------------------------------------------
# gather / scatter (message passing primitives)
# ----------------------------------------------------------------------
def gather_rows(a: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``a[index]``; gradient scatter-adds back into the rows."""
    index = np.asarray(index, dtype=np.int64)
    out = Tensor(a.data[index])

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data, dtype=np.float64)
            np.add.at(full, index, grad)
            a._accumulate(full)

    out._set_history((a,), backward)
    return out


def segment_sum(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``a`` into ``num_segments`` buckets given by ``segment_ids``.

    ``out[s] = sum_{i : segment_ids[i] == s} a[i]``.  The gradient of row
    ``i`` is the gradient of its bucket — i.e. a gather.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + a.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, a.data)
    out = Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad[segment_ids])

    out._set_history((a,), backward)
    return out


def segment_mean(a: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows per segment; empty segments produce zeros."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    safe = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (a.ndim - 1))
    total = segment_sum(a, segment_ids, num_segments)
    return mul(total, Tensor(1.0 / safe))


def segment_max(data: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Non-differentiable per-segment max (used to stabilize segment softmax)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out = np.full((num_segments,) + data.shape[1:], -np.inf, dtype=np.float64)
    np.maximum.at(out, segment_ids, data)
    return out


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over groups of entries sharing a segment id.

    This is the attention normalization of GAT: edge scores are normalized
    over all edges incident to the same destination node.  Composed from
    differentiable primitives so gradients flow through both numerator and
    denominator.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    # Stabilize with the (constant) per-segment max.
    maxes = segment_max(scores.data, segment_ids, num_segments)
    maxes = np.where(np.isfinite(maxes), maxes, 0.0)
    shifted = sub(scores, Tensor(maxes[segment_ids]))
    exps = exp(shifted)
    denom = segment_sum(exps, segment_ids, num_segments)
    denom_per_row = gather_rows(denom, segment_ids)
    return div(exps, denom_per_row)


def dropout_mask(shape: tuple, p: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout mask: zeros with probability ``p``, else ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = rng.random(shape) >= p
    return keep.astype(np.float64) / (1.0 - p)
