"""Setup shim enabling legacy editable installs in offline environments.

The modern PEP 660 editable-install path requires the ``wheel`` package,
which is not available in the offline evaluation environment.  With this
shim (and no ``[build-system]`` table in pyproject.toml), ``pip install -e .``
falls back to ``setup.py develop``, which works offline.
"""

import pathlib
import re

from setuptools import find_packages, setup

_INIT = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(r'^__version__ = "(.+)"', _INIT.read_text(), re.M).group(1)

setup(
    name="gnn4tdl-repro",
    version=_VERSION,
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "gnn4tdl-serve=repro.serving.server:main",
        ],
    },
)
