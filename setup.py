"""Setup shim enabling legacy editable installs in offline environments.

The modern PEP 660 editable-install path requires the ``wheel`` package,
which is not available in the offline evaluation environment.  With this
shim (and no ``[build-system]`` table in pyproject.toml), ``pip install -e .``
falls back to ``setup.py develop``, which works offline.
"""

from setuptools import setup

setup()
