"""Integration tests: networks, pipeline, registry and applications together.

These are the end-to-end checks that the survey's qualitative claims hold in
miniature; the full-size versions live in benchmarks/.
"""

import numpy as np
import pytest

from repro import nn, registry
from repro.construction.rules import knn_graph
from repro.datasets import (
    inject_missing,
    make_anomaly,
    make_correlated_instances,
    make_ctr,
    make_ehr,
    make_fraud,
    train_val_test_masks,
)
from repro.gnn.networks import build_network
from repro.metrics import accuracy
from repro.pipeline import FORMULATIONS, run_pipeline
from repro.tensor import Tensor


class TestNetworks:
    @pytest.mark.parametrize("name", ["gcn", "sage", "gat", "gin", "gated"])
    def test_every_architecture_trains_above_chance(self, name):
        ds = make_correlated_instances(n=150, cluster_strength=2.0, seed=2)
        x = ds.to_matrix()
        g = knn_graph(x, k=6, y=ds.y)
        rng = np.random.default_rng(0)
        train, val, test = train_val_test_masks(150, 0.5, 0.2, rng, stratify=ds.y)
        model = build_network(name, g, 16, ds.num_classes, rng)
        opt = nn.Adam(model.parameters(), lr=0.01)
        for _ in range(60):
            model.train()
            loss = nn.cross_entropy(model(), ds.y, mask=train)
            opt.zero_grad()
            loss.backward()
            opt.step()
        model.eval()
        acc = accuracy(ds.y[test], model().data.argmax(1)[test])
        chance = 1.0 / ds.num_classes
        assert acc > chance + 0.15, f"{name} failed to beat chance: {acc}"

    def test_unknown_architecture_raises(self):
        ds = make_correlated_instances(n=30, seed=0)
        g = knn_graph(ds.to_matrix(), k=3)
        with pytest.raises(ValueError):
            build_network("transformer", g, 8, 2, np.random.default_rng(0))

    def test_feature_view_override(self):
        ds = make_correlated_instances(n=40, seed=0)
        x = ds.to_matrix()
        g = knn_graph(x, k=4, y=ds.y)
        model = build_network("gcn", g, 8, 2, np.random.default_rng(0))
        default_out = model().data
        corrupted_out = model(Tensor(np.zeros_like(x))).data
        assert not np.allclose(default_out, corrupted_out)

    def test_embed_dims(self):
        ds = make_correlated_instances(n=40, seed=0)
        g = knn_graph(ds.to_matrix(), k=4)
        for name in ("gcn", "sage", "gat", "gin", "gated"):
            model = build_network(name, g, 8, 2, np.random.default_rng(0))
            assert model.embed().shape[0] == 40
            assert model.embed().shape[1] == model.embed_dim


class TestPipeline:
    @pytest.mark.parametrize("formulation", FORMULATIONS)
    def test_each_formulation_runs(self, formulation):
        ds = make_fraud(n=120, seed=0)
        result = run_pipeline(ds, formulation=formulation, max_epochs=25)
        assert 0.0 <= result.test_accuracy <= 1.0
        assert set(result.phase_seconds) == {"construction", "training", "inference"}
        assert result.num_parameters > 0

    def test_invalid_formulation(self):
        ds = make_fraud(n=50, seed=0)
        with pytest.raises(ValueError):
            run_pipeline(ds, formulation="quantum")

    def test_regression_rejected(self):
        from repro.datasets import make_regression

        with pytest.raises(ValueError):
            run_pipeline(make_regression(n=50), formulation="instance")

    def test_auxiliary_task_variant(self):
        ds = make_fraud(n=100, seed=0)
        result = run_pipeline(ds, formulation="instance", with_auxiliary=True,
                              max_epochs=25)
        assert result.test_accuracy > 0.0


class TestRegistry:
    def test_all_taxonomy_leaves_resolve(self):
        resolved = registry.verify_all_leaves()
        assert all(resolved.values())

    def test_four_phases_present(self):
        assert registry.phases() == [
            "formulation", "construction", "representation", "training",
        ]

    def test_tree_rendering_contains_all_leaves(self):
        tree = registry.taxonomy_tree()
        for leaf in registry.TAXONOMY:
            assert leaf.name in tree

    def test_scope_axes_match_table1(self):
        assert set(registry.SCOPE_AXES) == {"TDP", "GRL", "GSL", "SSL", "TS", "AT", "App"}


class TestApplicationsSmall:
    def test_anomaly_detection_keys_and_ranges(self):
        from repro.applications import run_anomaly_detection

        ds = make_anomaly(n_inliers=120, n_outliers=12, seed=0)
        results = run_anomaly_detection(ds, epochs=40)
        assert set(results) == {"lunar", "knn_distance", "gae", "zscore"}
        for stats in results.values():
            assert 0.0 <= stats["auc"] <= 1.0

    def test_anomaly_requires_binary(self):
        from repro.applications import run_anomaly_detection

        ds = make_correlated_instances(n=50, num_classes=3, seed=0)
        with pytest.raises(ValueError):
            run_anomaly_detection(ds)

    def test_ctr_benchmark_keys(self):
        from repro.applications import run_ctr_benchmark

        ds = make_ctr(n=400, num_users=8, num_items=6, seed=0)
        results = run_ctr_benchmark(ds, epochs=30)
        assert set(results) == {"logistic", "mlp", "fignn"}

    def test_imputation_benchmark_mechanisms(self):
        from repro.applications import run_imputation_benchmark

        ds = make_correlated_instances(n=80, cluster_strength=2.0, seed=0)
        results = run_imputation_benchmark(ds, rate=0.25, mechanism="mcar", epochs=40)
        assert set(results) == {"mean", "median", "knn", "iterative", "grape"}
        assert all(v > 0 for v in results.values())

    def test_imputation_rejects_incomplete_input(self):
        from repro.applications import run_imputation_benchmark

        ds = inject_missing(make_correlated_instances(n=50, seed=0), 0.2)
        with pytest.raises(ValueError):
            run_imputation_benchmark(ds)

    def test_ehr_benchmark_keys(self):
        from repro.applications import run_ehr_benchmark

        ds = make_ehr(n=120, num_codes=20, seed=0)
        results = run_ehr_benchmark(ds, epochs=30)
        assert set(results) == {"mlp", "hetero_gnn", "hypergraph_gnn", "knn_gcn"}

    def test_fraud_benchmark_keys(self):
        from repro.applications import run_fraud_benchmark

        ds = make_fraud(n=250, seed=0)
        results = run_fraud_benchmark(ds, epochs=30)
        assert set(results) == {"mlp", "tabgnn_attention", "tabgnn_mean", "flattened_gcn"}


class TestSurveyClaimsInMiniature:
    """Sec. 2.5's 'why GNNs' arguments, each as a fast falsifiable check."""

    def test_instance_correlation_gnn_beats_mlp_when_clusters_exist(self):
        from repro.baselines import MLPClassifier
        from repro.models import KNNGraphClassifier

        ds = make_correlated_instances(n=240, cluster_strength=2.0, flip_y=0.05, seed=3)
        x = ds.to_matrix()
        rng = np.random.default_rng(0)
        train, val, test = train_val_test_masks(240, 0.15, 0.15, rng, stratify=ds.y)
        mlp = MLPClassifier(hidden_dims=(32,), epochs=150, seed=0).fit(x[train], ds.y[train])
        mlp_acc = accuracy(ds.y[test], mlp.predict(x[test]))
        gnn = KNNGraphClassifier(k=8, max_epochs=150, seed=0)
        gnn.fit(x, ds.y, train_mask=train, val_mask=val)
        gnn_acc = accuracy(ds.y[test], gnn.predict(test))
        assert gnn_acc >= mlp_acc - 0.02  # GNN at least matches; usually wins

    def test_semi_supervision_gap_grows_with_label_scarcity(self):
        from repro.models import KNNGraphClassifier

        ds = make_correlated_instances(n=300, cluster_strength=2.0, seed=1)
        x = ds.to_matrix()
        rng = np.random.default_rng(0)
        accs = {}
        for frac in (0.05, 0.5):
            train, val, test = train_val_test_masks(300, frac, 0.1, rng, stratify=ds.y)
            gnn = KNNGraphClassifier(k=8, max_epochs=120, seed=0)
            gnn.fit(x, ds.y, train_mask=train, val_mask=val)
            accs[frac] = accuracy(ds.y[test], gnn.predict(test))
        # Even with 5% labels, the graph propagates supervision: stays well
        # above chance (1/3).
        assert accs[0.05] > 0.55
