"""Tests for the multi-process scale-out serving subsystem.

Covers each layer in isolation — the frame protocol, the memory-mapped
``.npz`` loader, cross-process metrics merging — and then the integrated
deployment: a real :class:`~repro.serving.scaleout.ScaleOutServer` with
forked workers behind a live socket, exercised for wire parity with the
single-process oracle, fleet health/metrics aggregation, worker-death
resilience, and the zero-downtime hot swap under concurrent load.
"""

import http.client
import json
import pathlib
import socket
import threading

import numpy as np
import pytest

from repro.datasets import make_correlated_instances
from repro.obs import MetricsRegistry, merge_snapshots, render_snapshot_prometheus
from repro.pipeline import run_pipeline
from repro.serving import InferenceEngine, ModelArtifact, PredictionServer
from repro.serving.npz_mmap import load_npz_mmap
from repro.serving.scaleout import ScaleOutServer
from repro.serving.scaleout.protocol import (
    FrameDecoder,
    ProtocolError,
    encode_frame,
    recv_frame,
    send_frame,
)


# ----------------------------------------------------------------------
# protocol framing
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "predict", "id": 7}, b"payload-bytes")
            header, body = recv_frame(b)
            assert header == {"op": "predict", "id": 7}
            assert body == b"payload-bytes"
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            frame = encode_frame({"op": "x"}, b"12345")
            a.sendall(frame[: len(frame) - 3])
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_decoder_handles_byte_at_a_time_feeds(self):
        frames = (
            encode_frame({"id": 1}, b"first")
            + encode_frame({"id": 2}, b"")
            + encode_frame({"id": 3}, b"third")
        )
        decoder = FrameDecoder()
        seen = []
        for i in range(len(frames)):
            decoder.feed(frames[i:i + 1])
            seen.extend(decoder.frames())
        assert [h["id"] for h, _ in seen] == [1, 2, 3]
        assert [b for _, b in seen] == [b"first", b"", b"third"]

    def test_decoder_rejects_absurd_declared_length(self):
        decoder = FrameDecoder()
        decoder.feed(b"\xff\xff\xff\xff\xff\xff\xff\xff")
        with pytest.raises(ProtocolError):
            list(decoder.frames())

    def test_oversized_frame_refused_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"op": "x"}, b"\0" * ((1 << 28) + 1))


# ----------------------------------------------------------------------
# memory-mapped npz loading
# ----------------------------------------------------------------------
class TestNpzMmap:
    def test_parity_and_mmapness(self, tmp_path):
        path = tmp_path / "arrays.npz"
        rng = np.random.default_rng(0)
        saved = {
            "floats": rng.normal(size=(13, 7)),
            "fortran": np.asfortranarray(rng.normal(size=(5, 9))),
            "ints": rng.integers(0, 100, size=(4, 3)).astype(np.int64),
            "empty": np.zeros((0, 4)),
            "scalarish": np.float64(3.5),
        }
        np.savez(path, **saved)
        loaded = load_npz_mmap(path)
        reference = np.load(path)
        assert set(loaded) == set(reference.files)
        for key in reference.files:
            np.testing.assert_array_equal(
                np.asarray(loaded[key]), reference[key]
            )
            assert not loaded[key].flags.writeable
        # Non-empty, non-object members are true memmaps (shared pages).
        assert isinstance(loaded["floats"], np.memmap)
        assert isinstance(loaded["ints"], np.memmap)
        assert loaded["fortran"].flags.f_contiguous

    def test_writes_raise(self, tmp_path):
        path = tmp_path / "ro.npz"
        np.savez(path, x=np.arange(6.0))
        loaded = load_npz_mmap(path)
        with pytest.raises((ValueError, RuntimeError)):
            loaded["x"][0] = 99.0


# ----------------------------------------------------------------------
# cross-process metrics merging
# ----------------------------------------------------------------------
class TestMergeSnapshots:
    def _registry(self, count, gauge, latencies):
        registry = MetricsRegistry()
        counter = registry.counter("m_total", "d", labelnames=("k",))
        counter.labels(k="a").inc(count)
        registry.gauge("m_rate", "d").set(gauge)
        hist = registry.histogram("m_lat", "d")
        for value in latencies:
            hist.observe(value)
        return registry

    def test_counters_and_histograms_sum_gauges_tag(self):
        r0 = self._registry(3, 0.5, [0.01, 0.02])
        r1 = self._registry(4, 0.25, [0.03])
        merged = merge_snapshots(
            [r0.snapshot(), r1.snapshot()],
            gauge_labels=[{"worker": "0"}, {"worker": "1"}],
        )
        counter = merged["m_total"]["values"][0]
        assert counter["labels"] == {"k": "a"}
        assert counter["value"] == 7.0
        hist = merged["m_lat"]["values"][0]
        assert hist["count"] == 3.0
        assert hist["sum"] == pytest.approx(0.06)
        gauges = {
            series["labels"]["worker"]: series["value"]
            for series in merged["m_rate"]["values"]
        }
        assert gauges == {"0": 0.5, "1": 0.25}

    def test_render_roundtrips_to_exposition(self):
        r0 = self._registry(2, 1.0, [0.01])
        merged = merge_snapshots([r0.snapshot()], gauge_labels=[{"worker": "0"}])
        text = render_snapshot_prometheus(merged)
        assert '# TYPE m_total counter' in text
        assert 'm_total{k="a"} 2' in text
        assert 'm_rate{worker="0"} 1' in text
        assert "m_lat_count 1" in text
        assert 'm_lat_bucket{le="+Inf"} 1' in text

    def test_gauge_labels_must_align(self):
        with pytest.raises(ValueError):
            merge_snapshots([{}, {}], gauge_labels=[{"worker": "0"}])


# ----------------------------------------------------------------------
# integrated deployment
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def artifact_paths(tmp_path_factory):
    """Two compatible instance artifacts (different weights) on disk."""
    tmp = tmp_path_factory.mktemp("scaleout")
    paths = []
    for seed in (0, 1):
        result = run_pipeline(make_correlated_instances(n=120, seed=seed))
        paths.append(
            pathlib.Path(result.export_artifact().save(tmp / f"model{seed}"))
        )
    return paths


@pytest.fixture(scope="module")
def probe_rows():
    rng = np.random.default_rng(7)
    return [rng.normal(size=16).round(3).tolist() for _ in range(6)]


def _http(server, method, path, body=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _oracle_probs(path, rows, mmap_mode=None):
    engine = InferenceEngine(ModelArtifact.load(path, mmap_mode=mmap_mode))
    return [
        engine.predict(np.asarray(row)).round(6).tolist() for row in rows
    ]


class TestArtifactMmapLoad:
    def test_mmap_load_matches_eager_and_records_identity(
        self, artifact_paths, probe_rows
    ):
        path = artifact_paths[0]
        eager = ModelArtifact.load(path)
        mapped = ModelArtifact.load(path, mmap_mode="r")
        assert mapped.mmap_mode == "r"
        assert eager.mmap_mode is None
        assert mapped.content_sha == eager.content_sha
        assert len(mapped.content_sha) == 64
        assert str(mapped.source_path) == str(path)
        assert _oracle_probs(path, probe_rows) == _oracle_probs(
            path, probe_rows, mmap_mode="r"
        )

    def test_bad_mmap_mode_rejected(self, artifact_paths):
        with pytest.raises(ValueError):
            ModelArtifact.load(artifact_paths[0], mmap_mode="r+")


@pytest.fixture()
def scaleout(artifact_paths):
    server = ScaleOutServer(
        str(artifact_paths[0]), workers=2, port=0, boot_timeout=120.0
    )
    server.start()
    try:
        yield server
    finally:
        server.shutdown()


class TestScaleOutE2E:
    def test_predict_matches_single_process_oracle(
        self, scaleout, artifact_paths, probe_rows
    ):
        oracle = _oracle_probs(artifact_paths[0], probe_rows)
        for row, expected in zip(probe_rows, oracle):
            status, body = _http(
                scaleout, "POST", "/predict",
                json.dumps({"numerical": row}).encode(),
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["rows"] == 1
            assert payload["probabilities"][0] == expected
        # Batch request: same rows in one body, same answers.
        status, body = _http(
            scaleout, "POST", "/predict",
            json.dumps({"rows": [{"numerical": r} for r in probe_rows]}).encode(),
        )
        assert status == 200
        assert json.loads(body)["probabilities"] == oracle

    def test_error_paths_match_single_process_contract(self, scaleout):
        status, body = _http(scaleout, "POST", "/predict", b"{not json")
        assert status == 400
        assert "invalid JSON" in json.loads(body)["error"]
        status, body = _http(
            scaleout, "POST", "/predict",
            json.dumps({"numerical": [0.0] * 3}).encode(),
        )
        assert status == 400
        status, body = _http(scaleout, "GET", "/nope")
        assert status == 404

    def test_healthz_reports_fleet(self, scaleout, artifact_paths):
        expected_sha = ModelArtifact.load(artifact_paths[0]).content_sha
        # Prime some traffic so engine counters are non-zero.
        _http(scaleout, "POST", "/predict",
              json.dumps({"numerical": [0.1] * 16}).encode())
        status, body = _http(scaleout, "GET", "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["artifact_generation"] == 1
        assert health["artifact_sha"] == expected_sha
        assert health["mmapped"] is True
        assert health["formulation"] == "instance"
        assert health["engine"]["rows"] >= 1
        assert len(health["workers_detail"]) == 2
        pids = {w["pid"] for w in health["workers_detail"]}
        assert len(pids) == 2  # really two processes

    def test_metrics_merges_worker_registries(self, scaleout):
        _http(scaleout, "POST", "/predict",
              json.dumps({"numerical": [0.2] * 16}).encode())
        status, body = _http(scaleout, "GET", "/metrics")
        assert status == 200
        text = body.decode()
        # Front-door HTTP metrics and merged worker metrics in one scrape.
        assert "repro_http_requests_total" in text
        assert "repro_frontdoor_workers 2" in text
        assert 'worker="' in text
        assert "repro_engine_artifact_generation" in text
        assert "repro_worker_requests_total" in text

    def test_worker_death_degrades_without_dropping_service(self, scaleout):
        victim = scaleout._workers[0]
        victim.proc.terminate()
        victim.proc.join(timeout=10)
        deadline = 50
        while deadline:
            status, body = _http(scaleout, "GET", "/healthz")
            if json.loads(body)["workers"] == 1:
                break
            deadline -= 1
            threading.Event().wait(0.1)
        assert json.loads(body)["workers"] == 1
        status, body = _http(
            scaleout, "POST", "/predict",
            json.dumps({"numerical": [0.3] * 16}).encode(),
        )
        assert status == 200


class TestHotSwapUnderLoad:
    def test_no_request_lost_and_new_artifact_serves(
        self, artifact_paths, probe_rows
    ):
        old_path, new_path = artifact_paths
        server = ScaleOutServer(str(old_path), workers=2, port=0)
        server.start()
        try:
            stop = threading.Event()
            results = []
            results_lock = threading.Lock()

            def hammer():
                body = json.dumps({"numerical": [0.15] * 16}).encode()
                while not stop.is_set():
                    try:
                        status, payload = _http(server, "POST", "/predict", body)
                    except OSError as exc:
                        with results_lock:
                            results.append(("exc", repr(exc)))
                        continue
                    with results_lock:
                        results.append((status, payload))

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                status, body = _http(
                    server, "POST", "/admin/reload",
                    json.dumps({"artifact": str(new_path)}).encode(),
                )
            finally:
                # Let post-swap traffic flow briefly, then stop.
                threading.Event().wait(0.5)
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert status == 200
            reload_info = json.loads(body)
            assert reload_info["artifact_generation"] == 2

            # Zero lost requests: every hammered request got a well-formed
            # 200 — no 5xx, no connection resets, nothing hung.
            assert results, "hammer threads made no requests"
            bad = [r for r in results if r[0] != 200]
            assert not bad, f"non-200 responses during hot swap: {bad[:5]}"
            for _status, payload in results:
                assert json.loads(payload)["rows"] == 1

            # The fleet now serves the new artifact: generation and sha
            # bumped, predictions match the new artifact's oracle exactly
            # (same 6-decimal rounding ⇒ parity well under 1e-8).
            status, body = _http(server, "GET", "/healthz")
            health = json.loads(body)
            assert health["artifact_generation"] == 2
            assert health["artifact_sha"] == ModelArtifact.load(
                new_path
            ).content_sha
            assert health["workers"] == 2
            oracle = _oracle_probs(new_path, probe_rows)
            for row, expected in zip(probe_rows, oracle):
                status, body = _http(
                    server, "POST", "/predict",
                    json.dumps({"numerical": row}).encode(),
                )
                assert status == 200
                assert json.loads(body)["probabilities"][0] == expected
        finally:
            server.shutdown()

    def test_reload_missing_artifact_keeps_old_fleet(self, artifact_paths):
        server = ScaleOutServer(str(artifact_paths[0]), workers=1, port=0)
        server.start()
        try:
            status, body = _http(
                server, "POST", "/admin/reload",
                json.dumps({"artifact": "/nonexistent/model.npz"}).encode(),
            )
            assert status == 400
            status, body = _http(
                server, "POST", "/predict",
                json.dumps({"numerical": [0.1] * 16}).encode(),
            )
            assert status == 200
            status, body = _http(server, "GET", "/healthz")
            assert json.loads(body)["artifact_generation"] == 1
        finally:
            server.shutdown()
