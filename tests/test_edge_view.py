"""Tests for the edge-wise message-passing substrate (:class:`EdgeView`).

Covers the three contracts the unified GNN stacks lean on:

* full-graph edge views reproduce the memoized adjacency operators, so
  ``propagate(h, view)`` equals the legacy ``forward(h, operator)`` for
  every conv family;
* the per-request bipartite attach view carries the exact normalization
  the induced (pool + queries) graph would derive;
* the segment primitives under the ``propagate`` path are differentiable
  (finite-difference checked) and ``segment_softmax`` stays a proper
  per-segment distribution even when some segments are empty.
"""

import numpy as np
import pytest

from repro.construction.rules import knn_graph
from repro.gnn.attention import GATConv
from repro.gnn.conv import GCNConv, GINConv, GatedGraphConv, SAGEConv
from repro.graph import EdgeView, Graph
from repro.tensor import Tensor, ops

RNG = np.random.default_rng(11)


def rng():
    return np.random.default_rng(5)


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference numerical gradient of scalar-valued fn."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat, grad_flat = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def small_graph(n=12, d=4):
    return knn_graph(RNG.normal(size=(n, d)), k=3)


# ----------------------------------------------------------------------
# full-graph views vs the memoized operators
# ----------------------------------------------------------------------
class TestGraphEdgeViews:
    @pytest.mark.parametrize(
        "kind, operator",
        [
            ("sum", lambda g: g.adjacency()),
            ("mean", lambda g: g.mean_adjacency()),
            ("mean_loops", lambda g: g.mean_adjacency(add_self_loops=True)),
            ("gcn", lambda g: g.gcn_adjacency()),
        ],
    )
    def test_aggregate_matches_operator_spmm(self, kind, operator):
        g = small_graph()
        h = Tensor(RNG.normal(size=(g.num_nodes, 5)))
        out = g.edge_view(kind).aggregate(h)
        np.testing.assert_allclose(out.data, operator(g) @ h.data, atol=1e-12)

    def test_views_are_memoized(self):
        g = small_graph()
        assert g.edge_view("gcn") is g.edge_view("gcn")
        assert g.edge_view("attention") is g.edge_view("attention")

    def test_attention_view_bakes_in_self_loops(self):
        g = small_graph()
        view = g.edge_view("attention")
        assert view.num_edges == g.num_edges + g.num_nodes
        loops = view.src[g.num_edges:]
        np.testing.assert_array_equal(loops, np.arange(g.num_nodes))
        np.testing.assert_array_equal(view.dst[g.num_edges:], loops)

    def test_unknown_kind_rejected(self):
        g = small_graph()
        with pytest.raises(ValueError, match="edge-view kind"):
            g.edge_view("bogus")
        with pytest.raises(ValueError, match="edge-view kind"):
            g.attach_view("bogus", np.zeros((2, 3), np.int64))

    def test_gatherless_path_matches_matrix_path(self):
        g = small_graph()
        view = g.edge_view("gcn")
        bare = EdgeView(view.src, view.dst, view.num_nodes, weight=view.weight)
        h = Tensor(RNG.normal(size=(g.num_nodes, 3)))
        np.testing.assert_allclose(
            bare.aggregate(h).data, view.aggregate(h).data, atol=1e-12
        )


# ----------------------------------------------------------------------
# propagate(h, view) == legacy forward(h, operator)
# ----------------------------------------------------------------------
class TestPropagateForwardParity:
    def test_gcn(self):
        g = small_graph()
        conv = GCNConv(4, 3, rng())
        x = Tensor(g.x)
        np.testing.assert_allclose(
            conv.propagate(x, g.edge_view("gcn")).data,
            conv(x, g.gcn_adjacency()).data,
            atol=1e-12,
        )

    def test_sage(self):
        g = small_graph()
        conv = SAGEConv(4, 3, rng())
        x = Tensor(g.x)
        np.testing.assert_allclose(
            conv.propagate(x, g.edge_view("mean")).data,
            conv(x, g.mean_adjacency()).data,
            atol=1e-12,
        )

    def test_gin(self):
        g = small_graph()
        conv = GINConv(4, 3, rng())
        x = Tensor(g.x)
        np.testing.assert_allclose(
            conv.propagate(x, g.edge_view("sum")).data,
            conv(x, g.adjacency()).data,
            atol=1e-12,
        )

    def test_gated_steps_compose_to_forward(self):
        g = small_graph(d=6)
        conv = GatedGraphConv(6, rng(), num_steps=3)
        view = g.edge_view("mean_loops")
        h = Tensor(g.x)
        for _ in range(conv.num_steps):
            h = conv.propagate(h, view)
        np.testing.assert_allclose(
            h.data, conv(Tensor(g.x), g.mean_adjacency(add_self_loops=True)).data,
            atol=1e-12,
        )

    def test_gat_forward_is_propagate_on_derived_view(self):
        g = small_graph()
        conv = GATConv(4, 3, rng(), num_heads=2)
        x = Tensor(g.x)
        np.testing.assert_allclose(
            conv(x, g.edge_index).data,
            conv.propagate(x, g.edge_view("attention")).data,
            atol=1e-12,
        )


# ----------------------------------------------------------------------
# bipartite attach views
# ----------------------------------------------------------------------
class TestAttachView:
    def test_shapes_and_conventions(self):
        g = small_graph()
        neighbors = np.array([[0, 1, 2], [3, 4, 5]])
        view = g.attach_view("mean", neighbors)
        assert view.num_nodes == 2 * 3 + 2
        np.testing.assert_array_equal(view.src, np.arange(6))
        np.testing.assert_array_equal(view.dst, [6, 6, 6, 7, 7, 7])
        np.testing.assert_allclose(view.weight, 1.0 / 3.0)

    def test_gcn_weights_match_induced_graph(self):
        """Attach-view coefficients equal the induced graph's Â rows."""
        g = small_graph()
        n, k = g.num_nodes, 3
        neighbors = np.array([[0, 2, 4], [1, 3, 5]])
        batch = neighbors.shape[0]
        # Build the induced (pool + queries) graph the oracle would use.
        query_ids = n + np.arange(batch)
        attach = np.stack([neighbors.reshape(-1), np.repeat(query_ids, k)])
        edge_index = np.concatenate([g.edge_index, attach], axis=1)
        induced = Graph(n + batch, edge_index)
        a_hat = induced.gcn_adjacency()
        view = g.attach_view("gcn", neighbors)
        # Attach edge q←p weight must equal Â[q, p]; loop weight Â[q, q].
        for e in range(batch * k):
            q, p = e // k, neighbors.reshape(-1)[e]
            np.testing.assert_allclose(view.weight[e], a_hat[n + q, p], atol=1e-12)
        for q in range(batch):
            np.testing.assert_allclose(
                view.weight[batch * k + q], a_hat[n + q, n + q], atol=1e-12
            )

    def test_empty_neighbor_idx_rejected(self):
        g = small_graph()
        with pytest.raises(ValueError, match="non-empty"):
            g.attach_view("mean", np.zeros((0, 3), np.int64))


# ----------------------------------------------------------------------
# gradients through the propagate path
# ----------------------------------------------------------------------
class TestPropagateGradients:
    def _check_input_grad(self, build_fn, x_data, tol=1e-5):
        x = Tensor(x_data.copy(), requires_grad=True)
        loss = ops.sum(ops.mul(build_fn(x), build_fn(x)))
        loss.backward()

        def scalar(arr):
            out = build_fn(Tensor(arr)).data
            return float((out * out).sum())

        np.testing.assert_allclose(
            x.grad, numeric_grad(scalar, x_data.copy()), rtol=tol, atol=tol
        )

    def test_weighted_gather_segment_aggregate(self):
        view = EdgeView(
            src=np.array([0, 1, 2, 0]),
            dst=np.array([3, 3, 4, 4]),
            num_nodes=5,
            weight=np.array([0.5, 0.25, 1.5, 1.0]),
        )
        self._check_input_grad(lambda x: view.aggregate(x), RNG.normal(size=(5, 3)))

    def test_gat_propagate_grad_on_attach_view(self):
        g = small_graph()
        conv = GATConv(4, 3, rng(), num_heads=2)
        view = g.attach_view("attention", np.array([[0, 1, 2], [3, 4, 5]]))
        self._check_input_grad(
            lambda x: conv.propagate(x, view), RNG.normal(size=(view.num_nodes, 4))
        )
        x = Tensor(RNG.normal(size=(view.num_nodes, 4)), requires_grad=True)
        ops.sum(conv.propagate(x, view)).backward()
        assert conv.weight.grad is not None
        assert conv.att_src.grad is not None

    def test_gated_propagate_grad_reaches_gru(self):
        g = small_graph(d=6)
        conv = GatedGraphConv(6, rng(), num_steps=2)
        view = g.attach_view("mean_loops", np.array([[0, 1], [2, 3], [4, 5]]))
        x = Tensor(RNG.normal(size=(view.num_nodes, 6)), requires_grad=True)
        ops.sum(conv.propagate(x, view)).backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0
        assert conv.message.weight.grad is not None
        assert conv.gru.w_hn.grad is not None


# ----------------------------------------------------------------------
# segment_softmax as a distribution
# ----------------------------------------------------------------------
class TestSegmentSoftmaxProperty:
    def test_rows_sum_to_one_with_empty_segments(self):
        # Segments 1 and 3 are empty; occupied segments must each carry a
        # proper distribution and empty ones must contribute nothing.
        scores = Tensor(RNG.normal(size=(6, 2)) * 10.0)
        seg = np.array([0, 0, 2, 2, 2, 4])
        alpha = ops.segment_softmax(scores, seg, 5)
        assert np.all(np.isfinite(alpha.data))
        sums = np.zeros((5, 2))
        np.add.at(sums, seg, alpha.data)
        np.testing.assert_allclose(sums[[0, 2, 4]], 1.0, atol=1e-12)
        np.testing.assert_allclose(sums[[1, 3]], 0.0, atol=1e-12)

    def test_matches_dense_softmax_per_segment(self):
        scores = Tensor(RNG.normal(size=(4, 3)))
        seg = np.array([0, 0, 0, 0])
        alpha = ops.segment_softmax(scores, seg, 1)
        np.testing.assert_allclose(
            alpha.data, ops.softmax(scores, axis=0).data, atol=1e-12
        )
