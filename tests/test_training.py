"""Unit tests for the trainer, auxiliary tasks and training strategies."""

import numpy as np
import pytest

from repro import nn
from repro.construction.learned import DirectGraphLearner
from repro.construction.rules import knn_graph
from repro.datasets import make_correlated_instances, train_val_test_masks
from repro.gnn.networks import GCN
from repro.metrics import accuracy
from repro.tensor import Tensor, ops
from repro.training import (
    ContrastiveTask,
    DenoisingAutoencoderTask,
    FeatureReconstructionTask,
    Trainer,
    degree_regularizer,
    smoothness_regularizer,
    sparsity_regularizer,
    train_adversarial_reconstruction,
    train_alternating,
    train_bilevel,
    train_end_to_end,
    train_pretrain_finetune,
    train_two_stage,
)

RNG = np.random.default_rng(41)


def rng():
    return np.random.default_rng(4)


def tiny_problem(seed=0):
    ds = make_correlated_instances(n=80, cluster_strength=2.0, seed=seed)
    x = ds.to_matrix()
    g = knn_graph(x, k=5, y=ds.y)
    model = GCN(g, (16,), ds.num_classes, np.random.default_rng(seed))
    train, val, test = train_val_test_masks(80, 0.5, 0.25, np.random.default_rng(seed),
                                            stratify=ds.y)
    return ds, g, model, train, val, test


class TestTrainer:
    def test_loss_decreases(self):
        ds, g, model, train, val, test = tiny_problem()
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=0.01),
                          max_epochs=50, patience=None)
        result = trainer.fit(lambda: nn.cross_entropy(model(), ds.y, mask=train))
        assert result.history["loss"][-1] < result.history["loss"][0]
        assert result.epochs_run == 50

    def test_early_stopping_triggers(self):
        ds, g, model, train, val, test = tiny_problem()
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=0.01),
                          max_epochs=500, patience=5)
        # Constant val score: no improvement after epoch 1 -> stop near patience.
        result = trainer.fit(
            lambda: nn.cross_entropy(model(), ds.y, mask=train),
            val_score_fn=lambda: 0.0,
        )
        assert result.epochs_run <= 10

    def test_restores_best_state(self):
        ds, g, model, train, val, test = tiny_problem()
        scores = iter([0.9] + [0.1] * 30)
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=0.05),
                          max_epochs=10, patience=None)
        snapshot_holder = {}

        def val_fn():
            score = next(scores)
            if score == 0.9:
                snapshot_holder["best"] = model.state_dict()
            return score

        trainer.fit(lambda: nn.cross_entropy(model(), ds.y, mask=train), val_fn)
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(value, snapshot_holder["best"][name])

    def test_history_lengths_match(self):
        ds, g, model, train, *_ = tiny_problem()
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=0.01),
                          max_epochs=7, patience=None)
        result = trainer.fit(lambda: nn.cross_entropy(model(), ds.y, mask=train))
        assert len(result.history["loss"]) == len(result.history["val_score"]) == 7
        assert result.final_loss() == result.history["loss"][-1]

    def test_invalid_epochs(self):
        _, _, model, *_ = tiny_problem()
        with pytest.raises(ValueError):
            Trainer(model, nn.Adam(model.parameters(), lr=0.1), max_epochs=0)


class TestAuxiliaryTasks:
    def test_feature_reconstruction_loss_trains(self):
        x = RNG.normal(size=(30, 6))
        task = FeatureReconstructionTask(4, 6, rng(), target=x)
        z = Tensor(RNG.normal(size=(30, 4)), requires_grad=True)
        loss = task.loss(z)
        assert loss.item() > 0
        loss.backward()
        assert task.decoder.weight.grad is not None

    def test_feature_reconstruction_skips_nan_targets(self):
        x = RNG.normal(size=(10, 3))
        x[0, 0] = np.nan
        task = FeatureReconstructionTask(2, 3, rng())
        loss = task.loss(Tensor(np.zeros((10, 2))), target=x)
        assert np.isfinite(loss.item())

    def test_feature_reconstruction_requires_target(self):
        task = FeatureReconstructionTask(2, 3, rng())
        with pytest.raises(ValueError):
            task.loss(Tensor(np.zeros((5, 2))))

    def test_dae_task_loss_positive(self):
        ds, g, model, *_ = tiny_problem()
        task = DenoisingAutoencoderTask(16, g.x, rng())
        loss = task.loss(model.embed)
        assert loss.item() > 0

    def test_dae_invalid_mask_rate(self):
        with pytest.raises(ValueError):
            DenoisingAutoencoderTask(4, np.ones((5, 3)), rng(), mask_rate=0.0)

    def test_contrastive_task_runs(self):
        ds, g, model, *_ = tiny_problem()
        task = ContrastiveTask(16, g.x, rng(), projection_dim=8)
        loss = task.loss(model.embed)
        assert np.isfinite(loss.item())
        loss.backward()
        assert any(p.grad is not None for p in model.parameters())


class TestRegularizers:
    def test_smoothness_zero_for_constant_embeddings(self):
        edges = np.array([[0, 1, 2], [1, 2, 0]])
        z = Tensor(np.ones((3, 4)))
        assert smoothness_regularizer(z, edges).item() == pytest.approx(0.0)

    def test_smoothness_positive_for_distinct(self):
        edges = np.array([[0], [1]])
        z = Tensor(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert smoothness_regularizer(z, edges).item() == pytest.approx(2.0)

    def test_smoothness_empty_graph(self):
        z = Tensor(np.ones((3, 2)))
        assert smoothness_regularizer(z, np.zeros((2, 0), dtype=int)).item() == 0.0

    def test_degree_regularizer_penalizes_isolation(self):
        connected = Tensor(np.ones((4, 4)))
        sparse = Tensor(np.eye(4) * 0.01)
        assert degree_regularizer(sparse).item() > degree_regularizer(connected).item()

    def test_sparsity_regularizer_is_mean_abs(self):
        adj = Tensor(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert sparsity_regularizer(adj).item() == pytest.approx(0.5)


class TestStrategies:
    def test_end_to_end_improves_accuracy(self):
        ds, g, model, train, val, test = tiny_problem()
        result = train_end_to_end(
            model,
            lambda: nn.cross_entropy(model(), ds.y, mask=train),
            val_score_fn=lambda: accuracy(ds.y[val], model().data.argmax(1)[val]),
            max_epochs=80,
        )
        assert accuracy(ds.y[test], model().data.argmax(1)[test]) > 0.6
        assert result.best_val_score > 0.5

    def test_two_stage_passes_artifact(self):
        artifact, result = train_two_stage(
            stage1=lambda: "the-graph",
            stage2=lambda art: art + "-trained",
        )
        assert artifact == "the-graph"
        assert result == "the-graph-trained"

    def test_pretrain_finetune_runs_both_phases(self):
        ds, g, model, train, val, test = tiny_problem()
        task = FeatureReconstructionTask(16, g.x.shape[1], rng(), target=g.x)
        pre, fine = train_pretrain_finetune(
            model,
            pretrain_loss_fn=lambda: task.loss(model.embed()),
            finetune_loss_fn=lambda: nn.cross_entropy(model(), ds.y, mask=train),
            pretrain_epochs=10,
            finetune_epochs=30,
        )
        assert pre.epochs_run == 10
        assert fine.history["loss"][-1] < fine.history["loss"][0]

    def test_alternating_adapts_weight(self):
        ds, g, model, train, val, test = tiny_problem()
        task = FeatureReconstructionTask(16, g.x.shape[1], rng(), target=g.x)
        result, final_weight = train_alternating(
            model,
            main_loss_fn=lambda: nn.cross_entropy(model(), ds.y, mask=train),
            aux_loss_fn=lambda: task.loss(model.embed()),
            val_score_fn=lambda: accuracy(ds.y[val], model().data.argmax(1)[val]),
            max_epochs=40,
            adapt_every=10,
            aux_weight=1.0,
        )
        assert final_weight <= 1.0
        assert len(result.history["loss"]) <= 40

    def test_adversarial_reconstruction_runs(self):
        x = RNG.normal(size=(40, 6))
        generator = nn.MLP(6, (12,), 6, rng())
        discriminator = nn.MLP(6, (12,), 1, rng())
        history = train_adversarial_reconstruction(
            generator,
            discriminator,
            real_rows_fn=lambda: x,
            fake_rows_fn=lambda: generator(Tensor(x)),
            recon_loss_fn=lambda: nn.mse_loss(generator(Tensor(x)), x),
            epochs=15,
        )
        assert len(history["gen_loss"]) == 15
        assert history["gen_loss"][-1] < history["gen_loss"][0]

    def test_bilevel_updates_structure_on_val_loss(self):
        ds = make_correlated_instances(n=40, cluster_strength=2.0, seed=0)
        x = ds.to_matrix()
        learner = DirectGraphLearner(40, rng())
        from repro.gnn.dense import DenseGNN

        gnn = DenseGNN(x.shape[1], (8,), ds.num_classes, rng())
        train, val, _ = train_val_test_masks(40, 0.5, 0.25, np.random.default_rng(0))
        features = Tensor(x)

        def loss_on(mask):
            logits = gnn(features, learner())
            return nn.cross_entropy(logits, ds.y, mask=mask)

        before = learner.theta.data.copy()
        history = train_bilevel(
            learner.parameters(), gnn.parameters(),
            loss_fn=lambda: loss_on(train),
            val_loss_fn=lambda: loss_on(val),
            outer_steps=3, inner_steps=2,
        )
        assert len(history["val_loss"]) == 3
        assert not np.allclose(learner.theta.data, before)
