"""Tests for incremental query propagation through the serving stack.

The incremental path (cached per-step pool activations + generic
propagation over the bipartite attach view) must be numerically
indistinguishable from the full-graph oracle (rebuild the
(pool + queries) graph, re-forward everything) for **every** network in
the zoo — operator, attention and gated stacks alike — across retrieval
metrics and batch sizes.  Also covers the supporting machinery this path
leans on: memoized graph operators and edge views, the precomputed
``PoolIndex``, skip-init artifact loading, and LRU cache
eviction/read-only guarantees.
"""

import numpy as np
import pytest

from repro.construction.retrieval import PoolIndex, cross_similarity, retrieve_neighbors
from repro.construction.rules import knn_graph
from repro.datasets import TabularPreprocessor, make_correlated_instances
from repro.gnn.networks import build_network
from repro.serving import InferenceEngine, ModelArtifact

POOL_ROWS = 90
K = 6
ALL_NETWORKS = ["gcn", "sage", "gin", "gat", "gated"]


def _instance_artifact(network, metric, seed=0, num_layers=2):
    """Random-weight instance artifact — parity doesn't need training."""
    dataset = make_correlated_instances(n=POOL_ROWS, seed=seed)
    prep = TabularPreprocessor(mode="onehot").fit(dataset)
    x = prep.transform_dataset(dataset)
    graph = knn_graph(x, k=5, metric="euclidean", y=dataset.y)
    model = build_network(
        "gated" if network == "gated" else network,
        graph,
        16,
        dataset.num_classes,
        np.random.default_rng(seed),
        num_layers=num_layers,
    )
    artifact = ModelArtifact(
        formulation="instance",
        network=network,
        config={
            "hidden_dim": 16,
            "out_dim": dataset.num_classes,
            "k": K,
            "metric": metric,
            "num_layers": num_layers,
            "embed_dim": 8,
            "task": dataset.task,
        },
        state_dict=model.state_dict(),
        preprocessor=prep,
        pool_x=np.asarray(graph.x, dtype=np.float64),
        pool_edge_index=graph.edge_index.astype(np.int64),
    )
    return dataset, artifact


# ----------------------------------------------------------------------
# incremental vs full-graph parity
# ----------------------------------------------------------------------
class TestIncrementalParity:
    @pytest.mark.parametrize("network", ALL_NETWORKS)
    @pytest.mark.parametrize("metric", ["cosine", "euclidean", "rbf"])
    @pytest.mark.parametrize("batch_size", [1, 7])
    def test_predict_batch_matches_full_graph_oracle(
        self, network, metric, batch_size
    ):
        dataset, artifact = _instance_artifact(network, metric)
        incremental = InferenceEngine(artifact, cache_size=0, incremental=True)
        oracle = InferenceEngine(artifact, cache_size=0, incremental=False)
        assert incremental.incremental and not oracle.incremental
        rng = np.random.default_rng(7)
        rows = dataset.numerical[:batch_size] + rng.normal(
            0.0, 0.1, (batch_size, dataset.num_numerical)
        )
        got = incremental.predict_batch(rows)
        expected = oracle.predict_batch(rows)
        np.testing.assert_allclose(got, expected, atol=1e-8)

    @pytest.mark.parametrize("network", ["gcn", "gat"])
    def test_three_layer_stack_parity(self, network):
        dataset, artifact = _instance_artifact(network, "euclidean", num_layers=3)
        incremental = InferenceEngine(artifact, cache_size=0, incremental=True)
        oracle = InferenceEngine(artifact, cache_size=0, incremental=False)
        rows = dataset.numerical[:4] + 0.05
        np.testing.assert_allclose(
            incremental.predict_batch(rows), oracle.predict_batch(rows), atol=1e-8
        )

    @pytest.mark.parametrize("network", ALL_NETWORKS)
    def test_auto_mode_picks_incremental_for_every_network(self, network):
        _, artifact = _instance_artifact(network, "euclidean")
        assert InferenceEngine(artifact, cache_size=0).incremental is True

    @pytest.mark.parametrize("network", ["gat", "gated"])
    def test_oracle_path_retained_for_explicit_opt_out(self, network):
        dataset, artifact = _instance_artifact(network, "euclidean")
        engine = InferenceEngine(artifact, cache_size=0, incremental=False)
        assert engine.incremental is False
        probs = engine.predict_batch(dataset.numerical[:2])
        assert probs.shape == (2, dataset.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-10)

    def test_feature_formulation_strict_mode_raises(self):
        from repro.datasets import make_fraud
        from repro.pipeline import run_pipeline

        result = run_pipeline(
            make_fraud(n=120, seed=0), formulation="feature", max_epochs=3, seed=0
        )
        artifact = result.export_artifact()
        assert InferenceEngine(artifact, cache_size=0).incremental is False
        with pytest.raises(ValueError, match="pool graph"):
            InferenceEngine(artifact, cache_size=0, incremental=True)

    def test_model_built_once_and_reused_across_requests(self):
        dataset, artifact = _instance_artifact("gcn", "euclidean")
        builds = []
        original = artifact.build_model
        artifact.build_model = lambda graph=None: (
            builds.append(original(graph)) or builds[-1]
        )
        engine = InferenceEngine(artifact, cache_size=0)
        model = engine._scorer.model
        for i in range(3):
            engine.predict(dataset.numerical[i] + 0.01)
        assert engine._scorer.model is model
        assert len(builds) == 1, "incremental path must not rebuild per request"

    def test_propagate_queries_validates_inputs(self):
        _, artifact = _instance_artifact("gcn", "euclidean")
        engine = InferenceEngine(artifact, cache_size=0)
        model, hiddens = engine._scorer.model, engine._scorer.pool_hiddens
        good = np.zeros((2, artifact.pool_x.shape[1]))
        with pytest.raises(ValueError, match="features"):
            model.propagate_queries(np.zeros((2, 3)), np.zeros((2, K), np.int64), hiddens)
        with pytest.raises(ValueError, match="neighbor"):
            model.propagate_queries(good, np.zeros((3, K), np.int64), hiddens)
        with pytest.raises(ValueError, match="neighbor indices"):
            model.propagate_queries(good, np.full((2, K), POOL_ROWS), hiddens)
        with pytest.raises(ValueError, match="propagation steps"):
            model.propagate_queries(good, np.zeros((2, K), np.int64), hiddens[:1])


# ----------------------------------------------------------------------
# supporting machinery
# ----------------------------------------------------------------------
class TestPoolIndex:
    @pytest.mark.parametrize(
        "measure", ["cosine", "euclidean", "rbf", "heat", "inner", "pearson"]
    )
    def test_matches_cross_similarity_and_retrieve_neighbors(self, measure):
        rng = np.random.default_rng(0)
        pool = rng.normal(size=(40, 6))
        queries = rng.normal(size=(5, 6))
        index = PoolIndex(pool, measure)
        np.testing.assert_array_equal(
            index.similarity(queries), cross_similarity(queries, pool, measure)
        )
        np.testing.assert_array_equal(
            index.top_k(queries, 4), retrieve_neighbors(queries, pool, 4, measure)
        )

    def test_k_bounds_validated(self):
        index = PoolIndex(np.eye(3))
        with pytest.raises(ValueError):
            index.top_k(np.eye(3), 0)
        with pytest.raises(ValueError):
            index.top_k(np.eye(3), 4)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            PoolIndex(np.zeros((0, 3)))


class TestMemoizedOperators:
    def test_adjacency_operators_are_cached(self):
        g = knn_graph(np.random.default_rng(0).normal(size=(30, 4)), k=3)
        assert g.adjacency() is g.adjacency()
        assert g.gcn_adjacency() is g.gcn_adjacency()
        assert g.mean_adjacency() is g.mean_adjacency()
        assert g.mean_adjacency(True) is g.mean_adjacency(True)
        assert g.mean_adjacency() is not g.mean_adjacency(True)

    def test_structure_transforms_get_fresh_caches(self):
        g = knn_graph(np.random.default_rng(0).normal(size=(30, 4)), k=3)
        adj = g.adjacency()
        looped = g.add_self_loops()
        assert looped.adjacency() is not adj
        assert looped.adjacency().diagonal().sum() == 30


class TestSkipInitArtifactLoading:
    def test_skip_init_and_random_init_load_identical_models(self):
        dataset, artifact = _instance_artifact("gcn", "euclidean")
        graph = artifact.pool_graph()
        fast = artifact.build_model(graph)
        slow = artifact.build_model(graph, skip_init=False)
        for (name_f, p_f), (name_s, p_s) in zip(
            fast.named_parameters(), slow.named_parameters()
        ):
            assert name_f == name_s
            np.testing.assert_array_equal(p_f.data, p_s.data)
        rows = dataset.numerical[:3]
        engine = InferenceEngine(artifact, cache_size=0)
        assert engine.predict_batch(rows).shape == (3, dataset.num_classes)


# ----------------------------------------------------------------------
# LRU cache: eviction, size accounting, read-only entries
# ----------------------------------------------------------------------
class TestCacheEvictionAndSafety:
    def test_lru_eviction_order_and_size_accounting(self):
        dataset, artifact = _instance_artifact("gcn", "euclidean")
        engine = InferenceEngine(artifact, cache_size=3)
        rows = [dataset.numerical[i] + 0.01 for i in range(5)]
        for row in rows:
            engine.predict(row)
        assert len(engine._cache) == 3
        assert engine.stats["forward_passes"] == 5
        # rows 0 and 1 were evicted (LRU); 2..4 are resident.
        engine.predict(rows[4])
        engine.predict(rows[2])
        assert engine.stats["forward_passes"] == 5
        assert engine.stats["cache_hits"] == 2
        # Touching row 0 again recomputes and evicts the stalest (row 3).
        engine.predict(rows[0])
        assert engine.stats["forward_passes"] == 6
        assert len(engine._cache) == 3
        engine.predict(rows[3])
        assert engine.stats["forward_passes"] == 7

    def test_cached_probabilities_are_read_only(self):
        dataset, artifact = _instance_artifact("gcn", "euclidean")
        engine = InferenceEngine(artifact, cache_size=8)
        probs = engine.predict(dataset.numerical[0])
        assert probs.flags.writeable is False
        with pytest.raises(ValueError):
            probs[0] = 0.5
        # The cache entry is intact: the hit still sums to one.
        again = engine.predict(dataset.numerical[0])
        assert again is probs
        np.testing.assert_allclose(again.sum(), 1.0, atol=1e-12)

    def test_batch_output_rows_are_caller_owned_copies(self):
        dataset, artifact = _instance_artifact("gcn", "euclidean")
        engine = InferenceEngine(artifact, cache_size=8)
        out = engine.predict_batch(dataset.numerical[:2])
        out[0, 0] = 123.0  # must not raise nor poison the cache
        fresh = engine.predict_batch(dataset.numerical[:2])
        assert fresh[0, 0] != 123.0
        assert engine.stats["cache_hits"] >= 2
