"""HTTP error-path tests for :class:`~repro.serving.PredictionServer`.

A public prediction endpoint sees garbage: malformed JSON, rows with the
wrong arity, unknown routes, oversized bodies.  Each must come back as a
*structured* 4xx JSON error — never a 500, never a dead server — and the
server must keep answering healthy requests afterwards.  The suite runs
over a real socket (ephemeral port) against a hypergraph artifact, which
also pins the ``/healthz`` contract for the newly-servable formulation.
"""

import http.client
import json

import numpy as np
import pytest

from repro.datasets import make_fraud
from repro.formulations import HypergraphFormulation
from repro.serving import ModelArtifact, PredictionServer
from repro.serving.artifact import ARTIFACT_SCHEMA_VERSION


@pytest.fixture(scope="module")
def dataset():
    return make_fraud(n=60, seed=3)


@pytest.fixture(scope="module")
def artifact(dataset):
    # Untrained weights: HTTP semantics don't depend on model quality.
    config = {
        "network": "hypergraph_gnn", "hidden_dim": 8, "out_dim": 2,
        "num_layers": 2, "task": dataset.task,
    }
    fitted = HypergraphFormulation().fit(dataset, None, config)
    model = fitted.build_model(np.random.default_rng(0))
    arrays, meta = fitted.artifact_payload()
    return ModelArtifact(
        formulation="hypergraph",
        network=fitted.model_builder,
        config=config,
        state_dict=model.state_dict(),
        preprocessor=fitted.preprocessor,
        payload_arrays=arrays,
        payload_meta=meta,
    )


@pytest.fixture(scope="module")
def server(artifact):
    with PredictionServer(artifact, port=0, max_body_bytes=4096) as srv:
        yield srv


def _request(server, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = json.loads(response.read().decode())
        return response.status, payload
    finally:
        conn.close()


def _good_row(dataset):
    return {
        "numerical": dataset.numerical[0].tolist(),
        "categorical": dataset.categorical[0].tolist(),
    }


class TestErrorPaths:
    def test_malformed_json_returns_400(self, server):
        status, payload = _request(server, "POST", "/predict", body="{not json")
        assert status == 400
        assert "invalid JSON" in payload["error"]

    def test_non_object_body_returns_400(self, server):
        status, payload = _request(server, "POST", "/predict", body="[1, 2, 3]")
        assert status == 400
        assert "JSON object" in payload["error"]

    def test_wrong_numerical_arity_returns_400(self, server, dataset):
        row = {"numerical": [0.0] * (dataset.num_numerical + 2)}
        status, payload = _request(server, "POST", "/predict", body=json.dumps(row))
        assert status == 400
        assert "numerical columns" in payload["error"]

    def test_wrong_categorical_arity_returns_400(self, server, dataset):
        row = _good_row(dataset)
        row["categorical"] = row["categorical"] + [0, 0]
        status, payload = _request(server, "POST", "/predict", body=json.dumps(row))
        assert status == 400
        assert "categorical" in payload["error"]

    def test_missing_numerical_key_returns_400(self, server):
        status, payload = _request(
            server, "POST", "/predict", body=json.dumps({"categorical": [1]})
        )
        assert status == 400
        assert "numerical" in payload["error"]

    def test_empty_and_ragged_batches_return_400(self, server, dataset):
        status, payload = _request(
            server, "POST", "/predict", body=json.dumps({"rows": []})
        )
        assert status == 400 and "non-empty" in payload["error"]
        ragged = {"rows": [_good_row(dataset), {"numerical": [1.0]}]}
        status, payload = _request(
            server, "POST", "/predict", body=json.dumps(ragged)
        )
        assert status == 400 and "error" in payload

    def test_unknown_route_returns_404(self, server):
        for method, path in (("GET", "/nope"), ("POST", "/nope"), ("GET", "/predict/x")):
            status, payload = _request(server, method, path)
            assert status == 404
            assert "unknown path" in payload["error"]

    def test_oversized_body_returns_413_without_reading_it(self, server, dataset):
        body = json.dumps({
            "numerical": dataset.numerical[0].tolist(),
            "padding": "x" * 10_000,  # well past max_body_bytes=4096
        })
        status, payload = _request(server, "POST", "/predict", body=body)
        assert status == 413
        assert "exceeds" in payload["error"]

    def test_server_survives_the_error_barrage(self, server, dataset):
        # After every 4xx above the server still answers cleanly.
        status, payload = _request(
            server, "POST", "/predict", body=json.dumps(_good_row(dataset))
        )
        assert status == 200
        assert payload["rows"] == 1
        assert abs(sum(payload["probabilities"][0]) - 1.0) < 1e-6


class TestHealthz:
    def test_healthz_reports_hypergraph_deployment(self, server, dataset):
        status, health = _request(server, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["formulation"] == "hypergraph"
        assert health["network"] == "hypergraph_gnn"
        assert health["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert health["incremental"] is True
        assert health["pool_rows"] == dataset.num_instances

    def test_health_alias_route(self, server):
        status, health = _request(server, "GET", "/health")
        assert status == 200 and health["formulation"] == "hypergraph"
